//! Model-vs-simulator accuracy tests (the Figure 6/7 claims): predictions
//! track the simulated ground truth closely enough that *relative* error
//! between the two versions of a kernel — the quantity the framework
//! actually acts on — yields mostly-correct decisions.

use hetsel::core::{Platform, Selector};
use hetsel::polybench::{all_kernels, Dataset};

fn scatter(ds: Dataset, threads: u32) -> (f64, usize, usize) {
    let platform = Platform::power9_v100().with_threads(threads);
    let sel = Selector::new(platform);
    let mut log_err = 0.0;
    let mut correct = 0;
    let mut total = 0;
    for (_, kernel, binding) in all_kernels() {
        let b = binding(ds);
        let d = sel.decide(&kernel, &b);
        let m = sel.measure(&kernel, &b).unwrap();
        let predicted = d.predicted_cpu_s.unwrap() / d.predicted_gpu_s.unwrap();
        let actual = m.speedup().unwrap();
        log_err += (predicted / actual).ln().abs();
        if d.device == m.best_device() {
            correct += 1;
        }
        total += 1;
    }
    ((log_err / total as f64).exp(), correct, total)
}

/// Figure 6: test mode, 4-thread host. The paper's framework "assumes that
/// ... the relative error among versions of the kernel is more important
/// than errors in the prediction of actual execution time": we require the
/// geometric-mean error factor under 4x and a large majority of correct
/// decisions.
#[test]
fn fig6_test_mode_four_threads() {
    let (gmae, correct, total) = scatter(Dataset::Test, 4);
    assert!(gmae < 4.0, "geometric mean error factor {gmae}");
    assert!(correct * 10 >= total * 8, "{correct}/{total} correct");
}

/// Figure 7: benchmark mode, 4-thread host.
#[test]
fn fig7_benchmark_mode_four_threads() {
    let (gmae, correct, total) = scatter(Dataset::Benchmark, 4);
    assert!(gmae < 4.0, "geometric mean error factor {gmae}");
    assert!(correct * 10 >= total * 8, "{correct}/{total} correct");
}

/// At the full 160 threads the decisions get harder (the paper's close
/// calls live here); still require a clear majority.
#[test]
fn full_thread_decisions_majority_correct() {
    let (_, correct, total) = scatter(Dataset::Test, 160);
    assert!(correct * 10 >= total * 7, "test: {correct}/{total}");
    let (_, correct, total) = scatter(Dataset::Benchmark, 160);
    assert!(correct * 10 >= total * 6, "benchmark: {correct}/{total}");
}

/// The paper's reported conv misprediction survives in our reproduction:
/// the model under-credits the GPU on the benchmark-mode convolutions
/// because the CPU model lacks a memory hierarchy.
#[test]
fn conv_misprediction_reproduced() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform);
    let (kernel, binding) = hetsel::polybench::find_kernel("3dconv").unwrap();
    let b = binding(Dataset::Benchmark);
    let d = sel.decide(&kernel, &b);
    let m = sel.measure(&kernel, &b).unwrap();
    let predicted = d.predicted_cpu_s.unwrap() / d.predicted_gpu_s.unwrap();
    assert!(predicted < 1.0, "model predicts a slowdown ({predicted})");
    assert!(
        m.speedup().unwrap() > 1.0,
        "the true offloading speedup is a win"
    );
}
