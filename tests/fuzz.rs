//! Fuzz-style robustness: the entire stack — IPDA, MCA, both analytical
//! models, both simulators, the selector — must handle hundreds of
//! synthetic kernels without panics, NaNs, or inverted invariants.

use hetsel::core::{Platform, Selector};
use hetsel::ir::synth::generate;
use hetsel::ir::Binding;

fn binding_for(s: &hetsel::ir::SynthKernel, n: i64, m: i64) -> Binding {
    let mut b = Binding::new();
    for p in &s.params {
        b.set(*p, if *p == "n" { n } else { m });
    }
    b
}

#[test]
fn whole_stack_survives_synthetic_kernels() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform.clone());
    for seed in 0..120u64 {
        let s = generate(seed);
        let b = binding_for(&s, 2048, 96);
        let k = &s.kernel;

        // Static analyses.
        let info = hetsel::ipda::analyze(k);
        assert!(!info.accesses.is_empty(), "seed {seed}");
        for a in &info.accesses {
            assert!(
                a.thread_stride.resolve(&b).is_some(),
                "seed {seed}: irregular synth access"
            );
        }

        // Models.
        let (cpu, gpu) = sel.predict(k, &b);
        let (cpu, gpu) = (cpu.unwrap(), gpu.unwrap());
        assert!(cpu.is_finite() && cpu > 0.0, "seed {seed}: cpu model {cpu}");
        assert!(gpu.is_finite() && gpu > 0.0, "seed {seed}: gpu model {gpu}");

        // Simulators.
        let m = sel
            .measure(k, &b)
            .unwrap_or_else(|| panic!("seed {seed}: sims failed"));
        assert!(m.cpu_s.is_finite() && m.cpu_s > 0.0, "seed {seed}");
        assert!(m.gpu_s.is_finite() && m.gpu_s > 0.0, "seed {seed}");

        // Decision consistent with its own predictions.
        let d = sel.decide(k, &b);
        let expect = if gpu < cpu {
            hetsel::core::Device::Gpu
        } else {
            hetsel::core::Device::Host
        };
        assert_eq!(d.device, expect, "seed {seed}");
    }
}

#[test]
fn gpu_engines_agree_on_synthetic_kernels() {
    let gpu = hetsel::gpusim::tesla_v100();
    for seed in 0..40u64 {
        let s = generate(seed);
        let b = binding_for(&s, 4096, 64);
        let fast = hetsel::gpusim::simulate(&s.kernel, &b, &gpu).unwrap();
        let detailed = hetsel::gpusim::simulate_detailed(&s.kernel, &b, &gpu).unwrap();
        let ratio = detailed.kernel_s / fast.kernel_s;
        assert!(
            (0.05..=20.0).contains(&ratio),
            "seed {seed}: detailed {} vs roofline {} (ratio {ratio:.2})",
            detailed.kernel_s,
            fast.kernel_s
        );
    }
}

#[test]
fn synthetic_kernels_scale_sanely() {
    // Bigger n never makes the simulated CPU faster (all synth kernels
    // have chunk sizes well past the false-sharing threshold at n >= 8192).
    let cpu = hetsel::cpusim::power9_host();
    for seed in 0..30u64 {
        let s = generate(seed);
        let b1 = binding_for(&s, 8192, 64);
        let b2 = binding_for(&s, 16384, 64);
        let t1 = hetsel::cpusim::simulate(&s.kernel, &b1, &cpu, 160).unwrap();
        let t2 = hetsel::cpusim::simulate(&s.kernel, &b2, &cpu, 160).unwrap();
        assert!(
            t2.total_s() >= t1.total_s() * 0.9,
            "seed {seed}: {} then {}",
            t1.total_s(),
            t2.total_s()
        );
    }
}
