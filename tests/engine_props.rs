//! Property tests for the compile-once decision engine: over every
//! Polybench kernel and arbitrary bindings, (1) the decision cache is
//! invisible — cached answers equal fresh model evaluation — and (2) the
//! two-phase compile-then-evaluate path is bit-for-bit identical to the
//! legacy one-shot predictors.

use hetsel::core::{DecisionEngine, Platform, Selector};
use hetsel::ir::{Binding, Kernel};
use hetsel::models::{
    power9_params, v100_params, CoalescingMode, CostModel, CpuCostModel, GpuCostModel, TripMode,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite_kernels() -> &'static Vec<Kernel> {
    static KERNELS: OnceLock<Vec<Kernel>> = OnceLock::new();
    KERNELS.get_or_init(|| {
        hetsel::polybench::suite()
            .into_iter()
            .flat_map(|b| b.kernels)
            .collect()
    })
}

fn shared_engine() -> &'static DecisionEngine {
    static ENGINE: OnceLock<DecisionEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        DecisionEngine::new(Selector::new(Platform::power9_v100()), suite_kernels())
    })
}

/// Binds the kernel's parameters to the generated values, cycling if the
/// kernel needs more than were generated; optionally leaves one unbound to
/// exercise the fallback path.
fn bind(kernel: &Kernel, values: &[i64], skip: Option<usize>) -> Binding {
    let mut b = Binding::new();
    for (idx, p) in kernel.params().iter().enumerate() {
        if Some(idx) == skip {
            continue;
        }
        b = b.with(p, values[idx % values.len()]);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance property: for any kernel and any binding, asking the
    /// engine twice and asking a cold selector once all yield the same
    /// decision — device, predictions, and recorded errors included.
    #[test]
    fn cached_decision_equals_uncached(
        kidx in 0usize..24,
        v1 in 1i64..600,
        v2 in 1i64..600,
        v3 in 1i64..600,
        unbind_raw in 0usize..8,
    ) {
        let kernels = suite_kernels();
        let k = &kernels[kidx % kernels.len()];
        let unbind = (unbind_raw < 3).then_some(unbind_raw);
        let b = bind(k, &[v1, v2, v3], unbind);

        let engine = shared_engine();
        let first = engine.decide(&k.name, &b).expect("region known");
        let second = engine.decide(&k.name, &b).expect("region known");
        prop_assert_eq!(&first, &second, "cache changed the answer for {}", k.name);

        let cold = Selector::new(Platform::power9_v100()).decide(k, &b);
        prop_assert_eq!(&first, &cold, "engine disagrees with cold path for {}", k.name);
    }

    /// The two-phase trait path reproduces the one-shot predictors exactly:
    /// same availability (Ok vs None) and bit-identical seconds.
    #[test]
    fn compile_then_evaluate_matches_one_shot(
        kidx in 0usize..24,
        v1 in 1i64..600,
        v2 in 1i64..600,
        v3 in 1i64..600,
        unbind_raw in 0usize..8,
        threads in prop::sample::select(vec![4u32, 32, 160]),
    ) {
        let kernels = suite_kernels();
        let k = &kernels[kidx % kernels.len()];
        let unbind = (unbind_raw < 3).then_some(unbind_raw);
        let b = bind(k, &[v1, v2, v3], unbind);

        let cpu_m = CpuCostModel {
            params: power9_params(),
            threads,
            trip_mode: TripMode::Runtime,
        };
        let gpu_m = GpuCostModel {
            params: v100_params(),
            trip_mode: TripMode::Runtime,
            coal_mode: CoalescingMode::Ipda,
        };

        let two_phase_cpu = cpu_m.compile(k).evaluate(&b).ok().map(|p| p.seconds);
        let one_shot_cpu = hetsel::models::cpu::predict(
            k, &b, &power9_params(), threads, TripMode::Runtime,
        ).map(|p| p.seconds);
        prop_assert_eq!(
            two_phase_cpu.map(f64::to_bits),
            one_shot_cpu.map(f64::to_bits),
            "cpu mismatch on {}", k.name
        );

        let two_phase_gpu = gpu_m.compile(k).evaluate(&b).ok().map(|p| p.seconds);
        let one_shot_gpu = hetsel::models::gpu::predict(
            k, &b, &v100_params(), TripMode::Runtime, CoalescingMode::Ipda,
        ).map(|p| p.seconds);
        prop_assert_eq!(
            two_phase_gpu.map(f64::to_bits),
            one_shot_gpu.map(f64::to_bits),
            "gpu mismatch on {}", k.name
        );
    }
}
