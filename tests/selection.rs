//! End-to-end selection tests across the whole framework: attribute
//! database, models, simulators, and the runtime selector.

use hetsel::core::{AttributeDatabase, Device, Platform, Policy, Selector};
use hetsel::ir::{Binding, Kernel};
use hetsel::models::{CoalescingMode, TripMode};
use hetsel::polybench::{all_kernels, suite, Dataset};

#[test]
fn database_compiles_whole_suite_and_selector_decides_every_region() {
    let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
    let sel = Selector::new(Platform::power9_v100());
    let db = AttributeDatabase::compile(&kernels, &sel);
    assert_eq!(db.len(), 24);

    for (name, kernel, binding) in all_kernels() {
        let region = db
            .region(&kernel.name)
            .unwrap_or_else(|| panic!("{name} missing"));
        let b = binding(Dataset::Mini);
        let d = sel.decide(region, &b);
        assert!(
            d.predicted_cpu_s.is_some() && d.predicted_gpu_s.is_some(),
            "{}: models must evaluate under a complete binding",
            kernel.name
        );
    }
}

#[test]
fn database_export_serializes_symbolic_strides() {
    let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
    let db = AttributeDatabase::compile(&kernels, &Selector::new(Platform::power9_v100()));
    let json = serde_json::to_string_pretty(&db.export()).unwrap();
    // The symbolic strides of the transposed walks survive serialisation.
    assert!(json.contains("[n]"));
    let back: hetsel::core::DatabaseExport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.regions.len(), 24);
}

#[test]
fn model_driven_beats_always_offload_on_mini() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform.clone());
    let mut model_time = 0.0;
    let mut offload_time = 0.0;
    let mut oracle_time = 0.0;
    for (_, kernel, binding) in all_kernels() {
        let b = binding(Dataset::Mini);
        let e = sel.evaluate(&kernel, &b).expect("simulators run");
        model_time += e.achieved_s();
        offload_time += e.measured.gpu_s;
        oracle_time += e.oracle_s();
    }
    // Mini inputs are pure overhead noise; require only sanity: the
    // selector stays within striking distance of the oracle and of blind
    // offloading (the substantive comparison lives in the paper-scale
    // model_accuracy tests and the fig8 binary).
    assert!(
        model_time <= offload_time * 2.0,
        "model {model_time} vs always-offload {offload_time}"
    );
    assert!(
        model_time <= oracle_time * 2.5,
        "model {model_time} vs oracle {oracle_time}"
    );
}

#[test]
fn policies_behave_as_labelled() {
    let (_, kernel, binding) = all_kernels().remove(0);
    let b = binding(Dataset::Mini);
    let p = Platform::power9_v100();
    assert_eq!(
        Selector::new(p.clone())
            .with_policy(Policy::AlwaysHost)
            .decide(&kernel, &b)
            .device,
        Device::Host
    );
    assert_eq!(
        Selector::new(p.clone())
            .with_policy(Policy::AlwaysOffload)
            .decide(&kernel, &b)
            .device,
        Device::Gpu
    );
}

#[test]
fn unresolved_bindings_fall_back_to_compiler_default() {
    let (_, kernel, _) = all_kernels().remove(0);
    let sel = Selector::new(Platform::power9_v100());
    let d = sel.decide(&kernel, &Binding::new());
    assert_eq!(d.device, Device::Gpu);
    assert!(d.predicted_cpu_s.is_none());
}

#[test]
fn selector_knobs_change_predictions() {
    let (kernel, binding) = hetsel::polybench::find_kernel("syrk").unwrap();
    let b = binding(Dataset::Test);
    let p = Platform::power9_v100();
    let ipda = Selector::new(p.clone()).predict(&kernel, &b).1.unwrap();
    let pess = Selector::new(p.clone())
        .with_coalescing(CoalescingMode::AssumeUncoalesced)
        .predict(&kernel, &b)
        .1
        .unwrap();
    assert!(
        pess >= ipda,
        "assume-uncoalesced must not be faster than IPDA"
    );

    let rt = Selector::new(p.clone()).predict(&kernel, &b).0.unwrap();
    let a128 = Selector::new(p)
        .with_trip_mode(TripMode::Assume128)
        .predict(&kernel, &b)
        .0
        .unwrap();
    // test-mode inner loops run 1100 iterations; the abstraction sees 128.
    assert!(rt > a128);
}

#[test]
fn decision_is_consistent_with_own_predictions() {
    let sel = Selector::new(Platform::power9_v100());
    for (_, kernel, binding) in all_kernels() {
        let b = binding(Dataset::Test);
        let d = sel.decide(&kernel, &b);
        let (c, g) = (d.predicted_cpu_s.unwrap(), d.predicted_gpu_s.unwrap());
        let expect = if g < c { Device::Gpu } else { Device::Host };
        assert_eq!(d.device, expect, "{}", kernel.name);
    }
}
