//! Cross-crate property-based tests: the symbolic machinery agrees with
//! brute-force numeric evaluation, and the simulators obey physical
//! invariants over randomly generated kernels and bindings.

use hetsel::ipda::{analyze, transactions_per_warp};
use hetsel::ir::{cexpr, linearize, Binding, Expr, Kernel, KernelBuilder, LoopVarId, Transfer};
use proptest::prelude::*;

/// Coefficients of a random affine index `a*i + b*j + c*n*i + d + e*n`.
#[derive(Debug, Clone, Copy)]
struct Coeffs {
    a: i64,
    b: i64,
    c: i64,
    d: i64,
    e: i64,
}

impl Coeffs {
    fn expr(&self) -> Expr {
        let i = LoopVarId(0);
        let j = LoopVarId(1);
        Expr::Const(self.a) * Expr::var(i)
            + Expr::Const(self.b) * Expr::var(j)
            + Expr::Const(self.c) * Expr::param("n") * Expr::var(i)
            + Expr::Const(self.d)
            + Expr::Const(self.e) * Expr::param("n")
    }

    fn eval(&self, iv: i64, jv: i64, nv: i64) -> i64 {
        self.a * iv + self.b * jv + self.c * nv * iv + self.d + self.e * nv
    }
}

fn affine_expr() -> impl Strategy<Value = Coeffs> {
    (-4i64..5, -4i64..5, 0i64..3, -8i64..9, 0i64..3).prop_map(|(a, b, c, d, e)| Coeffs {
        a,
        b,
        c,
        d,
        e,
    })
}

proptest! {
    /// IPDA's symbolic inter-thread difference equals the brute-force
    /// difference `index(j+1) - index(j)` for every binding: the analysis
    /// is exact on affine programs.
    #[test]
    fn ipd_matches_numeric_difference(co in affine_expr(), n in 1i64..200, iv in 0i64..50, jv in 0i64..50) {
        let e = co.expr();
        let mut kb = KernelBuilder::new("prop");
        let arr = kb.array("A", 4, &[Expr::param("n") * Expr::Const(64)], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let j = kb.parallel_loop(0, "n");
        let ld = kb.load(arr, std::slice::from_ref(&e));
        kb.store(arr, &[Expr::var(i) * Expr::Const(0) + Expr::var(j)], ld);
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();

        let info = analyze(&k);
        let access = &info.accesses[0];
        let b = Binding::new().with("n", n);
        let stride = access.thread_stride.resolve(&b).expect("affine resolves");
        // Brute force: thread dimension is j.
        let expected = co.eval(iv, jv + 1, n) - co.eval(iv, jv, n);
        prop_assert_eq!(stride, expected);
    }

    /// The linearised affine form evaluates identically to direct Expr
    /// evaluation at arbitrary points.
    #[test]
    fn linearize_matches_pointwise(co in affine_expr(), n in 1i64..100, iv in 0i64..40, jv in 0i64..40) {
        let e = co.expr();
        let mut kb = KernelBuilder::new("prop2");
        let arr = kb.array("A", 4, &[Expr::param("n"), Expr::param("n")], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let j = kb.parallel_loop(0, "n");
        let ld = kb.load(arr, &[e.clone(), Expr::var(j)]);
        kb.store(arr, &[Expr::var(i), Expr::var(j)], ld);
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();

        let r = hetsel::ir::ArrayRef { array: hetsel::ir::ArrayId(0), index: vec![e.clone(), Expr::Var(LoopVarId(1))] };
        let aff = linearize(&k, &r).expect("affine");
        let b = Binding::new().with("n", n);
        let vars = |v: LoopVarId| Some(if v.0 == 0 { iv } else { jv });
        let direct = e.eval(&b, &vars).unwrap() * n + jv;
        prop_assert_eq!(aff.eval(&b, &vars), Some(direct));
    }

    /// Warp transactions are bounded by [minimal, 32] and scale sanely.
    #[test]
    fn transactions_bounded(stride in -10_000i64..10_000, elem in prop::sample::select(vec![4u32, 8])) {
        let t = transactions_per_warp(stride, elem, 32);
        let minimal = (32 * elem).div_ceil(32);
        prop_assert!(t >= 1);
        prop_assert!(t <= 32 + (elem / 32).max(1) - 1 + 32, "t = {t}");
        if stride == 1 {
            prop_assert_eq!(t, minimal);
        }
        if stride == 0 {
            prop_assert_eq!(t, elem.div_ceil(32));
        }
    }
}

/// Builds a small reduction kernel with a configurable inner trip count.
fn reduction_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("prop-red");
    let a = kb.array("a", 4, &["n".into(), "m".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("s", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "m");
    let ld = kb.load(a, &[i.into(), j.into()]);
    kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
    kb.end_loop();
    kb.store_acc(y, &[i.into()], "s");
    kb.end_loop();
    kb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CPU simulator: more work never takes less time. (n is kept large
    /// enough that per-thread blocks exceed a cache line in both runs —
    /// below that, the smaller run legitimately pays a false-sharing
    /// penalty the larger one does not, and the comparison inverts.)
    #[test]
    fn cpu_time_monotone_in_work(n in 1024i64..4096, m in 8i64..64) {
        let k = reduction_kernel();
        let cpu = hetsel::cpusim::power9_host();
        let t1 = hetsel::cpusim::simulate(&k, &Binding::new().with("n", n).with("m", m), &cpu, 16).unwrap();
        let t2 = hetsel::cpusim::simulate(&k, &Binding::new().with("n", n * 2).with("m", m * 2), &cpu, 16).unwrap();
        prop_assert!(t2.total_s() >= t1.total_s());
    }

    /// GPU simulator: transfers grow monotonically with footprint and the
    /// kernel obeys the bandwidth roofline.
    #[test]
    fn gpu_invariants(n in 64i64..2048, m in 8i64..128) {
        let k = reduction_kernel();
        let gpu = hetsel::gpusim::tesla_v100();
        let b = Binding::new().with("n", n).with("m", m);
        let r = hetsel::gpusim::simulate(&k, &b, &gpu).unwrap();
        prop_assert!(r.kernel_s > 0.0);
        prop_assert!(r.transfer_in_s > 0.0);
        // Roofline: simulated time >= DRAM traffic / peak bandwidth.
        prop_assert!(r.kernel_s * gpu.mem_bandwidth_gbs * 1e9 >= r.dram_bytes * 0.99);
        let b2 = Binding::new().with("n", n * 2).with("m", m);
        let r2 = hetsel::gpusim::simulate(&k, &b2, &gpu).unwrap();
        prop_assert!(r2.transfer_in_s >= r.transfer_in_s);
    }

    /// Models: predictions are strictly positive and finite wherever the
    /// binding is complete.
    #[test]
    fn model_predictions_finite(n in 16i64..4096, m in 1i64..256) {
        let k = reduction_kernel();
        let b = Binding::new().with("n", n).with("m", m);
        let c = hetsel::models::cpu::predict(&k, &b, &hetsel::models::power9_params(), 32, hetsel::models::TripMode::Runtime).unwrap();
        prop_assert!(c.seconds.is_finite() && c.seconds > 0.0);
        let g = hetsel::models::gpu::predict(&k, &b, &hetsel::models::v100_params(), hetsel::models::TripMode::Runtime, hetsel::models::CoalescingMode::Ipda).unwrap();
        prop_assert!(g.seconds.is_finite() && g.seconds > 0.0);
        prop_assert!(g.mwp <= g.n_warps + 1e-9);
        prop_assert!(g.cwp <= g.n_warps + 1e-9);
    }
}
