//! Public-API surface snapshot for the umbrella crate.
//!
//! Every name and signature the prelude and the redesigned request API
//! promise is pinned here as a *typed* reference — removing an item,
//! changing a signature, or renaming a fleet builder breaks this file at
//! compile time, which is the point: downstream code holds exactly these
//! references. The runtime assertions at the bottom snapshot the name list
//! itself so an accidental rename shows up as a readable diff.

#![allow(clippy::type_complexity)] // the exact signatures ARE the snapshot

use std::time::Duration;

use std::sync::Arc;

use hetsel::core::{
    AcceleratorDevice, BreakerConfig, DeviceHealthSnapshot, DevicePrediction, DispatchTerms,
    HistoryRecord, Measured, ProfileHistory, RegionAttributes, RetryConfig,
};
use hetsel::models::GpuModelParams;
use hetsel::prelude::*;

/// Pin a function item to an explicit pointer type. The turbofish-free
/// assignment is the whole test: it fails to compile if the signature
/// drifts.
macro_rules! pin {
    ($ty:ty, $value:expr) => {{
        let pinned: $ty = $value;
        let _ = pinned;
    }};
}

#[test]
fn the_request_api_surface_is_stable() {
    // --- DecisionRequest: the redesigned request type ------------------
    pin!(fn(String, Binding) -> DecisionRequest, DecisionRequest::new);
    pin!(
        fn(DecisionRequest, Policy) -> DecisionRequest,
        DecisionRequest::with_policy
    );
    pin!(
        fn(DecisionRequest, Duration) -> DecisionRequest,
        DecisionRequest::with_deadline
    );
    pin!(
        fn(DecisionRequest) -> DecisionRequest,
        DecisionRequest::without_policy
    );
    pin!(
        fn(DecisionRequest) -> DecisionRequest,
        DecisionRequest::without_deadline
    );
    pin!(fn(&DecisionRequest) -> &str, DecisionRequest::region);
    pin!(fn(&DecisionRequest) -> &Binding, DecisionRequest::binding);
    pin!(
        fn(&DecisionRequest) -> Option<Policy>,
        DecisionRequest::policy_override
    );
    pin!(
        fn(&DecisionRequest) -> Option<Duration>,
        DecisionRequest::deadline
    );

    // --- Selector: the two canonical entry points ----------------------
    pin!(fn(Platform) -> Selector, Selector::new);
    pin!(fn(Selector, Policy) -> Selector, Selector::with_policy);
    pin!(
        fn(&Selector, &Kernel, &Binding) -> (Result<f64, ModelError>, Result<f64, ModelError>),
        Selector::predict::<Kernel>
    );
    pin!(
        fn(&Selector, &Kernel, &Binding) -> Decision,
        Selector::decide::<Kernel>
    );
    pin!(
        fn(&Selector, &RegionAttributes, &Binding) -> Decision,
        Selector::decide::<RegionAttributes>
    );

    // --- Calibration: the online feedback loop --------------------------
    pin!(
        fn(Selector, CalibrationMode) -> Selector,
        Selector::with_calibration
    );
    pin!(
        fn(Selector, Arc<Calibrator>) -> Selector,
        Selector::with_calibrator
    );
    pin!(fn(&Selector) -> CalibrationMode, Selector::calibration);
    pin!(fn(&Selector) -> &Arc<Calibrator>, Selector::calibrator);

    // --- ProfileHistory: the two canonical device-scoped entry points ---
    pin!(
        fn(&ProfileHistory, &str, &[String], &Binding, Option<&str>, Measured),
        ProfileHistory::observe_on
    );
    pin!(
        fn(&ProfileHistory, &str, &[String], &Binding, Option<&str>) -> Option<HistoryRecord>,
        ProfileHistory::lookup_on
    );

    // --- Fleet: the N-device generalization -----------------------------
    pin!(fn() -> Fleet, Fleet::host_only);
    pin!(fn(&Platform) -> Fleet, Fleet::pair);
    pin!(fn(&Platform, &str) -> Fleet, Fleet::pair_labeled);
    pin!(
        fn(Fleet, &str, hetsel::gpusim::GpuDescriptor, GpuModelParams) -> Fleet,
        Fleet::with_accelerator
    );
    pin!(
        fn(Fleet, &str, &Platform) -> Fleet,
        Fleet::with_accelerator_from
    );
    pin!(fn(Fleet, &str, u32) -> Fleet, Fleet::with_capacity);
    pin!(fn(&Fleet, &str) -> Option<Fleet>, Fleet::restrict);
    pin!(fn(&Fleet, &str) -> Option<DeviceId>, Fleet::device_id_of);
    pin!(fn(&Fleet, DeviceId) -> Option<&str>, Fleet::label);
    pin!(fn(&Fleet, DeviceId) -> Option<DeviceKind>, Fleet::kind);
    pin!(fn(&Fleet) -> &[AcceleratorDevice], Fleet::accelerators);
    pin!(fn(Selector, Fleet) -> Selector, Selector::with_fleet);
    pin!(fn(&Selector) -> &Fleet, Selector::fleet);
    pin!(
        fn(
            &Selector,
            &str,
            Option<Result<f64, ModelError>>,
            &[Option<Result<f64, ModelError>>],
        ) -> Decision,
        Selector::decide_from_outcomes
    );
    pin!(
        fn(&DecisionEngine, &str, &Binding, DeviceId) -> Option<Decision>,
        DecisionEngine::decide_for
    );

    // --- DecisionEngine: request-level entry points ---------------------
    pin!(
        fn(Selector, &[Kernel]) -> DecisionEngine,
        DecisionEngine::new
    );
    pin!(
        fn(&DecisionEngine, &str, &Binding) -> Option<Decision>,
        DecisionEngine::decide
    );
    pin!(
        fn(&DecisionEngine, &DecisionRequest) -> Option<Decision>,
        DecisionEngine::decide_request
    );
    pin!(
        fn(&DecisionEngine, &DecisionRequest, Duration) -> Option<Decision>,
        DecisionEngine::decide_within
    );
    pin!(
        fn(&DecisionEngine, &[DecisionRequest]) -> Vec<Option<Decision>>,
        DecisionEngine::decide_batch
    );
    pin!(
        fn(&DecisionEngine, &str, &Binding) -> Option<Explanation>,
        DecisionEngine::explain
    );

    // --- Dispatcher: the fault-tolerant runtime -------------------------
    pin!(
        fn(DecisionEngine, DispatcherConfig) -> Dispatcher,
        Dispatcher::new
    );
    pin!(
        fn(&Dispatcher, &DecisionRequest) -> Result<DispatchOutcome, DispatchError>,
        Dispatcher::dispatch
    );
    pin!(
        fn(&Dispatcher, &DecisionRequest, Duration) -> Result<DispatchOutcome, DispatchError>,
        Dispatcher::dispatch_within
    );
    pin!(
        fn(&Dispatcher, &DecisionRequest) -> Result<(DispatchOutcome, Explanation), DispatchError>,
        Dispatcher::dispatch_explained
    );
    pin!(fn(&Dispatcher) -> &DecisionEngine, Dispatcher::engine);
    pin!(
        fn(&Dispatcher, Device) -> BreakerState,
        Dispatcher::breaker_state
    );
    pin!(
        fn(&Dispatcher, Device) -> DeviceHealthSnapshot,
        Dispatcher::health
    );
    pin!(
        fn(&Dispatcher) -> (DeviceHealthSnapshot, DeviceHealthSnapshot),
        Dispatcher::publish_health
    );
    pin!(
        fn(&Dispatcher, DeviceId) -> Option<BreakerState>,
        Dispatcher::breaker_state_by_id
    );
    pin!(
        fn(&Dispatcher, DeviceId) -> Option<DeviceHealthSnapshot>,
        Dispatcher::health_by_id
    );
    pin!(
        fn(&Dispatcher) -> Vec<DeviceHealthSnapshot>,
        Dispatcher::publish_health_all
    );

    // --- DispatcherConfig builders --------------------------------------
    pin!(
        fn(DispatcherConfig, FaultPlan) -> DispatcherConfig,
        DispatcherConfig::with_gpu_faults
    );
    pin!(
        fn(DispatcherConfig, FaultPlan) -> DispatcherConfig,
        DispatcherConfig::with_cpu_faults
    );
    pin!(
        fn(DispatcherConfig, &str, FaultPlan) -> DispatcherConfig,
        DispatcherConfig::with_device_faults
    );
    pin!(
        fn(DispatcherConfig, BreakerConfig) -> DispatcherConfig,
        DispatcherConfig::with_breaker
    );
    pin!(
        fn(DispatcherConfig, RetryConfig) -> DispatcherConfig,
        DispatcherConfig::with_retry
    );

    // --- FaultPlan constructors ------------------------------------------
    pin!(fn() -> FaultPlan, FaultPlan::none);
    pin!(fn(u64, f64) -> FaultPlan, FaultPlan::transient);
    pin!(fn(u64, f64) -> FaultPlan, FaultPlan::permanent);
    pin!(fn(FaultPlan, f64) -> FaultPlan, FaultPlan::with_jitter);
}

#[test]
fn the_public_enums_carry_their_promised_variants() {
    // `#[non_exhaustive]` lets these grow, but the documented variants must
    // not disappear. Constructing each one pins it.
    let _ = [Device::Host, Device::Gpu];
    let _ = [
        Policy::ModelDriven,
        Policy::AlwaysHost,
        Policy::AlwaysOffload,
    ];
    let _ = [
        BreakerState::Closed,
        BreakerState::Open,
        BreakerState::HalfOpen,
    ];
    let _ = [
        CalibrationMode::Off,
        CalibrationMode::Shadow,
        CalibrationMode::Active,
    ];
    let _ = [FaultKind::Transient, FaultKind::Permanent];
    let _ = [DeviceKind::Host, DeviceKind::Accelerator];
    let _ = [DeviceId::HOST, DeviceId(1)];
    let _ = [
        FallbackReason::DeadlineExceeded,
        FallbackReason::BreakerOpen {
            device: Device::Gpu,
        },
        FallbackReason::CapacityExhausted {
            device: Device::Gpu,
        },
        FallbackReason::DeviceFault {
            device: Device::Gpu,
            kind: FaultKind::Transient,
        },
    ];
    let errors = [
        DispatchError::UnknownRegion { region: "r".into() },
        DispatchError::AllDevicesFailed { region: "r".into() },
        DispatchError::Unsimulatable { region: "r".into() },
    ];
    // DispatchError implements the std error traits.
    for e in &errors {
        let _: &dyn std::error::Error = e;
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn the_prelude_name_list_is_the_documented_snapshot() {
    // Compile-time presence check for every prelude name (a `use` of each,
    // so a removal or a rename fails loudly), plus the sorted-list snapshot
    // that makes the diff readable when this test does fail.
    #[rustfmt::skip]
    const PRELUDE: &[&str] = &[
        "AttributeDatabase", "Binding", "BreakerState", "CalibrationMode", "Calibrator",
        "CompiledModel", "CostModel", "Decision", "DecisionEngine", "DecisionRequest",
        "Device", "DeviceId", "DeviceKind", "DispatchError", "DispatchOutcome",
        "Dispatcher", "DispatcherConfig", "Explanation", "Expr", "FallbackReason",
        "FaultKind", "FaultPlan", "Fleet", "Kernel", "KernelBuilder",
        "ModelError", "Platform", "Policy", "Prediction", "Selector",
        "Transfer", "cexpr",
    ];
    let mut sorted = PRELUDE.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, PRELUDE, "keep the snapshot sorted");

    // One reference per name; `hetsel::prelude` must export all of them.
    // The model traits are not object-safe (associated types), so they are
    // pinned as generic bounds.
    use hetsel::prelude as p;
    fn _pins_cost_model<M: p::CostModel>() {}
    fn _pins_compiled_model<M: p::CompiledModel>() {}
    let _ = (
        std::any::type_name::<p::AttributeDatabase>(),
        std::any::type_name::<p::Binding>(),
        std::any::type_name::<p::BreakerState>(),
        std::any::type_name::<p::CalibrationMode>(),
        std::any::type_name::<p::Calibrator>(),
        std::any::type_name::<p::Decision>(),
        std::any::type_name::<p::DecisionEngine>(),
        std::any::type_name::<p::DecisionRequest>(),
        std::any::type_name::<p::Device>(),
        std::any::type_name::<p::DeviceId>(),
        std::any::type_name::<p::DeviceKind>(),
        std::any::type_name::<p::DispatchError>(),
        std::any::type_name::<p::DispatchOutcome>(),
        std::any::type_name::<p::Dispatcher>(),
        std::any::type_name::<p::DispatcherConfig>(),
        std::any::type_name::<p::Explanation>(),
        std::any::type_name::<p::Expr>(),
        std::any::type_name::<p::FallbackReason>(),
        std::any::type_name::<p::FaultKind>(),
        std::any::type_name::<p::FaultPlan>(),
        std::any::type_name::<p::Fleet>(),
        std::any::type_name::<p::Kernel>(),
        std::any::type_name::<p::KernelBuilder>(),
        std::any::type_name::<p::ModelError>(),
        std::any::type_name::<p::Platform>(),
        std::any::type_name::<p::Policy>(),
        std::any::type_name::<p::Prediction>(),
        std::any::type_name::<p::Selector>(),
        std::any::type_name::<p::Transfer>(),
        p::cexpr::scalar("n"),
    );
}

#[test]
fn device_predictions_mirror_the_documented_json_schema() {
    // The explain schema's per-candidate block: exactly these fields,
    // these types. A struct literal is an exhaustive field check.
    let row = DevicePrediction {
        name: "v100".to_string(),
        kind: "accelerator".to_string(),
        predicted_s: Some(1e-3),
        error: None,
    };
    let json = serde_json::to_string(&row).expect("serializes");
    for key in ["\"name\"", "\"kind\"", "\"predicted_s\"", "\"error\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn dispatch_terms_mirror_the_documented_json_schema() {
    // The explain schema's dispatch block: exactly these fields, these
    // types. A struct literal is an exhaustive field check.
    let terms = DispatchTerms {
        device: "gpu".to_string(),
        attempts: 1,
        retries: 0,
        fallback: None,
        simulated_s: 1e-3,
        gpu_breaker: "closed".to_string(),
        cpu_breaker: "closed".to_string(),
    };
    let json = serde_json::to_string(&terms).expect("serializes");
    for key in [
        "\"device\"",
        "\"attempts\"",
        "\"retries\"",
        "\"fallback\"",
        "\"simulated_s\"",
        "\"gpu_breaker\"",
        "\"cpu_breaker\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
