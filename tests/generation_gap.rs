//! Integration tests for the paper's Section III claims: a single GPU
//! generation can flip the offloading decision, and the magnitude of
//! change across generations is large.

use hetsel::core::{Platform, Selector};
use hetsel::polybench::{find_kernel, Dataset};

fn measure(name: &str, ds: Dataset, platform: &Platform) -> (f64, f64) {
    let (k, binding) = find_kernel(name).expect("kernel exists");
    let sel = Selector::new(platform.clone());
    let m = sel.measure(&k, &binding(ds)).expect("simulators run");
    (m.cpu_s, m.gpu_s)
}

/// 3DCONV: "a far better fit for execution on the CPU when the accelerator
/// choice is Kepler ... Yet, a Volta-equipped machine ... sees a dramatic
/// speedup when offloading the same computation."
#[test]
fn conv3d_offloading_decision_flips_across_generations() {
    let (c8, g8) = measure("3dconv", Dataset::Benchmark, &Platform::power8_k80());
    let (c9, g9) = measure("3dconv", Dataset::Benchmark, &Platform::power9_v100());
    assert!(
        c8 < g8,
        "K80 platform should keep 3dconv on the host: {c8} vs {g8}"
    );
    assert!(c9 > g9, "V100 platform should offload 3dconv: {c9} vs {g9}");
}

/// CORR mean/std: "a good candidate for acceleration for a POWER8 host,
/// but should not be offloaded on a POWER9 machine" — POWER9's broader
/// vector support keeps the reduction kernels home.
#[test]
fn corr_reduction_kernels_flip_the_other_way() {
    // corr.mean flips outright; corr.std lands at parity on POWER9 (one of
    // the paper's "close decisions") — require at least a 10x shift in the
    // speedup ratio between the generations for both.
    for name in ["corr.mean", "corr.std"] {
        let (c8, g8) = measure(name, Dataset::Benchmark, &Platform::power8_k80());
        let (c9, g9) = measure(name, Dataset::Benchmark, &Platform::power9_v100());
        assert!(
            c8 > 1.5 * g8,
            "{name}: offload clearly profitable on POWER8+K80 ({c8} vs {g8})"
        );
        assert!(
            c9 < g9 * 1.1,
            "{name}: host at least at parity on POWER9+V100 ({c9} vs {g9})"
        );
    }
    let (c8, g8) = measure("corr.mean", Dataset::Benchmark, &Platform::power8_k80());
    let (c9, g9) = measure("corr.mean", Dataset::Benchmark, &Platform::power9_v100());
    assert!(
        c8 / g8 > 1.0 && c9 / g9 < 1.0,
        "corr.mean decision flips outright"
    );
}

/// The magnitude of the offloading speedup shifts enormously between
/// generations even when the decision does not flip (the paper's ATAX
/// observation).
#[test]
fn speedup_magnitude_shifts_across_generations() {
    let (c8, g8) = measure("gemm", Dataset::Test, &Platform::power8_k80());
    let (c9, g9) = measure("gemm", Dataset::Test, &Platform::power9_v100());
    let s8 = c8 / g8;
    let s9 = c9 / g9;
    assert!(s8 > 1.0 && s9 > 1.0, "gemm offloads on both platforms");
    assert!(
        s9 > 5.0 * s8,
        "generation gap should be large: {s8} vs {s9}"
    );
}

/// The V100 beats the K80 outright on every kernel of the suite — newer
/// silicon is strictly faster even where offloading is unprofitable.
#[test]
fn v100_is_strictly_faster_than_k80() {
    for name in ["gemm", "3dconv", "atax.k2", "syrk", "corr.corr", "gesummv"] {
        let (_, g8) = measure(name, Dataset::Test, &Platform::power8_k80());
        let (_, g9) = measure(name, Dataset::Test, &Platform::power9_v100());
        assert!(g9 < g8, "{name}: V100 {g9} should beat K80 {g8}");
    }
}

/// NVLink vs PCIe: the transfer component alone shrinks by more than 3x.
#[test]
fn interconnect_gap_shows_in_transfer_bound_kernels() {
    let (k, binding) = find_kernel("covar.center").unwrap();
    let b = binding(Dataset::Benchmark);
    let k80 = hetsel::gpusim::simulate(&k, &b, &hetsel::gpusim::tesla_k80()).unwrap();
    let v100 = hetsel::gpusim::simulate(&k, &b, &hetsel::gpusim::tesla_v100()).unwrap();
    assert!(k80.transfer_in_s > 3.0 * v100.transfer_in_s);
    assert!(k80.transfer_out_s > 3.0 * v100.transfer_out_s);
}
