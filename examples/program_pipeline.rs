//! Program-level planning in action: the 3MM pipeline (`E = A·B`,
//! `F = C·D`, `G = E·F`) decided as a whole, with intermediates kept
//! resident on the chosen device — OpenMP `target data` semantics layered
//! over the paper's per-region selector.
//!
//! ```text
//! cargo run --release --example program_pipeline
//! ```

use hetsel::core::{plan_program, Platform, Selector};
use hetsel::polybench::{full_suite, Dataset};

fn main() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform.clone());

    for name in ["3MM", "2MM", "CORR", "FDTD2D"] {
        let program = full_suite().into_iter().find(|b| b.name == name).unwrap();
        println!("== {} ({} regions)", program.name, program.kernels.len());
        for ds in Dataset::paper_modes() {
            let binding = (program.binding)(ds);

            // Per-region view (the paper's methodology).
            print!("  {ds:<9} per-region:");
            for k in &program.kernels {
                let d = sel.decide(k, &binding);
                print!(" {}={}", k.name, d.device);
            }
            println!();

            // Whole-program view with residency.
            let plan = plan_program(&program.kernels, &binding, &platform).unwrap();
            print!("  {ds:<9} planned:   ");
            for (name, d) in &plan.assignments {
                print!(" {name}={d}");
            }
            println!(
                "\n  {ds:<9} predicted: {:.3} ms planned vs {:.3} ms naive ({:.2}x)",
                plan.predicted_s * 1e3,
                plan.naive_predicted_s * 1e3,
                plan.gain_over_naive()
            );
        }
        println!();
    }
    println!(
        "Chained regions stop paying for intermediate transfers once the\n\
         planner sees the program instead of one launch at a time."
    );
}
