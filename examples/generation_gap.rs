//! The paper's Section III story: one GPU generation can flip the
//! offloading decision. Runs the 3-D convolution (heavily memory-bound, low
//! arithmetic intensity) on both experimental platforms and shows the
//! decision inverting, plus the CORR mean/std kernels flipping the other
//! way thanks to POWER9's vector support.
//!
//! ```text
//! cargo run --release --example generation_gap
//! ```

use hetsel::core::{Platform, Selector};
use hetsel::polybench::{find_kernel, Dataset};

fn main() {
    let platforms = [Platform::power8_k80(), Platform::power9_v100()];
    let cases = [
        ("3dconv", "memory-bound stencil: wins on Volta's 900 GB/s"),
        ("corr.mean", "vectorisable reduction: POWER9 keeps it home"),
        ("corr.std", "vectorisable reduction: POWER9 keeps it home"),
        ("atax.k1", "transfer-dominated in benchmark mode"),
    ];

    for (name, why) in cases {
        let (kernel, binding) = find_kernel(name).expect("kernel exists");
        let b = binding(Dataset::Benchmark);
        println!("== {name} (benchmark mode) — {why}");
        for platform in &platforms {
            let sel = Selector::new(platform.clone());
            let m = sel.measure(&kernel, &b).expect("simulators run");
            let d = sel.decide(&kernel, &b);
            println!(
                "  {:<24} host {:>9.2?}ms  gpu {:>9.2?}ms  true speedup {:>5.2}x  -> {} ({})",
                platform.name,
                m.cpu_s * 1e3,
                m.gpu_s * 1e3,
                m.speedup().unwrap_or(f64::NAN),
                m.best_device(),
                if d.device == m.best_device() {
                    "model agrees"
                } else {
                    "model disagrees"
                },
            );
        }
        println!();
    }
    println!(
        "The same source code, recompiled for a different node, changes sides —\n\
         the paper's argument for making the decision in the runtime, per launch."
    );
}
