//! Extensions in action: profile feedback (paper §V — "profiling could
//! compliment our methodology by feeding the program attribute database
//! with more actionable data over time") and cooperative CPU+GPU splitting
//! (the Valero-Lara schemes motivating the paper's introduction).
//!
//! ```text
//! cargo run --release --example adaptive_runtime
//! ```

use hetsel::core::{best_split, AdaptiveSelector, Platform, Selector};
use hetsel::polybench::{find_kernel, Dataset};

fn main() {
    let platform = Platform::power9_v100();

    // --- profile feedback ---------------------------------------------
    println!("== profile feedback: the convolution misprediction heals itself\n");
    let adaptive = AdaptiveSelector::new(Selector::new(platform.clone()));
    let (kernel, binding) = find_kernel("3dconv").unwrap();
    let b = binding(Dataset::Benchmark);
    for launch in 1..=3 {
        let (decision, cost) = adaptive.run_and_learn(&kernel, &b).unwrap();
        println!(
            "launch {launch}: chose {:<5} cost {:.2} ms   (history holds {} configs)",
            format!("{}", decision.device),
            cost * 1e3,
            adaptive.history.len()
        );
    }
    println!(
        "\nThe first launch follows the analytical model (host — the paper's\n\
         documented conv misprediction); every later launch uses the observed\n\
         truth and offloads.\n"
    );

    // --- cooperative split ----------------------------------------------
    println!("== cooperative CPU+GPU execution: fractional offloading\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "kernel", "host-only", "gpu-only", "split", "gpu frac", "gain"
    );
    for name in ["corr.std", "2dconv", "gemm", "atax.k2", "covar.mean"] {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Benchmark);
        let s = best_split(&kernel, &b, &platform, 64).unwrap();
        println!(
            "{:<14} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2} {:>7.2}x",
            name,
            s.host_only_s * 1e3,
            s.gpu_only_s * 1e3,
            s.predicted_s * 1e3,
            s.gpu_fraction,
            s.gain_over_best_single()
        );
    }
    println!(
        "\nKernels where the devices are evenly matched gain the most from\n\
         splitting; lopsided kernels collapse to a single device, so the\n\
         extension never costs anything the binary selector had."
    );
}
