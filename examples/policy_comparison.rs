//! A miniature of the paper's Figure 8: run every Polybench kernel under
//! the three runtime policies — never offload, always offload (the
//! compiler default), and the model-driven selector — and compare the
//! suite-wide outcome against the oracle.
//!
//! Uses the paper's `test` dataset; see `cargo run -p hetsel-bench --bin
//! fig8` for the full-size experiment.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use hetsel::core::{geomean, Device, Platform, Policy, Selector};
use hetsel::polybench::{all_kernels, Dataset};

fn main() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform.clone());
    let ds = Dataset::Test;

    println!(
        "policy comparison on {} — {} mode, {} host threads\n",
        platform.name, ds, platform.host_threads
    );

    let mut rows = Vec::new();
    for (_, kernel, binding) in all_kernels() {
        let b = binding(ds);
        let e = sel.evaluate(&kernel, &b).expect("simulators run");
        rows.push(e);
    }

    for policy in [
        Policy::AlwaysHost,
        Policy::AlwaysOffload,
        Policy::ModelDriven,
    ] {
        let mut speedups = Vec::new();
        let mut correct = 0;
        for e in &rows {
            let device = match policy {
                Policy::AlwaysHost => Device::Host,
                Policy::AlwaysOffload => Device::Gpu,
                _ => e.decision.device,
            };
            speedups.push(e.measured.cpu_s / e.measured.on(device));
            if device == e.measured.best_device() {
                correct += 1;
            }
        }
        println!(
            "{:<16} geomean speedup {:>6.2}x   correct decisions {:>2}/{}",
            format!("{policy:?}"),
            geomean(speedups.iter().copied()),
            correct,
            rows.len()
        );
    }
    let oracle = geomean(rows.iter().map(|e| e.measured.cpu_s / e.oracle_s()));
    println!(
        "{:<16} geomean speedup {:>6.2}x   (upper bound)",
        "Oracle", oracle
    );

    println!("\nper-kernel choices of the model-driven selector:");
    for e in &rows {
        println!(
            "  {:<14} -> {:<5} (true speedup {:>6.2}x) {}",
            e.decision.region,
            format!("{}", e.decision.device),
            e.measured.speedup().unwrap_or(f64::NAN),
            if e.correct() { "" } else { "  <- mispredicted" }
        );
    }
}
