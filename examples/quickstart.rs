//! Quickstart: define an OpenMP-style kernel, compile its static
//! attributes, and let the hybrid runtime pick the execution target.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetsel::prelude::*;

fn main() {
    // #pragma omp target teams distribute parallel for map(to: x) map(tofrom: y)
    // for (i = 0; i < n; i++) y[i] = a * x[i] + y[i];
    let mut kb = KernelBuilder::new("axpy");
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let rhs = cexpr::add(
        cexpr::mul(cexpr::scalar("a"), kb.load(x, &[i.into()])),
        kb.load(y, &[i.into()]),
    );
    kb.store(y, &[i.into()], rhs);
    kb.end_loop();
    let kernel = kb.finish();

    // Compile-time half: static features + IPDA symbolic strides + both
    // cost models, fully compiled for the selector's configuration.
    let selector = Selector::new(Platform::power9_v100());
    let db = AttributeDatabase::compile(std::slice::from_ref(&kernel), &selector);
    let region = db.region("axpy").unwrap();
    println!("compiled region '{}':", kernel.name);
    println!(
        "  runtime parameters required: {:?}",
        region.required_params
    );
    for a in &region.access_info.accesses {
        println!(
            "  {} {}: IPD_thread = {}",
            if a.is_store { "store" } else { "load " },
            kernel.array(a.array).name,
            a.thread_stride
        );
    }

    // Runtime half: the decision engine binds values, evaluates the
    // precompiled models, and memoizes the decision per (region, values).
    let engine = DecisionEngine::from_database(selector, db, 64);
    println!(
        "\n{:<14} {:>12} {:>12} {:>10} {:>8}",
        "n", "pred CPU", "pred GPU", "speedup", "target"
    );
    for exp in [10u32, 14, 18, 22, 26] {
        let n = 1i64 << exp;
        let binding = Binding::new().with("n", n);
        let d = engine.decide("axpy", &binding).unwrap();
        println!(
            "{:<14} {:>10.1}µs {:>10.1}µs {:>9.2}x {:>8}",
            format!("2^{exp}"),
            d.predicted_cpu_s.unwrap() * 1e6,
            d.predicted_gpu_s.unwrap() * 1e6,
            d.predicted_speedup().unwrap(),
            d.device
        );
    }
    // Re-reaching a region with known extents is a cache hit.
    let _ = engine.decide("axpy", &Binding::new().with("n", 1i64 << 26));
    let stats = engine.stats();
    println!(
        "\ndecision cache: {} hits / {} misses",
        stats.hits, stats.misses
    );

    // Sanity: run the real computation on the host through rayon, the way
    // the fallback path would.
    let n = 1 << 16;
    let a = 2.5f32;
    let xs: Vec<f32> = (0..n).map(|v| v as f32).collect();
    let mut ys: Vec<f32> = (0..n).map(|v| (v % 7) as f32).collect();
    use hetsel::ir as _;
    {
        use rayon::prelude::*;
        ys.par_iter_mut().zip(&xs).for_each(|(y, x)| *y += a * x);
    }
    println!(
        "\nhost fallback executed axpy over {n} elements; y[42] = {}",
        ys[42]
    );
}
