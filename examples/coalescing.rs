//! The paper's Section IV.C worked example, end to end: IPDA builds the
//! symbolic inter-thread stride `IPD_th(A[max·a]) = [max]` at compile time;
//! the runtime binds `max` and the stride collapses to a concrete
//! coalescing verdict that swings the GPU model's prediction.
//!
//! ```text
//! cargo run --release --example coalescing
//! ```

use hetsel::ipda::{analyze, transactions_per_warp};
use hetsel::ir::{cexpr, Binding, Expr, KernelBuilder, Transfer};
use hetsel::models::{gpu, v100_params, CoalescingMode, TripMode};

fn main() {
    // #pragma omp teams distribute parallel for
    // for (int a = 0; a < max; a++) A[max * a] = ...;
    let mut kb = KernelBuilder::new("paper-iv-c");
    let arr = kb.array(
        "A",
        4,
        &[Expr::param("max") * Expr::param("max")],
        Transfer::InOut,
    );
    let a = kb.parallel_loop(0, "max");
    let ld = kb.load(arr, &[Expr::param("max") * Expr::var(a)]);
    kb.store(
        arr,
        &[Expr::param("max") * Expr::var(a)],
        cexpr::mul(cexpr::scalar("alpha"), ld),
    );
    kb.end_loop();
    let kernel = kb.finish();

    let info = analyze(&kernel);
    let store = info.accesses.iter().find(|x| x.is_store).unwrap();
    println!("compile time:");
    println!("  IPD_th(A[max*a]) = {}", store.thread_stride);
    println!("  (symbolic — stored in the program attribute database)\n");

    println!("runtime bindings:");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>16}",
        "max", "stride", "txns/warp", "pattern", "pred GPU time"
    );
    for max in [1i64, 2, 8, 32, 1024, 9600] {
        let b = Binding::new().with("max", max);
        let stride = store.thread_stride.resolve(&b).unwrap();
        let txns = transactions_per_warp(stride, 4, 32);
        let pattern = format!("{:?}", store.thread_pattern(&b));
        let pred = gpu::predict(
            &kernel,
            &b,
            &v100_params(),
            TripMode::Runtime,
            CoalescingMode::Ipda,
        );
        let t = pred
            .map(|p| format!("{:9.1}µs", p.seconds * 1e6))
            .unwrap_or_default();
        println!("{max:>8} {stride:>10} {txns:>14} {pattern:>14} {t:>16}");
    }

    // The ATAX contrast: same matrix, two regions, opposite verdicts.
    println!("\nATAX: the same matrix walked two ways");
    let ks = hetsel::polybench::atax::kernels();
    let b = hetsel::polybench::atax::binding(hetsel::polybench::Dataset::Test);
    for k in &ks {
        let info = analyze(k);
        let acc = info
            .accesses
            .iter()
            .find(|x| k.array(x.array).name == "A")
            .unwrap();
        println!(
            "  {}: IPD_th(A) = {:<6} -> {:?}",
            k.name,
            format!("{}", acc.thread_stride),
            acc.thread_pattern(&b)
        );
    }
    println!(
        "\nNo profiling run was needed for any of this — the paper's key\n\
         advantage over trace-driven coalescing detection."
    );
}
