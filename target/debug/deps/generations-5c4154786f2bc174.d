/root/repo/target/debug/deps/generations-5c4154786f2bc174.d: crates/bench/src/bin/generations.rs Cargo.toml

/root/repo/target/debug/deps/libgenerations-5c4154786f2bc174.rmeta: crates/bench/src/bin/generations.rs Cargo.toml

crates/bench/src/bin/generations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
