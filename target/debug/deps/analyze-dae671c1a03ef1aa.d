/root/repo/target/debug/deps/analyze-dae671c1a03ef1aa.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/analyze-dae671c1a03ef1aa: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
