/root/repo/target/debug/deps/fig8-b1ddc26d07ab0148.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b1ddc26d07ab0148: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
