/root/repo/target/debug/deps/fig6-6f6e971ad5822951.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6f6e971ad5822951: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
