/root/repo/target/debug/deps/gpu_props-3ef08297f76c568a.d: crates/gpusim/tests/gpu_props.rs

/root/repo/target/debug/deps/gpu_props-3ef08297f76c568a: crates/gpusim/tests/gpu_props.rs

crates/gpusim/tests/gpu_props.rs:
