/root/repo/target/debug/deps/program_study-fa061958756d5a70.d: crates/bench/src/bin/program_study.rs

/root/repo/target/debug/deps/program_study-fa061958756d5a70: crates/bench/src/bin/program_study.rs

crates/bench/src/bin/program_study.rs:
