/root/repo/target/debug/deps/threads-9bc474e696bf9e4a.d: crates/bench/src/bin/threads.rs Cargo.toml

/root/repo/target/debug/deps/libthreads-9bc474e696bf9e4a.rmeta: crates/bench/src/bin/threads.rs Cargo.toml

crates/bench/src/bin/threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
