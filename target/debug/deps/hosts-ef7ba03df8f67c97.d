/root/repo/target/debug/deps/hosts-ef7ba03df8f67c97.d: crates/bench/src/bin/hosts.rs

/root/repo/target/debug/deps/hosts-ef7ba03df8f67c97: crates/bench/src/bin/hosts.rs

crates/bench/src/bin/hosts.rs:
