/root/repo/target/debug/deps/props-5757bf5135c39265.d: tests/props.rs

/root/repo/target/debug/deps/props-5757bf5135c39265: tests/props.rs

tests/props.rs:
