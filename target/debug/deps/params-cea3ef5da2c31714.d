/root/repo/target/debug/deps/params-cea3ef5da2c31714.d: crates/bench/src/bin/params.rs Cargo.toml

/root/repo/target/debug/deps/libparams-cea3ef5da2c31714.rmeta: crates/bench/src/bin/params.rs Cargo.toml

crates/bench/src/bin/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
