/root/repo/target/debug/deps/fuzz-2fdfc12cff45ef24.d: tests/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-2fdfc12cff45ef24.rmeta: tests/fuzz.rs Cargo.toml

tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
