/root/repo/target/debug/deps/ablation-dc51ec1115ff5919.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-dc51ec1115ff5919: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
