/root/repo/target/debug/deps/hetsel-263af31676596a42.d: src/lib.rs

/root/repo/target/debug/deps/hetsel-263af31676596a42: src/lib.rs

src/lib.rs:
