/root/repo/target/debug/deps/export_json-f65bba2c2ed7e943.d: crates/bench/src/bin/export_json.rs Cargo.toml

/root/repo/target/debug/deps/libexport_json-f65bba2c2ed7e943.rmeta: crates/bench/src/bin/export_json.rs Cargo.toml

crates/bench/src/bin/export_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
