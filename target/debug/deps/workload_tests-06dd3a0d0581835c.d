/root/repo/target/debug/deps/workload_tests-06dd3a0d0581835c.d: crates/gpusim/tests/workload_tests.rs

/root/repo/target/debug/deps/workload_tests-06dd3a0d0581835c: crates/gpusim/tests/workload_tests.rs

crates/gpusim/tests/workload_tests.rs:
