/root/repo/target/debug/deps/threads-7be0a6b78ac83d40.d: crates/bench/src/bin/threads.rs Cargo.toml

/root/repo/target/debug/deps/libthreads-7be0a6b78ac83d40.rmeta: crates/bench/src/bin/threads.rs Cargo.toml

crates/bench/src/bin/threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
