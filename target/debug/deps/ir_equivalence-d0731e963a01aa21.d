/root/repo/target/debug/deps/ir_equivalence-d0731e963a01aa21.d: crates/polybench/tests/ir_equivalence.rs

/root/repo/target/debug/deps/ir_equivalence-d0731e963a01aa21: crates/polybench/tests/ir_equivalence.rs

crates/polybench/tests/ir_equivalence.rs:
