/root/repo/target/debug/deps/gpu_props-30166b346ae7c2f3.d: crates/gpusim/tests/gpu_props.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_props-30166b346ae7c2f3.rmeta: crates/gpusim/tests/gpu_props.rs Cargo.toml

crates/gpusim/tests/gpu_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
