/root/repo/target/debug/deps/hetsel_cpusim-11d471a3a242a615.d: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/debug/deps/libhetsel_cpusim-11d471a3a242a615.rlib: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/debug/deps/libhetsel_cpusim-11d471a3a242a615.rmeta: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

crates/cpusim/src/lib.rs:
crates/cpusim/src/arch.rs:
crates/cpusim/src/cache.rs:
crates/cpusim/src/calibrate.rs:
crates/cpusim/src/engine.rs:
crates/cpusim/src/sampler.rs:
