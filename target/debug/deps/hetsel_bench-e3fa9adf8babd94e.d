/root/repo/target/debug/deps/hetsel_bench-e3fa9adf8babd94e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_bench-e3fa9adf8babd94e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
