/root/repo/target/debug/deps/hetsel_gpusim-8e2d972b3023b00b.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/debug/deps/hetsel_gpusim-8e2d972b3023b00b: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
