/root/repo/target/debug/deps/ablation-88c524ab11a5b4f1.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-88c524ab11a5b4f1: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
