/root/repo/target/debug/deps/ipda_report-86c7979467e4159d.d: crates/bench/src/bin/ipda_report.rs

/root/repo/target/debug/deps/ipda_report-86c7979467e4159d: crates/bench/src/bin/ipda_report.rs

crates/bench/src/bin/ipda_report.rs:
