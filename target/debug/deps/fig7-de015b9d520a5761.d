/root/repo/target/debug/deps/fig7-de015b9d520a5761.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-de015b9d520a5761: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
