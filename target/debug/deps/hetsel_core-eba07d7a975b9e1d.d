/root/repo/target/debug/deps/hetsel_core-eba07d7a975b9e1d.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/debug/deps/hetsel_core-eba07d7a975b9e1d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
