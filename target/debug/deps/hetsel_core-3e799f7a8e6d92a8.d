/root/repo/target/debug/deps/hetsel_core-3e799f7a8e6d92a8.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/debug/deps/libhetsel_core-3e799f7a8e6d92a8.rlib: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/debug/deps/libhetsel_core-3e799f7a8e6d92a8.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
