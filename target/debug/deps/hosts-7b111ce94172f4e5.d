/root/repo/target/debug/deps/hosts-7b111ce94172f4e5.d: crates/bench/src/bin/hosts.rs

/root/repo/target/debug/deps/hosts-7b111ce94172f4e5: crates/bench/src/bin/hosts.rs

crates/bench/src/bin/hosts.rs:
