/root/repo/target/debug/deps/fuzz-f592bc9ea167dfab.d: tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-f592bc9ea167dfab: tests/fuzz.rs

tests/fuzz.rs:
