/root/repo/target/debug/deps/cache_props-7e75bfa735dec522.d: crates/cpusim/tests/cache_props.rs Cargo.toml

/root/repo/target/debug/deps/libcache_props-7e75bfa735dec522.rmeta: crates/cpusim/tests/cache_props.rs Cargo.toml

crates/cpusim/tests/cache_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
