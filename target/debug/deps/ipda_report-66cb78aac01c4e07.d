/root/repo/target/debug/deps/ipda_report-66cb78aac01c4e07.d: crates/bench/src/bin/ipda_report.rs Cargo.toml

/root/repo/target/debug/deps/libipda_report-66cb78aac01c4e07.rmeta: crates/bench/src/bin/ipda_report.rs Cargo.toml

crates/bench/src/bin/ipda_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
