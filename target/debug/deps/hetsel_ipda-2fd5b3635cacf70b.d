/root/repo/target/debug/deps/hetsel_ipda-2fd5b3635cacf70b.d: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/debug/deps/hetsel_ipda-2fd5b3635cacf70b: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

crates/ipda/src/lib.rs:
crates/ipda/src/analysis.rs:
crates/ipda/src/false_sharing.rs:
crates/ipda/src/memo.rs:
crates/ipda/src/stride.rs:
crates/ipda/src/vectorize.rs:
crates/ipda/src/warp.rs:
