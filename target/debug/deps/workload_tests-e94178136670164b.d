/root/repo/target/debug/deps/workload_tests-e94178136670164b.d: crates/gpusim/tests/workload_tests.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_tests-e94178136670164b.rmeta: crates/gpusim/tests/workload_tests.rs Cargo.toml

crates/gpusim/tests/workload_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
