/root/repo/target/debug/deps/cache_props-239cb84676bb3de8.d: crates/cpusim/tests/cache_props.rs

/root/repo/target/debug/deps/cache_props-239cb84676bb3de8: crates/cpusim/tests/cache_props.rs

crates/cpusim/tests/cache_props.rs:
