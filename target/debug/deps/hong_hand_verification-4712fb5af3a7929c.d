/root/repo/target/debug/deps/hong_hand_verification-4712fb5af3a7929c.d: crates/models/tests/hong_hand_verification.rs Cargo.toml

/root/repo/target/debug/deps/libhong_hand_verification-4712fb5af3a7929c.rmeta: crates/models/tests/hong_hand_verification.rs Cargo.toml

crates/models/tests/hong_hand_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
