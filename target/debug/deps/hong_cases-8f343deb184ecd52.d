/root/repo/target/debug/deps/hong_cases-8f343deb184ecd52.d: crates/models/tests/hong_cases.rs Cargo.toml

/root/repo/target/debug/deps/libhong_cases-8f343deb184ecd52.rmeta: crates/models/tests/hong_cases.rs Cargo.toml

crates/models/tests/hong_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
