/root/repo/target/debug/deps/extended-e19af09f485a96d0.d: crates/bench/src/bin/extended.rs

/root/repo/target/debug/deps/extended-e19af09f485a96d0: crates/bench/src/bin/extended.rs

crates/bench/src/bin/extended.rs:
