/root/repo/target/debug/deps/export_json-fd45551556a2f785.d: crates/bench/src/bin/export_json.rs

/root/repo/target/debug/deps/export_json-fd45551556a2f785: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
