/root/repo/target/debug/deps/fig7-649dd0d1015842cf.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-649dd0d1015842cf: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
