/root/repo/target/debug/deps/analyze-7c8682d81674330e.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/analyze-7c8682d81674330e: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
