/root/repo/target/debug/deps/split_study-ddf395c823156ae4.d: crates/bench/src/bin/split_study.rs

/root/repo/target/debug/deps/split_study-ddf395c823156ae4: crates/bench/src/bin/split_study.rs

crates/bench/src/bin/split_study.rs:
