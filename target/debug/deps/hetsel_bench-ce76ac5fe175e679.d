/root/repo/target/debug/deps/hetsel_bench-ce76ac5fe175e679.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsel_bench-ce76ac5fe175e679.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsel_bench-ce76ac5fe175e679.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
