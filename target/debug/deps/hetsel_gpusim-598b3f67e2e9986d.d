/root/repo/target/debug/deps/hetsel_gpusim-598b3f67e2e9986d.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_gpusim-598b3f67e2e9986d.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
