/root/repo/target/debug/deps/decision_latency-0f1283bfe04a1612.d: crates/bench/benches/decision_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdecision_latency-0f1283bfe04a1612.rmeta: crates/bench/benches/decision_latency.rs Cargo.toml

crates/bench/benches/decision_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
