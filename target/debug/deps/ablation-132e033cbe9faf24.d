/root/repo/target/debug/deps/ablation-132e033cbe9faf24.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-132e033cbe9faf24: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
