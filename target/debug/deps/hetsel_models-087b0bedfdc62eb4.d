/root/repo/target/debug/deps/hetsel_models-087b0bedfdc62eb4.d: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/debug/deps/libhetsel_models-087b0bedfdc62eb4.rlib: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/debug/deps/libhetsel_models-087b0bedfdc62eb4.rmeta: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

crates/models/src/lib.rs:
crates/models/src/cpu.rs:
crates/models/src/engine.rs:
crates/models/src/error.rs:
crates/models/src/gpu.rs:
crates/models/src/trip.rs:
