/root/repo/target/debug/deps/hetsel_bench-e24f30603a8e4553.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hetsel_bench-e24f30603a8e4553: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
