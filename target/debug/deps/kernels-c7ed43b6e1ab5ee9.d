/root/repo/target/debug/deps/kernels-c7ed43b6e1ab5ee9.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-c7ed43b6e1ab5ee9: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
