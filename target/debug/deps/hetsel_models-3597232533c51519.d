/root/repo/target/debug/deps/hetsel_models-3597232533c51519.d: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_models-3597232533c51519.rmeta: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/cpu.rs:
crates/models/src/engine.rs:
crates/models/src/error.rs:
crates/models/src/gpu.rs:
crates/models/src/trip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
