/root/repo/target/debug/deps/ipda_report-10e71ee2bafc46c7.d: crates/bench/src/bin/ipda_report.rs

/root/repo/target/debug/deps/ipda_report-10e71ee2bafc46c7: crates/bench/src/bin/ipda_report.rs

crates/bench/src/bin/ipda_report.rs:
