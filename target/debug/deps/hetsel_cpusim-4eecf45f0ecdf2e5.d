/root/repo/target/debug/deps/hetsel_cpusim-4eecf45f0ecdf2e5.d: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/debug/deps/hetsel_cpusim-4eecf45f0ecdf2e5: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

crates/cpusim/src/lib.rs:
crates/cpusim/src/arch.rs:
crates/cpusim/src/cache.rs:
crates/cpusim/src/calibrate.rs:
crates/cpusim/src/engine.rs:
crates/cpusim/src/sampler.rs:
