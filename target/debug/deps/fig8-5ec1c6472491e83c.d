/root/repo/target/debug/deps/fig8-5ec1c6472491e83c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-5ec1c6472491e83c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
