/root/repo/target/debug/deps/extended-0e98d978bd078ea1.d: crates/bench/src/bin/extended.rs Cargo.toml

/root/repo/target/debug/deps/libextended-0e98d978bd078ea1.rmeta: crates/bench/src/bin/extended.rs Cargo.toml

crates/bench/src/bin/extended.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
