/root/repo/target/debug/deps/extended-0852a046772ad6c3.d: crates/bench/src/bin/extended.rs Cargo.toml

/root/repo/target/debug/deps/libextended-0852a046772ad6c3.rmeta: crates/bench/src/bin/extended.rs Cargo.toml

crates/bench/src/bin/extended.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
