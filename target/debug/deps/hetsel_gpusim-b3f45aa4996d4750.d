/root/repo/target/debug/deps/hetsel_gpusim-b3f45aa4996d4750.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/debug/deps/libhetsel_gpusim-b3f45aa4996d4750.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/debug/deps/libhetsel_gpusim-b3f45aa4996d4750.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
