/root/repo/target/debug/deps/params-c875aabd2da913d7.d: crates/bench/src/bin/params.rs

/root/repo/target/debug/deps/params-c875aabd2da913d7: crates/bench/src/bin/params.rs

crates/bench/src/bin/params.rs:
