/root/repo/target/debug/deps/decision_latency-cb45c19dcec82df7.d: crates/bench/benches/decision_latency.rs

/root/repo/target/debug/deps/decision_latency-cb45c19dcec82df7: crates/bench/benches/decision_latency.rs

crates/bench/benches/decision_latency.rs:
