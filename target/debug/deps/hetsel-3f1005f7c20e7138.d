/root/repo/target/debug/deps/hetsel-3f1005f7c20e7138.d: src/lib.rs

/root/repo/target/debug/deps/libhetsel-3f1005f7c20e7138.rlib: src/lib.rs

/root/repo/target/debug/deps/libhetsel-3f1005f7c20e7138.rmeta: src/lib.rs

src/lib.rs:
