/root/repo/target/debug/deps/split_study-e791fd9ac07b7731.d: crates/bench/src/bin/split_study.rs

/root/repo/target/debug/deps/split_study-e791fd9ac07b7731: crates/bench/src/bin/split_study.rs

crates/bench/src/bin/split_study.rs:
