/root/repo/target/debug/deps/hetsel-1fc3ba1fec3be3c3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel-1fc3ba1fec3be3c3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
