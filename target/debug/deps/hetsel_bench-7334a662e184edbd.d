/root/repo/target/debug/deps/hetsel_bench-7334a662e184edbd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_bench-7334a662e184edbd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
