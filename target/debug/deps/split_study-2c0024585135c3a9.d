/root/repo/target/debug/deps/split_study-2c0024585135c3a9.d: crates/bench/src/bin/split_study.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_study-2c0024585135c3a9.rmeta: crates/bench/src/bin/split_study.rs Cargo.toml

crates/bench/src/bin/split_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
