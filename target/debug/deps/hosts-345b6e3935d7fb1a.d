/root/repo/target/debug/deps/hosts-345b6e3935d7fb1a.d: crates/bench/src/bin/hosts.rs Cargo.toml

/root/repo/target/debug/deps/libhosts-345b6e3935d7fb1a.rmeta: crates/bench/src/bin/hosts.rs Cargo.toml

crates/bench/src/bin/hosts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
