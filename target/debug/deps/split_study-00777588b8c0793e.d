/root/repo/target/debug/deps/split_study-00777588b8c0793e.d: crates/bench/src/bin/split_study.rs Cargo.toml

/root/repo/target/debug/deps/libsplit_study-00777588b8c0793e.rmeta: crates/bench/src/bin/split_study.rs Cargo.toml

crates/bench/src/bin/split_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
