/root/repo/target/debug/deps/selection-27ff69b25226f4aa.d: tests/selection.rs Cargo.toml

/root/repo/target/debug/deps/libselection-27ff69b25226f4aa.rmeta: tests/selection.rs Cargo.toml

tests/selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
