/root/repo/target/debug/deps/infrastructure-3bdfaf35ccab5d0c.d: crates/bench/benches/infrastructure.rs

/root/repo/target/debug/deps/infrastructure-3bdfaf35ccab5d0c: crates/bench/benches/infrastructure.rs

crates/bench/benches/infrastructure.rs:
