/root/repo/target/debug/deps/hong_cases-94a2ede83b8c675e.d: crates/models/tests/hong_cases.rs

/root/repo/target/debug/deps/hong_cases-94a2ede83b8c675e: crates/models/tests/hong_cases.rs

crates/models/tests/hong_cases.rs:
