/root/repo/target/debug/deps/hetsel-ac294973513dd63b.d: src/lib.rs

/root/repo/target/debug/deps/libhetsel-ac294973513dd63b.rlib: src/lib.rs

/root/repo/target/debug/deps/libhetsel-ac294973513dd63b.rmeta: src/lib.rs

src/lib.rs:
