/root/repo/target/debug/deps/liao_hand_verification-beb8a7c043e9b2c7.d: crates/models/tests/liao_hand_verification.rs

/root/repo/target/debug/deps/liao_hand_verification-beb8a7c043e9b2c7: crates/models/tests/liao_hand_verification.rs

crates/models/tests/liao_hand_verification.rs:
