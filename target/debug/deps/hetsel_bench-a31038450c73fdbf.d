/root/repo/target/debug/deps/hetsel_bench-a31038450c73fdbf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsel_bench-a31038450c73fdbf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsel_bench-a31038450c73fdbf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
