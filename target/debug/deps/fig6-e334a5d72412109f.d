/root/repo/target/debug/deps/fig6-e334a5d72412109f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-e334a5d72412109f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
