/root/repo/target/debug/deps/hetsel_polybench-eaab35e80fb80cb8.d: crates/polybench/src/lib.rs crates/polybench/src/atax.rs crates/polybench/src/bicg.rs crates/polybench/src/conv2d.rs crates/polybench/src/conv3d.rs crates/polybench/src/corr.rs crates/polybench/src/covar.rs crates/polybench/src/data.rs crates/polybench/src/dataset.rs crates/polybench/src/doitgen.rs crates/polybench/src/fdtd2d.rs crates/polybench/src/gemm.rs crates/polybench/src/gemver.rs crates/polybench/src/gesummv.rs crates/polybench/src/heat3d.rs crates/polybench/src/jacobi2d.rs crates/polybench/src/mvt.rs crates/polybench/src/suite.rs crates/polybench/src/syr2k.rs crates/polybench/src/syrk.rs crates/polybench/src/three_mm.rs crates/polybench/src/trmm.rs crates/polybench/src/two_mm.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_polybench-eaab35e80fb80cb8.rmeta: crates/polybench/src/lib.rs crates/polybench/src/atax.rs crates/polybench/src/bicg.rs crates/polybench/src/conv2d.rs crates/polybench/src/conv3d.rs crates/polybench/src/corr.rs crates/polybench/src/covar.rs crates/polybench/src/data.rs crates/polybench/src/dataset.rs crates/polybench/src/doitgen.rs crates/polybench/src/fdtd2d.rs crates/polybench/src/gemm.rs crates/polybench/src/gemver.rs crates/polybench/src/gesummv.rs crates/polybench/src/heat3d.rs crates/polybench/src/jacobi2d.rs crates/polybench/src/mvt.rs crates/polybench/src/suite.rs crates/polybench/src/syr2k.rs crates/polybench/src/syrk.rs crates/polybench/src/three_mm.rs crates/polybench/src/trmm.rs crates/polybench/src/two_mm.rs Cargo.toml

crates/polybench/src/lib.rs:
crates/polybench/src/atax.rs:
crates/polybench/src/bicg.rs:
crates/polybench/src/conv2d.rs:
crates/polybench/src/conv3d.rs:
crates/polybench/src/corr.rs:
crates/polybench/src/covar.rs:
crates/polybench/src/data.rs:
crates/polybench/src/dataset.rs:
crates/polybench/src/doitgen.rs:
crates/polybench/src/fdtd2d.rs:
crates/polybench/src/gemm.rs:
crates/polybench/src/gemver.rs:
crates/polybench/src/gesummv.rs:
crates/polybench/src/heat3d.rs:
crates/polybench/src/jacobi2d.rs:
crates/polybench/src/mvt.rs:
crates/polybench/src/suite.rs:
crates/polybench/src/syr2k.rs:
crates/polybench/src/syrk.rs:
crates/polybench/src/three_mm.rs:
crates/polybench/src/trmm.rs:
crates/polybench/src/two_mm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
