/root/repo/target/debug/deps/analyses-5d8c3f2117d2a16b.d: crates/bench/benches/analyses.rs Cargo.toml

/root/repo/target/debug/deps/libanalyses-5d8c3f2117d2a16b.rmeta: crates/bench/benches/analyses.rs Cargo.toml

crates/bench/benches/analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
