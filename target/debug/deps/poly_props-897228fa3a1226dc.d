/root/repo/target/debug/deps/poly_props-897228fa3a1226dc.d: crates/ir/tests/poly_props.rs

/root/repo/target/debug/deps/poly_props-897228fa3a1226dc: crates/ir/tests/poly_props.rs

crates/ir/tests/poly_props.rs:
