/root/repo/target/debug/deps/hetsel_core-ee34d9f46303c4ab.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/debug/deps/libhetsel_core-ee34d9f46303c4ab.rlib: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/debug/deps/libhetsel_core-ee34d9f46303c4ab.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
