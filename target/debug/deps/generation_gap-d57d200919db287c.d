/root/repo/target/debug/deps/generation_gap-d57d200919db287c.d: tests/generation_gap.rs

/root/repo/target/debug/deps/generation_gap-d57d200919db287c: tests/generation_gap.rs

tests/generation_gap.rs:
