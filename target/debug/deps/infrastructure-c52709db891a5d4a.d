/root/repo/target/debug/deps/infrastructure-c52709db891a5d4a.d: crates/bench/benches/infrastructure.rs Cargo.toml

/root/repo/target/debug/deps/libinfrastructure-c52709db891a5d4a.rmeta: crates/bench/benches/infrastructure.rs Cargo.toml

crates/bench/benches/infrastructure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
