/root/repo/target/debug/deps/program_study-5829d4943a57a06c.d: crates/bench/src/bin/program_study.rs

/root/repo/target/debug/deps/program_study-5829d4943a57a06c: crates/bench/src/bin/program_study.rs

crates/bench/src/bin/program_study.rs:
