/root/repo/target/debug/deps/serde-fe1f79156673c88e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fe1f79156673c88e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fe1f79156673c88e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
