/root/repo/target/debug/deps/hetsel_cpusim-57b328552a1a3b44.d: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_cpusim-57b328552a1a3b44.rmeta: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs Cargo.toml

crates/cpusim/src/lib.rs:
crates/cpusim/src/arch.rs:
crates/cpusim/src/cache.rs:
crates/cpusim/src/calibrate.rs:
crates/cpusim/src/engine.rs:
crates/cpusim/src/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
