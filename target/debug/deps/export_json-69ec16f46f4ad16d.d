/root/repo/target/debug/deps/export_json-69ec16f46f4ad16d.d: crates/bench/src/bin/export_json.rs

/root/repo/target/debug/deps/export_json-69ec16f46f4ad16d: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
