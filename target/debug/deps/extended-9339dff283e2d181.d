/root/repo/target/debug/deps/extended-9339dff283e2d181.d: crates/bench/src/bin/extended.rs

/root/repo/target/debug/deps/extended-9339dff283e2d181: crates/bench/src/bin/extended.rs

crates/bench/src/bin/extended.rs:
