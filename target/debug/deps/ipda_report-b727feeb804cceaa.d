/root/repo/target/debug/deps/ipda_report-b727feeb804cceaa.d: crates/bench/src/bin/ipda_report.rs Cargo.toml

/root/repo/target/debug/deps/libipda_report-b727feeb804cceaa.rmeta: crates/bench/src/bin/ipda_report.rs Cargo.toml

crates/bench/src/bin/ipda_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
