/root/repo/target/debug/deps/hetsel_mca-87026cd77c18589f.d: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_mca-87026cd77c18589f.rmeta: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs Cargo.toml

crates/mca/src/lib.rs:
crates/mca/src/compile.rs:
crates/mca/src/descriptor.rs:
crates/mca/src/isa.rs:
crates/mca/src/loadout.rs:
crates/mca/src/lower.rs:
crates/mca/src/report.rs:
crates/mca/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
