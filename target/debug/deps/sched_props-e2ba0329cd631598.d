/root/repo/target/debug/deps/sched_props-e2ba0329cd631598.d: crates/mca/tests/sched_props.rs

/root/repo/target/debug/deps/sched_props-e2ba0329cd631598: crates/mca/tests/sched_props.rs

crates/mca/tests/sched_props.rs:
