/root/repo/target/debug/deps/threads-8fd3de2cba31a14a.d: crates/bench/src/bin/threads.rs

/root/repo/target/debug/deps/threads-8fd3de2cba31a14a: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
