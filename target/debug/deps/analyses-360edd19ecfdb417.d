/root/repo/target/debug/deps/analyses-360edd19ecfdb417.d: crates/bench/benches/analyses.rs

/root/repo/target/debug/deps/analyses-360edd19ecfdb417: crates/bench/benches/analyses.rs

crates/bench/benches/analyses.rs:
