/root/repo/target/debug/deps/engine_props-bd195acba4b795ce.d: tests/engine_props.rs Cargo.toml

/root/repo/target/debug/deps/libengine_props-bd195acba4b795ce.rmeta: tests/engine_props.rs Cargo.toml

tests/engine_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
