/root/repo/target/debug/deps/fig6-3c6ec37db73d43c6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-3c6ec37db73d43c6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
