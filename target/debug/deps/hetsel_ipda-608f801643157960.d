/root/repo/target/debug/deps/hetsel_ipda-608f801643157960.d: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_ipda-608f801643157960.rmeta: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs Cargo.toml

crates/ipda/src/lib.rs:
crates/ipda/src/analysis.rs:
crates/ipda/src/false_sharing.rs:
crates/ipda/src/memo.rs:
crates/ipda/src/stride.rs:
crates/ipda/src/vectorize.rs:
crates/ipda/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
