/root/repo/target/debug/deps/extensions-dae48fd6cb258150.d: crates/core/tests/extensions.rs

/root/repo/target/debug/deps/extensions-dae48fd6cb258150: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
