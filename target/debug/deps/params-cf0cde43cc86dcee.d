/root/repo/target/debug/deps/params-cf0cde43cc86dcee.d: crates/bench/src/bin/params.rs

/root/repo/target/debug/deps/params-cf0cde43cc86dcee: crates/bench/src/bin/params.rs

crates/bench/src/bin/params.rs:
