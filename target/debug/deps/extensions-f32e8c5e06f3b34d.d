/root/repo/target/debug/deps/extensions-f32e8c5e06f3b34d.d: crates/core/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f32e8c5e06f3b34d.rmeta: crates/core/tests/extensions.rs Cargo.toml

crates/core/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
