/root/repo/target/debug/deps/poly_props-252c0fd28fe4aa30.d: crates/ir/tests/poly_props.rs Cargo.toml

/root/repo/target/debug/deps/libpoly_props-252c0fd28fe4aa30.rmeta: crates/ir/tests/poly_props.rs Cargo.toml

crates/ir/tests/poly_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
