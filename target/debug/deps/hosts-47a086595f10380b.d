/root/repo/target/debug/deps/hosts-47a086595f10380b.d: crates/bench/src/bin/hosts.rs

/root/repo/target/debug/deps/hosts-47a086595f10380b: crates/bench/src/bin/hosts.rs

crates/bench/src/bin/hosts.rs:
