/root/repo/target/debug/deps/hetsel_core-c90a9916f05557ae.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_core-c90a9916f05557ae.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
