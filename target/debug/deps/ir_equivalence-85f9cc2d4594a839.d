/root/repo/target/debug/deps/ir_equivalence-85f9cc2d4594a839.d: crates/polybench/tests/ir_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libir_equivalence-85f9cc2d4594a839.rmeta: crates/polybench/tests/ir_equivalence.rs Cargo.toml

crates/polybench/tests/ir_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
