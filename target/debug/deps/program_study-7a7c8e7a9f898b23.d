/root/repo/target/debug/deps/program_study-7a7c8e7a9f898b23.d: crates/bench/src/bin/program_study.rs Cargo.toml

/root/repo/target/debug/deps/libprogram_study-7a7c8e7a9f898b23.rmeta: crates/bench/src/bin/program_study.rs Cargo.toml

crates/bench/src/bin/program_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
