/root/repo/target/debug/deps/generations-8ee420697698ae8e.d: crates/bench/src/bin/generations.rs

/root/repo/target/debug/deps/generations-8ee420697698ae8e: crates/bench/src/bin/generations.rs

crates/bench/src/bin/generations.rs:
