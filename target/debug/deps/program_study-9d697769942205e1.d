/root/repo/target/debug/deps/program_study-9d697769942205e1.d: crates/bench/src/bin/program_study.rs

/root/repo/target/debug/deps/program_study-9d697769942205e1: crates/bench/src/bin/program_study.rs

crates/bench/src/bin/program_study.rs:
