/root/repo/target/debug/deps/threads-4c04c324e6afa7e3.d: crates/bench/src/bin/threads.rs

/root/repo/target/debug/deps/threads-4c04c324e6afa7e3: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
