/root/repo/target/debug/deps/ipda_report-6695c8c7fcde6abe.d: crates/bench/src/bin/ipda_report.rs

/root/repo/target/debug/deps/ipda_report-6695c8c7fcde6abe: crates/bench/src/bin/ipda_report.rs

crates/bench/src/bin/ipda_report.rs:
