/root/repo/target/debug/deps/threads-1c362cff4baf50f7.d: crates/bench/src/bin/threads.rs

/root/repo/target/debug/deps/threads-1c362cff4baf50f7: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
