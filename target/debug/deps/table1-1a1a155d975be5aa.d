/root/repo/target/debug/deps/table1-1a1a155d975be5aa.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1a1a155d975be5aa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
