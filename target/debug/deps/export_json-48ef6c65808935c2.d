/root/repo/target/debug/deps/export_json-48ef6c65808935c2.d: crates/bench/src/bin/export_json.rs

/root/repo/target/debug/deps/export_json-48ef6c65808935c2: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
