/root/repo/target/debug/deps/table1-eec24a84f689554a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-eec24a84f689554a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
