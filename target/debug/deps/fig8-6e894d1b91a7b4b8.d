/root/repo/target/debug/deps/fig8-6e894d1b91a7b4b8.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-6e894d1b91a7b4b8: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
