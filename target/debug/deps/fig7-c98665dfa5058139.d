/root/repo/target/debug/deps/fig7-c98665dfa5058139.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c98665dfa5058139: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
