/root/repo/target/debug/deps/extended-8a4e8acc9424cc76.d: crates/bench/src/bin/extended.rs

/root/repo/target/debug/deps/extended-8a4e8acc9424cc76: crates/bench/src/bin/extended.rs

crates/bench/src/bin/extended.rs:
