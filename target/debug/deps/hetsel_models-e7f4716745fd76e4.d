/root/repo/target/debug/deps/hetsel_models-e7f4716745fd76e4.d: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/debug/deps/hetsel_models-e7f4716745fd76e4: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

crates/models/src/lib.rs:
crates/models/src/cpu.rs:
crates/models/src/engine.rs:
crates/models/src/error.rs:
crates/models/src/gpu.rs:
crates/models/src/trip.rs:
