/root/repo/target/debug/deps/params-e40d2e75c0f3c665.d: crates/bench/src/bin/params.rs

/root/repo/target/debug/deps/params-e40d2e75c0f3c665: crates/bench/src/bin/params.rs

crates/bench/src/bin/params.rs:
