/root/repo/target/debug/deps/liao_hand_verification-fa6ddcdd9abb9003.d: crates/models/tests/liao_hand_verification.rs Cargo.toml

/root/repo/target/debug/deps/libliao_hand_verification-fa6ddcdd9abb9003.rmeta: crates/models/tests/liao_hand_verification.rs Cargo.toml

crates/models/tests/liao_hand_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
