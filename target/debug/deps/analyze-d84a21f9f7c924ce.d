/root/repo/target/debug/deps/analyze-d84a21f9f7c924ce.d: crates/bench/src/bin/analyze.rs Cargo.toml

/root/repo/target/debug/deps/libanalyze-d84a21f9f7c924ce.rmeta: crates/bench/src/bin/analyze.rs Cargo.toml

crates/bench/src/bin/analyze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
