/root/repo/target/debug/deps/hetsel_ir-608e22c562e1eb1a.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/binding.rs crates/ir/src/builder.rs crates/ir/src/expr.rs crates/ir/src/interp.rs crates/ir/src/kernel.rs crates/ir/src/layout.rs crates/ir/src/poly.rs crates/ir/src/render.rs crates/ir/src/simplify.rs crates/ir/src/synth.rs crates/ir/src/trips.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_ir-608e22c562e1eb1a.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/binding.rs crates/ir/src/builder.rs crates/ir/src/expr.rs crates/ir/src/interp.rs crates/ir/src/kernel.rs crates/ir/src/layout.rs crates/ir/src/poly.rs crates/ir/src/render.rs crates/ir/src/simplify.rs crates/ir/src/synth.rs crates/ir/src/trips.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/binding.rs:
crates/ir/src/builder.rs:
crates/ir/src/expr.rs:
crates/ir/src/interp.rs:
crates/ir/src/kernel.rs:
crates/ir/src/layout.rs:
crates/ir/src/poly.rs:
crates/ir/src/render.rs:
crates/ir/src/simplify.rs:
crates/ir/src/synth.rs:
crates/ir/src/trips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
