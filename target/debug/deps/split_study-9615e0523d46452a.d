/root/repo/target/debug/deps/split_study-9615e0523d46452a.d: crates/bench/src/bin/split_study.rs

/root/repo/target/debug/deps/split_study-9615e0523d46452a: crates/bench/src/bin/split_study.rs

crates/bench/src/bin/split_study.rs:
