/root/repo/target/debug/deps/generation_gap-c0696a65eff2f4dc.d: tests/generation_gap.rs Cargo.toml

/root/repo/target/debug/deps/libgeneration_gap-c0696a65eff2f4dc.rmeta: tests/generation_gap.rs Cargo.toml

tests/generation_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
