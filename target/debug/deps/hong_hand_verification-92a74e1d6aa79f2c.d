/root/repo/target/debug/deps/hong_hand_verification-92a74e1d6aa79f2c.d: crates/models/tests/hong_hand_verification.rs

/root/repo/target/debug/deps/hong_hand_verification-92a74e1d6aa79f2c: crates/models/tests/hong_hand_verification.rs

crates/models/tests/hong_hand_verification.rs:
