/root/repo/target/debug/deps/hetsel_ipda-fb4268434d861835.d: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/debug/deps/libhetsel_ipda-fb4268434d861835.rlib: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/debug/deps/libhetsel_ipda-fb4268434d861835.rmeta: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

crates/ipda/src/lib.rs:
crates/ipda/src/analysis.rs:
crates/ipda/src/false_sharing.rs:
crates/ipda/src/memo.rs:
crates/ipda/src/stride.rs:
crates/ipda/src/vectorize.rs:
crates/ipda/src/warp.rs:
