/root/repo/target/debug/deps/table1-caa28a0f459d7ce6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-caa28a0f459d7ce6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
