/root/repo/target/debug/deps/selection-eaa3cfee4a0224ae.d: tests/selection.rs

/root/repo/target/debug/deps/selection-eaa3cfee4a0224ae: tests/selection.rs

tests/selection.rs:
