/root/repo/target/debug/deps/params-3e89a5e0fe718858.d: crates/bench/src/bin/params.rs Cargo.toml

/root/repo/target/debug/deps/libparams-3e89a5e0fe718858.rmeta: crates/bench/src/bin/params.rs Cargo.toml

crates/bench/src/bin/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
