/root/repo/target/debug/deps/hetsel_gpusim-e438597a456cbdc8.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel_gpusim-e438597a456cbdc8.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
