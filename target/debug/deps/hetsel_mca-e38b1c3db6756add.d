/root/repo/target/debug/deps/hetsel_mca-e38b1c3db6756add.d: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

/root/repo/target/debug/deps/hetsel_mca-e38b1c3db6756add: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

crates/mca/src/lib.rs:
crates/mca/src/compile.rs:
crates/mca/src/descriptor.rs:
crates/mca/src/isa.rs:
crates/mca/src/loadout.rs:
crates/mca/src/lower.rs:
crates/mca/src/report.rs:
crates/mca/src/sched.rs:
