/root/repo/target/debug/deps/simulators-2d68f18d0c4c2d26.d: crates/bench/benches/simulators.rs

/root/repo/target/debug/deps/simulators-2d68f18d0c4c2d26: crates/bench/benches/simulators.rs

crates/bench/benches/simulators.rs:
