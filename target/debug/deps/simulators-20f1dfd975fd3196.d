/root/repo/target/debug/deps/simulators-20f1dfd975fd3196.d: crates/bench/benches/simulators.rs Cargo.toml

/root/repo/target/debug/deps/libsimulators-20f1dfd975fd3196.rmeta: crates/bench/benches/simulators.rs Cargo.toml

crates/bench/benches/simulators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
