/root/repo/target/debug/deps/model_accuracy-8ad070128d4cfcac.d: tests/model_accuracy.rs

/root/repo/target/debug/deps/model_accuracy-8ad070128d4cfcac: tests/model_accuracy.rs

tests/model_accuracy.rs:
