/root/repo/target/debug/deps/sched_props-01df1030498dc2e0.d: crates/mca/tests/sched_props.rs Cargo.toml

/root/repo/target/debug/deps/libsched_props-01df1030498dc2e0.rmeta: crates/mca/tests/sched_props.rs Cargo.toml

crates/mca/tests/sched_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
