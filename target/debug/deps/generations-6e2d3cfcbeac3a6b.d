/root/repo/target/debug/deps/generations-6e2d3cfcbeac3a6b.d: crates/bench/src/bin/generations.rs

/root/repo/target/debug/deps/generations-6e2d3cfcbeac3a6b: crates/bench/src/bin/generations.rs

crates/bench/src/bin/generations.rs:
