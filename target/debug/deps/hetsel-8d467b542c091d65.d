/root/repo/target/debug/deps/hetsel-8d467b542c091d65.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsel-8d467b542c091d65.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
