/root/repo/target/debug/deps/hosts-8e5aff6e2d8cde88.d: crates/bench/src/bin/hosts.rs Cargo.toml

/root/repo/target/debug/deps/libhosts-8e5aff6e2d8cde88.rmeta: crates/bench/src/bin/hosts.rs Cargo.toml

crates/bench/src/bin/hosts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
