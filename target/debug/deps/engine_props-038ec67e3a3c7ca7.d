/root/repo/target/debug/deps/engine_props-038ec67e3a3c7ca7.d: tests/engine_props.rs

/root/repo/target/debug/deps/engine_props-038ec67e3a3c7ca7: tests/engine_props.rs

tests/engine_props.rs:
