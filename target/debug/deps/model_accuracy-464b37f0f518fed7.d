/root/repo/target/debug/deps/model_accuracy-464b37f0f518fed7.d: tests/model_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_accuracy-464b37f0f518fed7.rmeta: tests/model_accuracy.rs Cargo.toml

tests/model_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
