/root/repo/target/debug/deps/analyze-254becb48f05643e.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/analyze-254becb48f05643e: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
