/root/repo/target/debug/deps/generations-42438c269867e803.d: crates/bench/src/bin/generations.rs Cargo.toml

/root/repo/target/debug/deps/libgenerations-42438c269867e803.rmeta: crates/bench/src/bin/generations.rs Cargo.toml

crates/bench/src/bin/generations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
