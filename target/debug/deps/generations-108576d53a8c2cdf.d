/root/repo/target/debug/deps/generations-108576d53a8c2cdf.d: crates/bench/src/bin/generations.rs

/root/repo/target/debug/deps/generations-108576d53a8c2cdf: crates/bench/src/bin/generations.rs

crates/bench/src/bin/generations.rs:
