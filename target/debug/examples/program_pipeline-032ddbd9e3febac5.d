/root/repo/target/debug/examples/program_pipeline-032ddbd9e3febac5.d: examples/program_pipeline.rs

/root/repo/target/debug/examples/program_pipeline-032ddbd9e3febac5: examples/program_pipeline.rs

examples/program_pipeline.rs:
