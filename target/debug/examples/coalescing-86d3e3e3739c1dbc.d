/root/repo/target/debug/examples/coalescing-86d3e3e3739c1dbc.d: examples/coalescing.rs

/root/repo/target/debug/examples/coalescing-86d3e3e3739c1dbc: examples/coalescing.rs

examples/coalescing.rs:
