/root/repo/target/debug/examples/quickstart-1723ab6a04793238.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1723ab6a04793238: examples/quickstart.rs

examples/quickstart.rs:
