/root/repo/target/debug/examples/program_pipeline-198760f365f7c0d2.d: examples/program_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libprogram_pipeline-198760f365f7c0d2.rmeta: examples/program_pipeline.rs Cargo.toml

examples/program_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
