/root/repo/target/debug/examples/generation_gap-582f97fc662cfa9c.d: examples/generation_gap.rs Cargo.toml

/root/repo/target/debug/examples/libgeneration_gap-582f97fc662cfa9c.rmeta: examples/generation_gap.rs Cargo.toml

examples/generation_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
