/root/repo/target/debug/examples/policy_comparison-f8ad2b4a06efa4f6.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-f8ad2b4a06efa4f6: examples/policy_comparison.rs

examples/policy_comparison.rs:
