/root/repo/target/debug/examples/coalescing-1797098ede7afdf4.d: examples/coalescing.rs Cargo.toml

/root/repo/target/debug/examples/libcoalescing-1797098ede7afdf4.rmeta: examples/coalescing.rs Cargo.toml

examples/coalescing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
