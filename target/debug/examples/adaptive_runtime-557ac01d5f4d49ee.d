/root/repo/target/debug/examples/adaptive_runtime-557ac01d5f4d49ee.d: examples/adaptive_runtime.rs

/root/repo/target/debug/examples/adaptive_runtime-557ac01d5f4d49ee: examples/adaptive_runtime.rs

examples/adaptive_runtime.rs:
