/root/repo/target/debug/examples/generation_gap-9911ea6c619a21d2.d: examples/generation_gap.rs

/root/repo/target/debug/examples/generation_gap-9911ea6c619a21d2: examples/generation_gap.rs

examples/generation_gap.rs:
