/root/repo/target/debug/examples/adaptive_runtime-11422a1d59f3587d.d: examples/adaptive_runtime.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_runtime-11422a1d59f3587d.rmeta: examples/adaptive_runtime.rs Cargo.toml

examples/adaptive_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
