/root/repo/target/release/deps/hetsel_cpusim-ee34abf7d0ec60a2.d: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/release/deps/hetsel_cpusim-ee34abf7d0ec60a2: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

crates/cpusim/src/lib.rs:
crates/cpusim/src/arch.rs:
crates/cpusim/src/cache.rs:
crates/cpusim/src/calibrate.rs:
crates/cpusim/src/engine.rs:
crates/cpusim/src/sampler.rs:
