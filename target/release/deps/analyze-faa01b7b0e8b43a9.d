/root/repo/target/release/deps/analyze-faa01b7b0e8b43a9.d: crates/bench/src/bin/analyze.rs

/root/repo/target/release/deps/analyze-faa01b7b0e8b43a9: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
