/root/repo/target/release/deps/params-c0540bd07c37e391.d: crates/bench/src/bin/params.rs

/root/repo/target/release/deps/params-c0540bd07c37e391: crates/bench/src/bin/params.rs

crates/bench/src/bin/params.rs:
