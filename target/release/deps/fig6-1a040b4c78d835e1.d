/root/repo/target/release/deps/fig6-1a040b4c78d835e1.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1a040b4c78d835e1: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
