/root/repo/target/release/deps/parking_lot-c324b2fa06bee249.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-c324b2fa06bee249: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
