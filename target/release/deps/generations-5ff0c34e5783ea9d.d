/root/repo/target/release/deps/generations-5ff0c34e5783ea9d.d: crates/bench/src/bin/generations.rs

/root/repo/target/release/deps/generations-5ff0c34e5783ea9d: crates/bench/src/bin/generations.rs

crates/bench/src/bin/generations.rs:
