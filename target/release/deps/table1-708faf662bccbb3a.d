/root/repo/target/release/deps/table1-708faf662bccbb3a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-708faf662bccbb3a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
