/root/repo/target/release/deps/generations-f7af70f4ef2b4929.d: crates/bench/src/bin/generations.rs

/root/repo/target/release/deps/generations-f7af70f4ef2b4929: crates/bench/src/bin/generations.rs

crates/bench/src/bin/generations.rs:
