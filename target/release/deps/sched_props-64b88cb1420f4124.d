/root/repo/target/release/deps/sched_props-64b88cb1420f4124.d: crates/mca/tests/sched_props.rs

/root/repo/target/release/deps/sched_props-64b88cb1420f4124: crates/mca/tests/sched_props.rs

crates/mca/tests/sched_props.rs:
