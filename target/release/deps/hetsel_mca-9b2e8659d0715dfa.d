/root/repo/target/release/deps/hetsel_mca-9b2e8659d0715dfa.d: crates/mca/src/lib.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

/root/repo/target/release/deps/hetsel_mca-9b2e8659d0715dfa: crates/mca/src/lib.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

crates/mca/src/lib.rs:
crates/mca/src/descriptor.rs:
crates/mca/src/isa.rs:
crates/mca/src/loadout.rs:
crates/mca/src/lower.rs:
crates/mca/src/report.rs:
crates/mca/src/sched.rs:
