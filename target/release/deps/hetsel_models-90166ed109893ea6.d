/root/repo/target/release/deps/hetsel_models-90166ed109893ea6.d: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/release/deps/libhetsel_models-90166ed109893ea6.rlib: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/release/deps/libhetsel_models-90166ed109893ea6.rmeta: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/engine.rs crates/models/src/error.rs crates/models/src/gpu.rs crates/models/src/trip.rs

crates/models/src/lib.rs:
crates/models/src/cpu.rs:
crates/models/src/engine.rs:
crates/models/src/error.rs:
crates/models/src/gpu.rs:
crates/models/src/trip.rs:
