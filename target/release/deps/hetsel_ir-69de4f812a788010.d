/root/repo/target/release/deps/hetsel_ir-69de4f812a788010.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/binding.rs crates/ir/src/builder.rs crates/ir/src/expr.rs crates/ir/src/interp.rs crates/ir/src/kernel.rs crates/ir/src/layout.rs crates/ir/src/poly.rs crates/ir/src/render.rs crates/ir/src/simplify.rs crates/ir/src/synth.rs crates/ir/src/trips.rs

/root/repo/target/release/deps/hetsel_ir-69de4f812a788010: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/binding.rs crates/ir/src/builder.rs crates/ir/src/expr.rs crates/ir/src/interp.rs crates/ir/src/kernel.rs crates/ir/src/layout.rs crates/ir/src/poly.rs crates/ir/src/render.rs crates/ir/src/simplify.rs crates/ir/src/synth.rs crates/ir/src/trips.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/binding.rs:
crates/ir/src/builder.rs:
crates/ir/src/expr.rs:
crates/ir/src/interp.rs:
crates/ir/src/kernel.rs:
crates/ir/src/layout.rs:
crates/ir/src/poly.rs:
crates/ir/src/render.rs:
crates/ir/src/simplify.rs:
crates/ir/src/synth.rs:
crates/ir/src/trips.rs:
