/root/repo/target/release/deps/analyze-b0b841b167c7e328.d: crates/bench/src/bin/analyze.rs

/root/repo/target/release/deps/analyze-b0b841b167c7e328: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
