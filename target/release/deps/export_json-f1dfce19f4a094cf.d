/root/repo/target/release/deps/export_json-f1dfce19f4a094cf.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-f1dfce19f4a094cf: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
