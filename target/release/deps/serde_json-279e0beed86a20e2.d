/root/repo/target/release/deps/serde_json-279e0beed86a20e2.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-279e0beed86a20e2: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
