/root/repo/target/release/deps/hetsel_ipda-b254f7617616932c.d: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/release/deps/hetsel_ipda-b254f7617616932c: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

crates/ipda/src/lib.rs:
crates/ipda/src/analysis.rs:
crates/ipda/src/false_sharing.rs:
crates/ipda/src/stride.rs:
crates/ipda/src/vectorize.rs:
crates/ipda/src/warp.rs:
