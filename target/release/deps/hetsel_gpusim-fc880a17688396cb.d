/root/repo/target/release/deps/hetsel_gpusim-fc880a17688396cb.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/release/deps/hetsel_gpusim-fc880a17688396cb: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
