/root/repo/target/release/deps/hetsel_core-be1fb0480bafaf4e.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/release/deps/libhetsel_core-be1fb0480bafaf4e.rlib: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/release/deps/libhetsel_core-be1fb0480bafaf4e.rmeta: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
