/root/repo/target/release/deps/hong_cases-857eae1096e424d7.d: crates/models/tests/hong_cases.rs

/root/repo/target/release/deps/hong_cases-857eae1096e424d7: crates/models/tests/hong_cases.rs

crates/models/tests/hong_cases.rs:
