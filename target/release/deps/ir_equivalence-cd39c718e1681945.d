/root/repo/target/release/deps/ir_equivalence-cd39c718e1681945.d: crates/polybench/tests/ir_equivalence.rs

/root/repo/target/release/deps/ir_equivalence-cd39c718e1681945: crates/polybench/tests/ir_equivalence.rs

crates/polybench/tests/ir_equivalence.rs:
