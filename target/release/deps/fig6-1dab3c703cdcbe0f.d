/root/repo/target/release/deps/fig6-1dab3c703cdcbe0f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1dab3c703cdcbe0f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
