/root/repo/target/release/deps/workload_tests-e3a990b2ee6062d8.d: crates/gpusim/tests/workload_tests.rs

/root/repo/target/release/deps/workload_tests-e3a990b2ee6062d8: crates/gpusim/tests/workload_tests.rs

crates/gpusim/tests/workload_tests.rs:
