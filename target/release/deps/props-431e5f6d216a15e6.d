/root/repo/target/release/deps/props-431e5f6d216a15e6.d: tests/props.rs

/root/repo/target/release/deps/props-431e5f6d216a15e6: tests/props.rs

tests/props.rs:
