/root/repo/target/release/deps/hetsel_mca-de2510a9448ae4eb.d: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

/root/repo/target/release/deps/libhetsel_mca-de2510a9448ae4eb.rlib: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

/root/repo/target/release/deps/libhetsel_mca-de2510a9448ae4eb.rmeta: crates/mca/src/lib.rs crates/mca/src/compile.rs crates/mca/src/descriptor.rs crates/mca/src/isa.rs crates/mca/src/loadout.rs crates/mca/src/lower.rs crates/mca/src/report.rs crates/mca/src/sched.rs

crates/mca/src/lib.rs:
crates/mca/src/compile.rs:
crates/mca/src/descriptor.rs:
crates/mca/src/isa.rs:
crates/mca/src/loadout.rs:
crates/mca/src/lower.rs:
crates/mca/src/report.rs:
crates/mca/src/sched.rs:
