/root/repo/target/release/deps/hetsel_gpusim-02ecaa87df371853.d: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/release/deps/libhetsel_gpusim-02ecaa87df371853.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

/root/repo/target/release/deps/libhetsel_gpusim-02ecaa87df371853.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arch.rs crates/gpusim/src/detailed.rs crates/gpusim/src/engine.rs crates/gpusim/src/geometry.rs crates/gpusim/src/workload.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arch.rs:
crates/gpusim/src/detailed.rs:
crates/gpusim/src/engine.rs:
crates/gpusim/src/geometry.rs:
crates/gpusim/src/workload.rs:
