/root/repo/target/release/deps/hetsel_core-ed341e8805c8460a.d: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

/root/repo/target/release/deps/hetsel_core-ed341e8805c8460a: crates/core/src/lib.rs crates/core/src/attributes.rs crates/core/src/history.rs crates/core/src/platform.rs crates/core/src/program.rs crates/core/src/selector.rs crates/core/src/split.rs

crates/core/src/lib.rs:
crates/core/src/attributes.rs:
crates/core/src/history.rs:
crates/core/src/platform.rs:
crates/core/src/program.rs:
crates/core/src/selector.rs:
crates/core/src/split.rs:
