/root/repo/target/release/deps/params-bca25f29e64b977d.d: crates/bench/src/bin/params.rs

/root/repo/target/release/deps/params-bca25f29e64b977d: crates/bench/src/bin/params.rs

crates/bench/src/bin/params.rs:
