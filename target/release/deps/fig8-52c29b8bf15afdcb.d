/root/repo/target/release/deps/fig8-52c29b8bf15afdcb.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-52c29b8bf15afdcb: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
