/root/repo/target/release/deps/fig8-e85ea3cf65c95080.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-e85ea3cf65c95080: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
