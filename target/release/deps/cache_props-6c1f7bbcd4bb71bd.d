/root/repo/target/release/deps/cache_props-6c1f7bbcd4bb71bd.d: crates/cpusim/tests/cache_props.rs

/root/repo/target/release/deps/cache_props-6c1f7bbcd4bb71bd: crates/cpusim/tests/cache_props.rs

crates/cpusim/tests/cache_props.rs:
