/root/repo/target/release/deps/hosts-5a96e32e8a2dd1d6.d: crates/bench/src/bin/hosts.rs

/root/repo/target/release/deps/hosts-5a96e32e8a2dd1d6: crates/bench/src/bin/hosts.rs

crates/bench/src/bin/hosts.rs:
