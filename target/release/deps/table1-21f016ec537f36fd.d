/root/repo/target/release/deps/table1-21f016ec537f36fd.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-21f016ec537f36fd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
