/root/repo/target/release/deps/program_study-d67354d8b016217c.d: crates/bench/src/bin/program_study.rs

/root/repo/target/release/deps/program_study-d67354d8b016217c: crates/bench/src/bin/program_study.rs

crates/bench/src/bin/program_study.rs:
