/root/repo/target/release/deps/hetsel_cpusim-a88e86763b8b898a.d: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/release/deps/libhetsel_cpusim-a88e86763b8b898a.rlib: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

/root/repo/target/release/deps/libhetsel_cpusim-a88e86763b8b898a.rmeta: crates/cpusim/src/lib.rs crates/cpusim/src/arch.rs crates/cpusim/src/cache.rs crates/cpusim/src/calibrate.rs crates/cpusim/src/engine.rs crates/cpusim/src/sampler.rs

crates/cpusim/src/lib.rs:
crates/cpusim/src/arch.rs:
crates/cpusim/src/cache.rs:
crates/cpusim/src/calibrate.rs:
crates/cpusim/src/engine.rs:
crates/cpusim/src/sampler.rs:
