/root/repo/target/release/deps/hetsel-117f2947d1143112.d: src/lib.rs

/root/repo/target/release/deps/hetsel-117f2947d1143112: src/lib.rs

src/lib.rs:
