/root/repo/target/release/deps/hetsel_bench-270d7f83d3dbd3b4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetsel_bench-270d7f83d3dbd3b4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetsel_bench-270d7f83d3dbd3b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
