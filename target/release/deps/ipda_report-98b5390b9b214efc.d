/root/repo/target/release/deps/ipda_report-98b5390b9b214efc.d: crates/bench/src/bin/ipda_report.rs

/root/repo/target/release/deps/ipda_report-98b5390b9b214efc: crates/bench/src/bin/ipda_report.rs

crates/bench/src/bin/ipda_report.rs:
