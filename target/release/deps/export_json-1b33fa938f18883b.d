/root/repo/target/release/deps/export_json-1b33fa938f18883b.d: crates/bench/src/bin/export_json.rs

/root/repo/target/release/deps/export_json-1b33fa938f18883b: crates/bench/src/bin/export_json.rs

crates/bench/src/bin/export_json.rs:
