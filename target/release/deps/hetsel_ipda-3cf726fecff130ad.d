/root/repo/target/release/deps/hetsel_ipda-3cf726fecff130ad.d: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/release/deps/libhetsel_ipda-3cf726fecff130ad.rlib: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

/root/repo/target/release/deps/libhetsel_ipda-3cf726fecff130ad.rmeta: crates/ipda/src/lib.rs crates/ipda/src/analysis.rs crates/ipda/src/false_sharing.rs crates/ipda/src/memo.rs crates/ipda/src/stride.rs crates/ipda/src/vectorize.rs crates/ipda/src/warp.rs

crates/ipda/src/lib.rs:
crates/ipda/src/analysis.rs:
crates/ipda/src/false_sharing.rs:
crates/ipda/src/memo.rs:
crates/ipda/src/stride.rs:
crates/ipda/src/vectorize.rs:
crates/ipda/src/warp.rs:
