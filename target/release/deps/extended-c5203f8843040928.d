/root/repo/target/release/deps/extended-c5203f8843040928.d: crates/bench/src/bin/extended.rs

/root/repo/target/release/deps/extended-c5203f8843040928: crates/bench/src/bin/extended.rs

crates/bench/src/bin/extended.rs:
