/root/repo/target/release/deps/hetsel_models-3065499731ea0807.d: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/gpu.rs crates/models/src/trip.rs

/root/repo/target/release/deps/hetsel_models-3065499731ea0807: crates/models/src/lib.rs crates/models/src/cpu.rs crates/models/src/gpu.rs crates/models/src/trip.rs

crates/models/src/lib.rs:
crates/models/src/cpu.rs:
crates/models/src/gpu.rs:
crates/models/src/trip.rs:
