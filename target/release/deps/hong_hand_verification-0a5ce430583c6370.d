/root/repo/target/release/deps/hong_hand_verification-0a5ce430583c6370.d: crates/models/tests/hong_hand_verification.rs

/root/repo/target/release/deps/hong_hand_verification-0a5ce430583c6370: crates/models/tests/hong_hand_verification.rs

crates/models/tests/hong_hand_verification.rs:
