/root/repo/target/release/deps/generation_gap-a02378a3463ef09d.d: tests/generation_gap.rs

/root/repo/target/release/deps/generation_gap-a02378a3463ef09d: tests/generation_gap.rs

tests/generation_gap.rs:
