/root/repo/target/release/deps/split_study-ddc80b7250f534fb.d: crates/bench/src/bin/split_study.rs

/root/repo/target/release/deps/split_study-ddc80b7250f534fb: crates/bench/src/bin/split_study.rs

crates/bench/src/bin/split_study.rs:
