/root/repo/target/release/deps/hosts-1b78560a29d0b259.d: crates/bench/src/bin/hosts.rs

/root/repo/target/release/deps/hosts-1b78560a29d0b259: crates/bench/src/bin/hosts.rs

crates/bench/src/bin/hosts.rs:
