/root/repo/target/release/deps/liao_hand_verification-d0afc59eaca22b99.d: crates/models/tests/liao_hand_verification.rs

/root/repo/target/release/deps/liao_hand_verification-d0afc59eaca22b99: crates/models/tests/liao_hand_verification.rs

crates/models/tests/liao_hand_verification.rs:
