/root/repo/target/release/deps/hetsel-69e5daf9ae52d1a9.d: src/lib.rs

/root/repo/target/release/deps/libhetsel-69e5daf9ae52d1a9.rlib: src/lib.rs

/root/repo/target/release/deps/libhetsel-69e5daf9ae52d1a9.rmeta: src/lib.rs

src/lib.rs:
