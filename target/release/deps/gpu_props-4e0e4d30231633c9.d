/root/repo/target/release/deps/gpu_props-4e0e4d30231633c9.d: crates/gpusim/tests/gpu_props.rs

/root/repo/target/release/deps/gpu_props-4e0e4d30231633c9: crates/gpusim/tests/gpu_props.rs

crates/gpusim/tests/gpu_props.rs:
