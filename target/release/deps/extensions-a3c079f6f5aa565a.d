/root/repo/target/release/deps/extensions-a3c079f6f5aa565a.d: crates/core/tests/extensions.rs

/root/repo/target/release/deps/extensions-a3c079f6f5aa565a: crates/core/tests/extensions.rs

crates/core/tests/extensions.rs:
