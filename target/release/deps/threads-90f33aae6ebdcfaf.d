/root/repo/target/release/deps/threads-90f33aae6ebdcfaf.d: crates/bench/src/bin/threads.rs

/root/repo/target/release/deps/threads-90f33aae6ebdcfaf: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
