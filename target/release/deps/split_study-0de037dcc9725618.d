/root/repo/target/release/deps/split_study-0de037dcc9725618.d: crates/bench/src/bin/split_study.rs

/root/repo/target/release/deps/split_study-0de037dcc9725618: crates/bench/src/bin/split_study.rs

crates/bench/src/bin/split_study.rs:
