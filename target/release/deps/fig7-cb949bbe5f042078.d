/root/repo/target/release/deps/fig7-cb949bbe5f042078.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-cb949bbe5f042078: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
