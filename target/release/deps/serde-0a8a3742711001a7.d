/root/repo/target/release/deps/serde-0a8a3742711001a7.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-0a8a3742711001a7: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
