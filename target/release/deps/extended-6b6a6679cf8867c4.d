/root/repo/target/release/deps/extended-6b6a6679cf8867c4.d: crates/bench/src/bin/extended.rs

/root/repo/target/release/deps/extended-6b6a6679cf8867c4: crates/bench/src/bin/extended.rs

crates/bench/src/bin/extended.rs:
