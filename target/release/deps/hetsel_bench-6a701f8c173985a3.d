/root/repo/target/release/deps/hetsel_bench-6a701f8c173985a3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/hetsel_bench-6a701f8c173985a3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
