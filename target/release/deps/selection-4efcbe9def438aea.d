/root/repo/target/release/deps/selection-4efcbe9def438aea.d: tests/selection.rs

/root/repo/target/release/deps/selection-4efcbe9def438aea: tests/selection.rs

tests/selection.rs:
