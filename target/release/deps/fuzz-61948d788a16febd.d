/root/repo/target/release/deps/fuzz-61948d788a16febd.d: tests/fuzz.rs

/root/repo/target/release/deps/fuzz-61948d788a16febd: tests/fuzz.rs

tests/fuzz.rs:
