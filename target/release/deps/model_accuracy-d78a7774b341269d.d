/root/repo/target/release/deps/model_accuracy-d78a7774b341269d.d: tests/model_accuracy.rs

/root/repo/target/release/deps/model_accuracy-d78a7774b341269d: tests/model_accuracy.rs

tests/model_accuracy.rs:
