/root/repo/target/release/deps/fig7-167290d965538d37.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-167290d965538d37: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
