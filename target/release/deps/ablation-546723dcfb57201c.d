/root/repo/target/release/deps/ablation-546723dcfb57201c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-546723dcfb57201c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
