/root/repo/target/release/deps/threads-8043b76520f4810f.d: crates/bench/src/bin/threads.rs

/root/repo/target/release/deps/threads-8043b76520f4810f: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
