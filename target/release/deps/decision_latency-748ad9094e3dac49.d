/root/repo/target/release/deps/decision_latency-748ad9094e3dac49.d: crates/bench/benches/decision_latency.rs

/root/repo/target/release/deps/decision_latency-748ad9094e3dac49: crates/bench/benches/decision_latency.rs

crates/bench/benches/decision_latency.rs:
