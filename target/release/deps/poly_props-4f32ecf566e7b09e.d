/root/repo/target/release/deps/poly_props-4f32ecf566e7b09e.d: crates/ir/tests/poly_props.rs

/root/repo/target/release/deps/poly_props-4f32ecf566e7b09e: crates/ir/tests/poly_props.rs

crates/ir/tests/poly_props.rs:
