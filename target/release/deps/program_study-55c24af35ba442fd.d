/root/repo/target/release/deps/program_study-55c24af35ba442fd.d: crates/bench/src/bin/program_study.rs

/root/repo/target/release/deps/program_study-55c24af35ba442fd: crates/bench/src/bin/program_study.rs

crates/bench/src/bin/program_study.rs:
