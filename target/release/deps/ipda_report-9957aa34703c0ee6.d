/root/repo/target/release/deps/ipda_report-9957aa34703c0ee6.d: crates/bench/src/bin/ipda_report.rs

/root/repo/target/release/deps/ipda_report-9957aa34703c0ee6: crates/bench/src/bin/ipda_report.rs

crates/bench/src/bin/ipda_report.rs:
