/root/repo/target/release/deps/ablation-29a39cc11ad747f0.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-29a39cc11ad747f0: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
