/root/repo/target/release/examples/adaptive_runtime-06ead6a4a60e5218.d: examples/adaptive_runtime.rs

/root/repo/target/release/examples/adaptive_runtime-06ead6a4a60e5218: examples/adaptive_runtime.rs

examples/adaptive_runtime.rs:
