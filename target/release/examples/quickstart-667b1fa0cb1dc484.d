/root/repo/target/release/examples/quickstart-667b1fa0cb1dc484.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-667b1fa0cb1dc484: examples/quickstart.rs

examples/quickstart.rs:
