/root/repo/target/release/examples/policy_comparison-07d21fbd1024cc97.d: examples/policy_comparison.rs

/root/repo/target/release/examples/policy_comparison-07d21fbd1024cc97: examples/policy_comparison.rs

examples/policy_comparison.rs:
