/root/repo/target/release/examples/generation_gap-80aa4fe9c3036b62.d: examples/generation_gap.rs

/root/repo/target/release/examples/generation_gap-80aa4fe9c3036b62: examples/generation_gap.rs

examples/generation_gap.rs:
