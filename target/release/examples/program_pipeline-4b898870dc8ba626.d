/root/repo/target/release/examples/program_pipeline-4b898870dc8ba626.d: examples/program_pipeline.rs

/root/repo/target/release/examples/program_pipeline-4b898870dc8ba626: examples/program_pipeline.rs

examples/program_pipeline.rs:
