/root/repo/target/release/examples/coalescing-153883c4d9edfa78.d: examples/coalescing.rs

/root/repo/target/release/examples/coalescing-153883c4d9edfa78: examples/coalescing.rs

examples/coalescing.rs:
