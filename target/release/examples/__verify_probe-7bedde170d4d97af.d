/root/repo/target/release/examples/__verify_probe-7bedde170d4d97af.d: examples/__verify_probe.rs

/root/repo/target/release/examples/__verify_probe-7bedde170d4d97af: examples/__verify_probe.rs

examples/__verify_probe.rs:
