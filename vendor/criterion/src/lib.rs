//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`bench_function`, `benchmark_group` / `bench_with_input`,
//! `sample_size`, `criterion_group!` / `criterion_main!`) with a simple
//! calibrated timing loop: each benchmark is warmed up, the iteration count
//! is chosen so a measurement batch takes a meaningful amount of wall time,
//! and the best-of-batches mean is printed per iteration.
//!
//! Output is one line per benchmark:
//! `bench <name> ... <mean>/iter (<iters> iters, <batches> batches)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per measurement batch.
const TARGET_BATCH: Duration = Duration::from_millis(40);
/// Measurement batches per benchmark (the reported value is their minimum,
/// which is robust against scheduler noise).
const DEFAULT_BATCHES: u32 = 5;

pub struct Criterion {
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            batches: DEFAULT_BATCHES,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.batches, &mut routine);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            batches: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    batches: Option<u32>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion's `sample_size` bounds statistical sample count; here it
    /// caps the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.batches = Some((n as u32).clamp(2, DEFAULT_BATCHES));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.batches.unwrap_or(self.criterion.batches),
            &mut routine,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.batches.unwrap_or(self.criterion.batches),
            &mut |b: &mut Bencher| routine(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// Passed to benchmark closures; `iter` runs the routine in a timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, batches: u32, routine: &mut F) {
    // Warm-up & calibration: time a single iteration, then scale the batch
    // so it lasts roughly TARGET_BATCH.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut best_per_iter = f64::INFINITY;
    for _ in 0..batches.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if per_iter < best_per_iter {
            best_per_iter = per_iter;
        }
    }
    println!(
        "bench {name:<48} ... {}/iter ({iters} iters, {batches} batches)",
        fmt_seconds(best_per_iter)
    );
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Groups benchmark functions under one callable, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a bench binary; ignores harness CLI arguments.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; accept and ignore.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

pub mod black_box_reexport {
    pub use std::hint::black_box;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { batches: 2 };
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { batches: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, x| {
            b.iter(|| *x * 2);
        });
        group.finish();
    }
}
