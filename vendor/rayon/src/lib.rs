//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace vendors a minimal, API-compatible subset of rayon that executes
//! everything **sequentially**. The parallel-iterator entry points used by the
//! simulators (`into_par_iter`, `par_iter_mut`, `par_chunks_mut`) return the
//! ordinary standard-library iterators, so all downstream `Iterator`
//! combinators (`map`, `enumerate`, `zip`, `for_each`, `collect`, ...) chain
//! unchanged. Results are bit-identical to the parallel version because every
//! call site in this workspace uses rayon for embarrassingly parallel loops
//! with disjoint outputs.

pub mod prelude {
    /// Sequential replacement for `rayon::iter::IntoParallelIterator`.
    ///
    /// Blanket-implemented over everything that is `IntoIterator`, so ranges,
    /// vectors and slices all gain `into_par_iter()`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Sequential replacement for `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: ?Sized + 'data> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential replacement for `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_shims_behave_like_std() {
        let squares: Vec<u64> = (0u64..8).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);

        let mut data = vec![1u32; 10];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(data, vec![2; 10]);

        let mut buf = [0u8; 9];
        buf.par_chunks_mut(4)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u8));
        assert_eq!(buf, [0, 0, 0, 0, 1, 1, 1, 1, 2]);
    }
}
