//! Offline derive macros for the vendored serde stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! **named-field structs without generic type parameters** — the only shape
//! this workspace derives on. The input token stream is walked directly
//! (no `syn`/`quote`, which are unavailable offline) and the generated impl
//! is assembled as a source string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its named fields from a derive input.
///
/// Panics with a descriptive message on unsupported shapes (enums, tuple
/// structs, generic structs) so misuse fails at compile time.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(id)) => name = Some(id.to_string()),
                    other => panic!("serde derive: expected struct name, found {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde derive (vendored): only structs are supported, found `{id}`");
            }
            _ => {}
        }
    }
    let name = name.expect("serde derive: no `struct` keyword in input");

    // The next token must be the brace-delimited field block; generics are
    // not supported (a `<` would appear here).
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde derive (vendored): generic struct `{name}` is not supported")
        }
        other => panic!(
            "serde derive (vendored): `{name}` must be a named-field struct, found {other:?}"
        ),
    };

    StructDef {
        name,
        fields: parse_fields(body),
    }
}

/// Collects field names from the token stream inside the struct braces.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip field attributes (`#[...]` / doc comments, which arrive as
        // `#` + bracket group).
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        // Skip visibility: `pub` optionally followed by `(crate)` etc.
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(
                toks.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                toks.next();
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            Some(other) => panic!("serde derive: expected field name, found {other:?}"),
        }
        // Skip the type up to the next top-level comma. Commas inside
        // parens/brackets arrive pre-grouped, but commas inside generic
        // angle brackets do not — track `<`/`>` depth explicitly.
        let mut angle_depth = 0i32;
        for tt in toks.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut entries = String::new();
    for f in &def.fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = def.name,
    );
    out.parse()
        .expect("serde derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut inits = String::new();
    for f in &def.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| \
                ::serde::Error::msg(\"missing field `{f}` in {name}\"))?)?,",
            name = def.name,
        ));
    }
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
    );
    out.parse()
        .expect("serde derive: generated impl failed to parse")
}
