//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment, so this crate
//! provides a small value-tree serialization framework with the same surface
//! used by this workspace: `#[derive(Serialize, Deserialize)]` on named-field
//! structs, plus `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! self-describing [`Value`] tree. Numbers keep their original flavour
//! (signed / unsigned / float) so round-trips are lossless: `f64` values are
//! rendered with `{:?}` which prints the shortest representation that parses
//! back to the identical bits.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between `Serialize`
/// and `Deserialize` implementations and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (JSON object). Linear lookup is fine at the
    /// field counts seen in practice.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    other => return Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    other => return Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Identity deserialization: lets callers parse JSON into a raw [`Value`]
/// tree (e.g. to salvage fields from a document that fails typed
/// deserialization).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array of {LEN}, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        let x = 0.1f64 + 0.2;
        assert_eq!(
            f64::from_value(&x.to_value()).unwrap().to_bits(),
            x.to_bits()
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn composite_round_trips() {
        let v = vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        let tree = v.to_value();
        assert_eq!(Vec::<(String, u64)>::from_value(&tree).unwrap(), v);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
