//! Offline stand-in for `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Floats are written with `{:?}` (Rust's shortest round-trippable form), so
//! finite `f64` values survive a `to_string`/`from_str` round trip
//! bit-for-bit. Non-finite floats serialize as `null`, matching serde_json.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            if !fields.is_empty() {
                newline(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected ',' or ']' in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected ',' or '}}' in object, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest
                .first()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = *rest
                        .get(1)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("atax.k1".into())),
            (
                "trips".into(),
                Value::Array(vec![Value::UInt(3), Value::Int(-2)]),
            ),
            ("speedup".into(), Value::Float(0.1 + 0.2)),
            ("ok".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
        ]);
        let text = to_string(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&text).unwrap();
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back2: ValueWrap = from_str(&pretty).unwrap();
        assert_eq!(back2.0, v);
    }

    #[test]
    fn escapes_and_unicode() {
        let s = "line\n\"quote\"\\\tπ".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let u: String = from_str("\"\\u03c0\"").unwrap();
        assert_eq!(u, "π");
    }

    /// Helper funnelling a raw Value through the Serialize/Deserialize traits.
    #[derive(Clone)]
    struct ValueWrap(Value);

    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(ValueWrap(v.clone()))
        }
    }
}
