//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library lock types behind parking_lot's non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly rather than
//! `Result`s). Poisoned locks are recovered transparently, matching
//! parking_lot's behaviour of not propagating panics through lock state.

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(3u32);
        assert_eq!(*l.read(), 3);
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
