//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map`, `boxed` and `prop_recursive`, range and tuple
//! strategies, `prop::collection::vec`, `prop::array::uniform5`,
//! `prop::sample::select`, [`Just`], the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//! - generation is **deterministic**: the RNG is seeded from the test's
//!   module path and name, so failures reproduce without regression files;
//! - failing cases are **not shrunk** — the assertion message reports the
//!   generated values via the normal `assert!` panic;
//! - strategies only generate; there is no rejection/filter machinery.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    pub fn seeded(name: &str) -> TestRng {
        // FNV-1a over the test path gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `depth` levels of `expand` applied on top
    /// of `self` as the leaf, choosing between leaf and expanded forms.
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), expand(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy (`Rc`-backed; tests are
/// single-threaded per `#[test]`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = rng.below(span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_range_strategy! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`: a vector whose length is
    /// uniform in `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform5<S>(S);

    /// `prop::array::uniform5(element)`: an array of five independent draws.
    pub fn uniform5<S: Strategy>(element: S) -> Uniform5<S> {
        Uniform5(element)
    }

    impl<S: Strategy> Strategy for Uniform5<S> {
        type Value = [S::Value; 5];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 5] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(options)`: uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

/// Per-`proptest!` block configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
         $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::seeded(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Like `assert!`, inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Like `assert_ne!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seeded("ranges");
        for _ in 0..2000 {
            let x = crate::Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&x));
            let u = crate::Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&u));
            let f = crate::Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = crate::TestRng::seeded("same");
        let mut b = crate::TestRng::seeded("same");
        let strat = prop::collection::vec((0u64..64, 0u64..4096), 1..600);
        for _ in 0..20 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end compiles and enforces bounds.
        #[test]
        fn macro_smoke(x in 1i64..100, pair in (0u8..4, 10usize..20), v in prop::collection::vec(0i32..5, 1..8)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert!(!v.is_empty() && v.len() < 8, "len {}", v.len());
        }

        #[test]
        fn oneof_and_map(y in prop_oneof![Just(3i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(y == 3 || (20..40).contains(&y));
        }
    }
}
