//! # hetsel — hybrid analytical CPU/GPU execution-target selection
//!
//! Umbrella crate re-exporting the public API of the `hetsel` workspace: a
//! reproduction of *"Toward an Analytical Performance Model to Select between
//! GPU and CPU Execution"* (Chikin, Amaral, Ali, Tiotto — IPPS 2019).
//!
//! The workspace implements, from scratch:
//!
//! * [`ir`] — a loop-nest IR for OpenMP-style target regions;
//! * [`ipda`] — the Iteration Point Difference Analysis: symbolic
//!   inter-thread stride analysis for memory-coalescing detection;
//! * [`mca`] — an LLVM-MCA-style machine-code throughput analyzer;
//! * [`polybench`] — the 25 Polybench OpenMP kernels used in the evaluation;
//! * [`cpusim`] / [`gpusim`] — timing simulators standing in for the paper's
//!   POWER8/POWER9 hosts and K80/V100 accelerators;
//! * [`models`] — the Liao/Chapman CPU cost model and the Hong–Kim GPU
//!   MWP/CWP model (with the paper's `#OMP_Rep` extension);
//! * [`obs`] — dependency-free structured tracing and a process-wide
//!   metrics registry instrumenting the whole decision pipeline;
//! * [`core`] — the program attribute database and the runtime selector.
//!
//! ## Quickstart
//!
//! ```
//! use hetsel::prelude::*;
//!
//! // An OpenMP kernel: #pragma omp target teams distribute parallel for
//! //                   for (i = 0; i < n; i++) y[i] = a*x[i] + y[i];
//! let mut kb = KernelBuilder::new("axpy");
//! let x = kb.array("x", 8, &["n".into()], Transfer::In);
//! let y = kb.array("y", 8, &["n".into()], Transfer::InOut);
//! let i = kb.parallel_loop(0, "n");
//! let rhs = cexpr::add(cexpr::mul(cexpr::scalar("a"), kb.load(x, &[i.into()])),
//!                      kb.load(y, &[i.into()]));
//! kb.store(y, &[i.into()], rhs);
//! kb.end_loop();
//! let kernel = kb.finish();
//!
//! // Compile-time half: static features, IPDA strides, and both cost
//! // models land in the attribute database, fully compiled.
//! let selector = Selector::new(Platform::power9_v100());
//! let db = AttributeDatabase::compile(&[kernel], &selector);
//!
//! // Runtime half: bind the runtime values; the engine evaluates the
//! // precompiled models and memoizes the decision per (region, values).
//! let engine = DecisionEngine::from_database(selector, db, 1024);
//! let binding = Binding::new().with("n", 1 << 20);
//! let decision = engine.decide("axpy", &binding).unwrap();
//! println!(
//!     "run axpy on {}: predicted offload speedup {:.2}x",
//!     decision.device,
//!     decision.predicted_speedup().unwrap()
//! );
//!
//! // Fault-tolerant half: the dispatcher wraps the engine and actually
//! // runs the region on the decided device's simulator, with per-device
//! // circuit breakers, bounded transient retry, and host fallback. With no
//! // fault plan installed this is exactly `decide` plus one clean run.
//! let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
//! let outcome = dispatcher.dispatch(&DecisionRequest::new("axpy", binding)).unwrap();
//! assert_eq!(outcome.decision, decision);
//! assert!(outcome.clean() && outcome.simulated_s > 0.0);
//! ```

pub use hetsel_core as core;
pub use hetsel_cpusim as cpusim;
pub use hetsel_fault as fault;
pub use hetsel_gpusim as gpusim;
pub use hetsel_ipda as ipda;
pub use hetsel_ir as ir;
pub use hetsel_mca as mca;
pub use hetsel_models as models;
pub use hetsel_obs as obs;
pub use hetsel_polybench as polybench;

/// Commonly used items for working with the framework.
pub mod prelude {
    pub use hetsel_core::{
        AttributeDatabase, BreakerState, CalibrationMode, Calibrator, Decision, DecisionEngine,
        DecisionRequest, Device, DeviceId, DeviceKind, DispatchError, DispatchOutcome, Dispatcher,
        DispatcherConfig, Explanation, FallbackReason, Fleet, Platform, Policy, Selector,
    };
    pub use hetsel_fault::{FaultKind, FaultPlan};
    pub use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
    pub use hetsel_models::{CompiledModel, CostModel, ModelError, Prediction};
}
