//! Hand-computed verification of the Hong–Kim equations (paper Figures
//! 4–5): for a kernel small enough to evaluate the model by hand, every
//! intermediate quantity and the final `Exec_cycles` must match the
//! closed-form arithmetic exactly.

use hetsel_ir::{Binding, Kernel, KernelBuilder, Transfer};
use hetsel_models::{gpu, v100_params, CoalescingMode, HongCase, TripMode};

/// One coalesced load + one coalesced store per thread, no inner loop:
/// every count is knowable by inspection.
fn copy_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("copy");
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let ld = kb.load(x, &[i.into()]);
    kb.store(y, &[i.into()], ld);
    kb.end_loop();
    kb.finish()
}

#[test]
fn copy_kernel_quantities_by_hand() {
    let k = copy_kernel();
    // n = 128 * 80: exactly 80 blocks of 128 threads, one block per SM.
    let n: i64 = 128 * 80;
    let b = Binding::new().with("n", n);
    let params = v100_params();
    let g = gpu::predict(&k, &b, &params, TripMode::Runtime, CoalescingMode::Ipda).unwrap();

    // Geometry: 80 blocks, no thread reuse, one wave.
    assert_eq!(g.geometry.blocks, 80);
    assert_eq!(g.geometry.threads_per_block, 128);
    assert_eq!(g.omp_rep, 1.0);
    assert_eq!(g.rep, 1.0);
    assert_eq!(g.occupancy.active_sms, 80);
    // N = 4 warps per SM (one 128-thread block).
    assert_eq!(g.n_warps, 4.0);

    // Census: 2 memory instructions, both unit-stride f32 => coalesced.
    assert_eq!(g.coal_mem_insts, 2.0);
    assert_eq!(g.uncoal_mem_insts, 0.0);

    // With N = 4 and plenty of latency to hide, MWP and CWP both clamp to
    // N: the Balanced case of Figure 4.
    assert_eq!(g.case, HongCase::Balanced);
    assert_eq!(g.mwp, 4.0);
    assert_eq!(g.cwp, 4.0);

    // Balanced-case formula:
    //   Exec = Mem_cycles + Comp_cycles + Comp/#Mem × (MWP − 1).
    // Both arrays fit V100's 6 MiB L2 easily (40 KiB each): the static L2
    // estimate gives hit = 0.95, so
    //   base_l  = 0.95×193 + 0.05×425 = 204.6  (per-access latency)
    //   Mem_cycles = 2 × 204.6 = 409.2.
    let base_l = 0.95 * 193.0 + 0.05 * 425.0;
    let mem_cycles = 2.0 * base_l;
    // Lowered ops per iteration: 2 address IntAlu + 1 load + 1 store = 4
    // instructions (the parallel loop's own bookkeeping belongs to the
    // runtime, not the thread's loadout). Hong's Comp_cycles multiplies the
    // *total* instruction count by #Issue_cycles (1 on Volta): 4.
    let comp_cycles = 4.0;
    let expected = mem_cycles + comp_cycles + comp_cycles / 2.0 * (4.0 - 1.0);
    assert!(
        (g.exec_cycles - expected).abs() < 1e-9,
        "exec {} vs hand {}",
        g.exec_cycles,
        expected
    );

    // Transfers: 2 × (5 µs latency + 40960 B / 60 GB/s).
    let one_way = 5e-6 + (n as f64 * 4.0) / 60e9;
    assert!((g.transfer_seconds - 2.0 * one_way).abs() < 1e-12);

    // Total = kernel + transfers + 5 µs launch.
    let kernel_s = expected / 1.38e9;
    assert!((g.seconds - (kernel_s + g.transfer_seconds + 5e-6)).abs() < 1e-15);
}

#[test]
fn omp_rep_factor_multiplies_exactly() {
    let k = copy_kernel();
    let params = v100_params();
    // Resident capacity: 80 SMs × 16 blocks × 128 threads = 163840.
    let resident: i64 = 80 * 16 * 128;
    let b1 = gpu::predict(
        &k,
        &Binding::new().with("n", resident),
        &params,
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )
    .unwrap();
    let b3 = gpu::predict(
        &k,
        &Binding::new().with("n", resident * 3),
        &params,
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )
    .unwrap();
    assert_eq!(b1.omp_rep, 1.0);
    assert_eq!(b3.omp_rep, 3.0);
    // Same per-rep cycles, three repetitions: exactly 3x (same N, MWP, CWP).
    assert!(
        (b3.exec_cycles - 3.0 * b1.exec_cycles).abs() < 1e-6,
        "{} vs 3x {}",
        b3.exec_cycles,
        b1.exec_cycles
    );
}

#[test]
fn uncoalesced_departure_delay_enters_mem_l() {
    // Stride-16 f32 access: 16 transactions per warp (two lanes per 32 B
    // segment), uncoalesced.
    let mut kb = KernelBuilder::new("strided");
    let x = kb.array(
        "x",
        4,
        &[hetsel_ir::Expr::param("n") * hetsel_ir::Expr::Const(16)],
        Transfer::In,
    );
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let ld = kb.load(x, &[hetsel_ir::Expr::Const(16) * hetsel_ir::Expr::var(i)]);
    kb.store(y, &[i.into()], ld);
    kb.end_loop();
    let k = kb.finish();

    let coal = gpu::predict(
        &copy_kernel(),
        &Binding::new().with("n", 128 * 80),
        &v100_params(),
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )
    .unwrap();
    let unc = gpu::predict(
        &k,
        &Binding::new().with("n", 128 * 80),
        &v100_params(),
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )
    .unwrap();
    assert_eq!(unc.uncoal_mem_insts, 1.0);
    assert_eq!(unc.coal_mem_insts, 1.0);
    // The strided version must predict strictly more cycles.
    assert!(unc.exec_cycles > coal.exec_cycles);
}
