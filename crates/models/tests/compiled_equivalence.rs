//! Property tests: the compiled evaluation path (postfix bytecode over
//! interned parameter slots) is bit-for-bit the tree-interpreted path, for
//! **every** Polybench kernel under randomized — and partially unbound —
//! bindings.
//!
//! The tree references are the original string-keyed entry points that the
//! hot path no longer touches: `Kernel::parallel_iterations` /
//! `bytes_to_device` / `bytes_from_device` (recursive `Expr::eval`),
//! `trips::resolve` (tree-walking trip resolution) and `Stride::resolve`
//! (polynomial evaluation over a `Binding`). Each is compared against its
//! compiled twin on identical inputs.

use hetsel_ipda::analyze_cached;
use hetsel_ir::{trips, Binding, CompiledKernel, CompiledTrips, Kernel, SymbolTable};
use hetsel_polybench::suite;
use proptest::prelude::*;

fn suite_kernels() -> Vec<Kernel> {
    suite().into_iter().flat_map(|b| b.kernels).collect()
}

/// Deterministic value stream (splitmix-style LCG step) so one proptest
/// `seed` fans out into a distinct value per (kernel, parameter).
fn next_value(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Builds a randomized binding for `kernel`: realistic extents, a sprinkle
/// of degenerate values (zero, one), and roughly one parameter in six left
/// unbound so the symbolic (`None`) paths are exercised too.
fn arb_binding(kernel: &Kernel, state: &mut u64, unbind: u32) -> Binding {
    let mut binding = Binding::new();
    for (pi, p) in kernel.params().iter().enumerate() {
        let v = next_value(state);
        if (u64::from(unbind) + pi as u64 + v).is_multiple_of(6) {
            continue;
        }
        // Mostly plausible extents, occasionally 0 or 1.
        let value = match v % 8 {
            0 => 0,
            1 => 1,
            _ => (v % 3000) as i64,
        };
        binding.set(p, value);
    }
    binding
}

proptest! {
    /// Kernel facts (parallel-iteration product, transfer footprints) and
    /// trip resolution agree with the tree interpreter on every Polybench
    /// kernel.
    #[test]
    fn compiled_kernel_facts_match_tree(seed in 0u64..u64::MAX / 2, unbind in 0u32..64) {
        let mut state = seed;
        for kernel in &suite_kernels() {
            let binding = arb_binding(kernel, &mut state, unbind);
            let mut table = SymbolTable::new();
            let facts = CompiledKernel::compile(kernel, &mut table);
            let ctrips = CompiledTrips::compile(kernel, &mut table);
            let bound = table.bind(&binding);

            prop_assert_eq!(
                facts.parallel_iterations(&bound),
                kernel.parallel_iterations(&binding),
                "parallel_iterations diverged for {}", kernel.name
            );
            prop_assert_eq!(
                facts.bytes_to_device(&bound),
                kernel.bytes_to_device(&binding),
                "bytes_to_device diverged for {}", kernel.name
            );
            prop_assert_eq!(
                facts.bytes_from_device(&bound),
                kernel.bytes_from_device(&binding),
                "bytes_from_device diverged for {}", kernel.name
            );

            let tree = trips::resolve(kernel, &binding);
            let compiled = ctrips.resolve(&bound);
            let n = ctrips.n_vars();
            prop_assert_eq!(
                compiled.dense(n),
                tree.dense(n),
                "trip counts diverged for {}", kernel.name
            );
        }
    }

    /// IPDA inter-thread strides resolve identically through bytecode and
    /// through the symbolic polynomial, access by access.
    #[test]
    fn compiled_strides_match_tree(seed in 0u64..u64::MAX / 2, unbind in 0u32..64) {
        let mut state = seed;
        for kernel in &suite_kernels() {
            let binding = arb_binding(kernel, &mut state, unbind);
            let info = analyze_cached(kernel);
            for (ai, access) in info.accesses.iter().enumerate() {
                let mut table = SymbolTable::new();
                let compiled = access.thread_stride.compile(&mut table);
                let bound = table.bind(&binding);
                prop_assert_eq!(
                    compiled.resolve(&bound),
                    access.thread_stride.resolve(&binding),
                    "stride diverged for {} access {}", kernel.name, ai
                );
            }
        }
    }
}
