//! Hand-computed verification of the Liao/Chapman CPU model (paper
//! Figure 3 + Table II): for a trivially small kernel, every term is
//! reproducible with pencil-and-paper arithmetic.

use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use hetsel_models::{cpu, power9_params, TripMode};

/// `y[i] = x[i]` over n iterations: one load, one store, no inner loop.
fn copy_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("copy");
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let ld = kb.load(x, &[i.into()]);
    kb.store(y, &[i.into()], ld);
    kb.end_loop();
    let _ = cexpr::lit(0.0);
    kb.finish()
}

#[test]
fn figure3_terms_by_hand() {
    let k = copy_kernel();
    let params = power9_params();
    // 160 threads over 160_000 iterations: chunk = 1000 exactly.
    let n: i64 = 160_000;
    let threads = 160;
    let p = cpu::predict(
        &k,
        &Binding::new().with("n", n),
        &params,
        threads,
        TripMode::Runtime,
    )
    .unwrap();

    assert_eq!(p.chunk, 1000);

    // Fork_c = Par_Startup + fork_per_thread × threads
    //        = 3000 + 24000×160 = 3_843_000.
    assert_eq!(p.fork_cycles, 3000.0 + 24_000.0 * 160.0);
    // Schedule_c and Join_c are the Table II constants.
    assert_eq!(p.schedule_cycles, 10_154.0);
    assert_eq!(p.join_cycles, 4_000.0);

    // Loop_chunk_c = (Machine_cycles_per_iter × chunk + Cache_c
    //                 + Loop_overhead_per_iter × chunk) × smt_stretch.
    // 1.28 MB of arrays fit the 64 MiB TLB reach: Cache_c = 0.
    assert_eq!(p.cache_cost, 0.0);
    // smt_stretch: 160 threads vs 40 effective (20 cores × smt_benefit 2).
    let stretch = 4.0;
    let expected_chunk_cycles = (p.machine_cycles_per_iter * 1000.0 + 0.0 + 4.0 * 1000.0) * stretch;
    assert!(
        (p.loop_chunk_cycles - expected_chunk_cycles).abs() < 1e-9,
        "{} vs {}",
        p.loop_chunk_cycles,
        expected_chunk_cycles
    );

    // Composition and the 3 GHz conversion.
    assert!(p.composition_residual() < 1e-9);
    assert!((p.seconds - p.cycles / 3.0e9).abs() < 1e-18);

    // The copy body is trivially vectorisable over the parallel dimension:
    // 4 f32 lanes × 0.95 efficiency.
    assert!((p.vector_factor - 4.0 * 0.95).abs() < 1e-12);
}

#[test]
fn chunk_scaling_is_linear_in_iterations() {
    let k = copy_kernel();
    let params = power9_params();
    let p1 = cpu::predict(
        &k,
        &Binding::new().with("n", 160_000),
        &params,
        160,
        TripMode::Runtime,
    )
    .unwrap();
    let p2 = cpu::predict(
        &k,
        &Binding::new().with("n", 320_000),
        &params,
        160,
        TripMode::Runtime,
    )
    .unwrap();
    // Overheads constant, chunk term doubles.
    let fixed = p1.fork_cycles + p1.schedule_cycles + p1.join_cycles;
    assert_eq!(fixed, p2.fork_cycles + p2.schedule_cycles + p2.join_cycles);
    assert!(
        (p2.loop_chunk_cycles - 2.0 * p1.loop_chunk_cycles).abs() < 1e-6,
        "{} vs 2x {}",
        p2.loop_chunk_cycles,
        p1.loop_chunk_cycles
    );
}

#[test]
fn tlb_term_engages_past_the_reach() {
    // A strided walk over a matrix larger than the 64 MiB TLB reach.
    let mut kb = KernelBuilder::new("colwalk");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("s", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let ld = kb.load(a, &[j.into(), i.into()]); // stride n over j
    kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
    kb.end_loop();
    kb.store_acc(y, &[i.into()], "s");
    kb.end_loop();
    let k = kb.finish();
    let params = power9_params();

    // 4000^2 x 4 B = 61 MiB (+ y): under the 64 MiB reach — no misses.
    let at = cpu::predict(
        &k,
        &Binding::new().with("n", 4000),
        &params,
        160,
        TripMode::Runtime,
    )
    .unwrap();
    assert_eq!(at.cache_cost, 0.0);
    // 8192^2 x 4 B = 256 MiB: every strided access crosses a page.
    let over = cpu::predict(
        &k,
        &Binding::new().with("n", 8192),
        &params,
        160,
        TripMode::Runtime,
    )
    .unwrap();
    assert!(over.cache_cost > 0.0);
    // Per-iteration misses = inner trips (stride 32 KiB = half a page =>
    // probability 0.5) x ... at minimum thousands of cycles per chunk.
    assert!(over.cache_cost > 1000.0, "{}", over.cache_cost);
}
