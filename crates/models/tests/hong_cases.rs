//! Coverage of the Hong–Kim model's three Figure-4 cases and the model's
//! qualitative behaviours, using purpose-built kernels.

use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use hetsel_models::{gpu, v100_params, CoalescingMode, HongCase, TripMode};

fn predict(k: &Kernel, b: &Binding) -> gpu::GpuPrediction {
    gpu::predict(
        k,
        b,
        &v100_params(),
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )
    .unwrap()
}

/// Compute-heavy: long dependent FP chain per thread, one load.
fn compute_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("compute-heavy");
    let a = kb.array("a", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("s", kb.load(a, &[i.into()]));
    let j = kb.seq_loop(0, "iters");
    kb.assign_acc(
        "s",
        cexpr::add(
            cexpr::mul(cexpr::acc(), cexpr::scalar("c")),
            cexpr::scalar("d"),
        ),
    );
    kb.end_loop();
    kb.store_acc(y, &[i.into()], "s");
    kb.end_loop();
    let _ = j;
    kb.finish()
}

/// Memory-heavy: streaming loads, almost no compute.
fn memory_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("memory-heavy");
    let a = kb.array("a", 4, &["n".into(), "m".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("s", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "m");
    let ld = kb.load(a, &[i.into(), j.into()]);
    kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
    kb.end_loop();
    kb.store_acc(y, &[i.into()], "s");
    kb.end_loop();
    let _ = j;
    kb.finish()
}

#[test]
fn compute_bound_case_fires() {
    let k = compute_kernel();
    // Huge arithmetic per memory op, few enough threads that CWP is small.
    let b = Binding::new().with("n", 1 << 20).with("iters", 4096);
    let p = predict(&k, &b);
    assert_eq!(p.case, HongCase::ComputeBound, "{p:?}");
}

#[test]
fn memory_bound_case_fires() {
    let k = memory_kernel();
    let b = Binding::new().with("n", 1 << 20).with("m", 4096);
    let p = predict(&k, &b);
    assert_eq!(
        p.case,
        HongCase::MemoryBound,
        "mwp={} cwp={} n={}",
        p.mwp,
        p.cwp,
        p.n_warps
    );
    assert!(p.mwp < p.cwp);
}

#[test]
fn balanced_case_fires_when_warps_are_scarce() {
    // Tiny grid: N small; MWP and CWP both clamp to N.
    let k = memory_kernel();
    let b = Binding::new().with("n", 256).with("m", 64);
    let p = predict(&k, &b);
    assert_eq!(
        p.case,
        HongCase::Balanced,
        "mwp={} cwp={} n={}",
        p.mwp,
        p.cwp,
        p.n_warps
    );
    assert_eq!(p.mwp, p.n_warps);
    assert_eq!(p.cwp, p.n_warps);
}

#[test]
fn exec_cycles_scale_with_omp_rep() {
    let k = memory_kernel();
    let small = predict(&k, &Binding::new().with("n", 200_000).with("m", 16));
    let large = predict(&k, &Binding::new().with("n", 8_000_000).with("m", 16));
    assert!(large.omp_rep > small.omp_rep);
    assert!(large.exec_cycles > small.exec_cycles * 2.0);
}

#[test]
fn more_compute_per_thread_costs_more() {
    let k = compute_kernel();
    let a = predict(&k, &Binding::new().with("n", 1 << 18).with("iters", 128));
    let b = predict(&k, &Binding::new().with("n", 1 << 18).with("iters", 1024));
    assert!(b.kernel_seconds > a.kernel_seconds * 4.0);
}

#[test]
fn coalescing_modes_order_predictions() {
    // Strided access: IPDA detects it; the ablation modes bracket it.
    let mut kb = KernelBuilder::new("strided");
    let a = kb.array("a", 4, &[Expr::param("n") * Expr::Const(33)], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let ld = kb.load(a, &[Expr::Const(33) * Expr::var(i)]);
    kb.store(y, &[i.into()], ld);
    kb.end_loop();
    let k = kb.finish();
    let b = Binding::new().with("n", 1 << 20);
    let p = v100_params();
    let co = gpu::predict(
        &k,
        &b,
        &p,
        TripMode::Runtime,
        CoalescingMode::AssumeCoalesced,
    )
    .unwrap();
    let ip = gpu::predict(&k, &b, &p, TripMode::Runtime, CoalescingMode::Ipda).unwrap();
    let un = gpu::predict(
        &k,
        &b,
        &p,
        TripMode::Runtime,
        CoalescingMode::AssumeUncoalesced,
    )
    .unwrap();
    assert!(co.kernel_seconds <= ip.kernel_seconds + 1e-15);
    assert!(ip.kernel_seconds <= un.kernel_seconds + 1e-15);
    // The strided access really is uncoalesced: IPDA sits at the
    // pessimistic end here, far from the coalesced assumption.
    assert!(ip.kernel_seconds > co.kernel_seconds * 2.0);
}
