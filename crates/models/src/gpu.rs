//! The analytical GPU model: Hong & Kim's MWP/CWP model (paper Figures 4–5)
//! adapted to the evaluated architectures, with two paper-specific
//! extensions:
//!
//! * **`#OMP_Rep`** — when the grid geometry selected by the OpenMP runtime
//!   covers fewer threads than parallel work items, each thread executes
//!   `#OMP_Rep` distinct loop iterations (highlighted factor in Figure 4);
//! * **IPDA-driven coalescing** — `#Coal_Mem_insts` / `#Uncoal_Mem_insts`
//!   come from the symbolic inter-thread stride analysis resolved with
//!   runtime values, instead of the trace/profile-driven estimates of prior
//!   work (paper Section IV.C).
//!
//! Like the original model, there is **no cache hierarchy**: every memory
//! instruction pays the full device-memory latency, which the paper calls
//! out when discussing the SYRK over-estimate.

use crate::error::ModelError;
use crate::trip::TripMode;
use hetsel_gpusim::{occupancy, select, Geometry, GpuDescriptor, Occupancy};
use hetsel_ipda::{analyze_cached, CompiledStride};
use hetsel_ir::{
    trips::TripCounts, Binding, BoundParams, CompiledExpr, CompiledKernel, CompiledTrips, Kernel,
    LoopVarId, SymbolTable,
};
use hetsel_mca::{compile_loadout, CompiledLoadout, OpKind};
use std::sync::Arc;

/// How memory accesses are classified when the model runs — `Ipda` is the
/// paper's contribution; the two `Assume*` modes exist for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalescingMode {
    /// Resolve IPDA symbolic strides with the runtime binding.
    Ipda,
    /// Prior-work pessimism: every access uncoalesced.
    AssumeUncoalesced,
    /// Naive optimism: every access coalesced.
    AssumeCoalesced,
}

/// GPU model parameters: the device sheet (paper Table III) plus the
/// Hong–Kim pipeline constants.
#[derive(Debug, Clone)]
pub struct GpuModelParams {
    /// The device (SM count, clock, bandwidth, bus — Table III).
    pub device: GpuDescriptor,
    /// Issue cycles per instruction per warp (`#Issue_cycles`).
    pub issue_cycles: f64,
    /// Departure delay of a coalesced memory instruction, cycles.
    pub departure_del_coal: f64,
    /// Departure delay per transaction of an uncoalesced instruction.
    pub departure_del_uncoal: f64,
}

/// Table III parameters for the Tesla V100 (latencies after Jia et al.).
pub fn v100_params() -> GpuModelParams {
    GpuModelParams {
        device: hetsel_gpusim::tesla_v100(),
        issue_cycles: 1.0,
        departure_del_coal: 2.0,
        departure_del_uncoal: 8.0,
    }
}

/// Parameters for the Tesla P100 (Pascal, between the paper's two
/// generations).
pub fn p100_params() -> GpuModelParams {
    GpuModelParams {
        device: hetsel_gpusim::tesla_p100(),
        issue_cycles: 1.25,
        departure_del_coal: 2.5,
        departure_del_uncoal: 10.0,
    }
}

/// Parameters for the Tesla K80 (Kepler pipeline constants closer to the
/// original Hong–Kim values).
pub fn k80_params() -> GpuModelParams {
    GpuModelParams {
        device: hetsel_gpusim::tesla_k80(),
        issue_cycles: 2.0,
        departure_del_coal: 4.0,
        departure_del_uncoal: 20.0,
    }
}

/// A GPU-side prediction with the model's intermediate quantities exposed
/// (useful for the worked examples and the parameter table binary).
#[derive(Debug, Clone)]
pub struct GpuPrediction {
    /// Predicted region time (kernel + transfers), seconds.
    pub seconds: f64,
    /// Predicted kernel execution time, seconds.
    pub kernel_seconds: f64,
    /// Predicted transfer time (both directions), seconds.
    pub transfer_seconds: f64,
    /// Exec_cycles of Figure 4.
    pub exec_cycles: f64,
    /// Memory-warp parallelism.
    pub mwp: f64,
    /// Compute-warp parallelism.
    pub cwp: f64,
    /// Resident warps per SM (`N`).
    pub n_warps: f64,
    /// Which Figure 4 case fired.
    pub case: HongCase,
    /// `#Rep` (block waves).
    pub rep: f64,
    /// `#OMP_Rep` (paper's extension).
    pub omp_rep: f64,
    /// Dynamic coalesced memory instructions per iteration.
    pub coal_mem_insts: f64,
    /// Dynamic uncoalesced memory instructions per iteration.
    pub uncoal_mem_insts: f64,
    /// Selected geometry.
    pub geometry: Geometry,
    /// Occupancy.
    pub occupancy: Occupancy,
}

/// The three cases of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HongCase {
    /// `MWP == N == CWP`: enough warps, perfectly balanced.
    Balanced,
    /// `CWP > MWP`: memory-bound.
    MemoryBound,
    /// `MWP >= CWP`: compute-bound.
    ComputeBound,
}

/// Aggregated memory census of a kernel's accesses under a coalescing mode:
/// dynamic `#Coal` / `#Uncoal` counts, mean uncoalesced transactions, the
/// weighted static L2-hit estimate, and mean DRAM bytes per warp-access.
struct MemCensus {
    coal: f64,
    uncoal: f64,
    uncoal_txns: f64,
    /// Weighted probability a transaction is served by L2 (the "Access on
    /// L2 Hit" row of Table III in action): static estimate from whether
    /// the accessed array fits in the device's L2.
    l2_hit: f64,
    /// Mean transactions per warp access across all accesses.
    avg_txns: f64,
}

/// One access's precompiled census inputs: sequential loop weights, the
/// thread-dimension stride as bytecode, and the parallel-dimension affine
/// coefficients as bytecode (for the static L2 estimate).
#[derive(Debug, Clone)]
struct CensusAccess {
    /// Non-parallel enclosing loop variables, in nesting order.
    sequential_vars: Vec<LoopVarId>,
    thread_stride: CompiledStride,
    elem_bytes: u32,
    /// Declaration index of the accessed array.
    array: usize,
    /// Per parallel loop (outermost first), the access's affine coefficient
    /// on that loop's variable; `None` when the access is not affine.
    ploop_coeffs: Option<Vec<CompiledExpr>>,
}

/// Predicts the GPU execution time of a kernel (Figures 4–5 with the
/// `#OMP_Rep` extension, coalescing per `coal_mode`).
///
/// ```
/// use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};
/// use hetsel_models::{gpu, v100_params, CoalescingMode, TripMode};
///
/// let mut kb = KernelBuilder::new("sum");
/// let x = kb.array("x", 4, &["n".into()], Transfer::In);
/// let y = kb.array("y", 4, &["n".into()], Transfer::Out);
/// let i = kb.parallel_loop(0, "n");
/// let ld = kb.load(x, &[i.into()]);
/// kb.store(y, &[i.into()], ld);
/// kb.end_loop();
/// let kernel = kb.finish();
///
/// let g = gpu::predict(&kernel, &Binding::new().with("n", 30_000_000),
///                      &v100_params(), TripMode::Runtime, CoalescingMode::Ipda).unwrap();
/// assert!(g.seconds > 0.0);
/// assert!(g.omp_rep > 1.0);            // 30M iterations exceed resident threads
/// assert_eq!(g.uncoal_mem_insts, 0.0); // both accesses are unit-stride
/// ```
pub fn predict(
    kernel: &Kernel,
    binding: &Binding,
    params: &GpuModelParams,
    trip_mode: TripMode,
    coal_mode: CoalescingMode,
) -> Option<GpuPrediction> {
    compile(kernel, params, trip_mode, coal_mode)
        .evaluate(binding)
        .ok()
}

/// The compile-time half of the GPU model: IPDA and the instruction-loadout
/// lowering both run once, here; [`CompiledGpuModel::evaluate`] then only
/// binds trip counts and replays precomputed arithmetic.
pub fn compile(
    kernel: &Kernel,
    params: &GpuModelParams,
    trip_mode: TripMode,
    coal_mode: CoalescingMode,
) -> CompiledGpuModel {
    let _timer = hetsel_obs::static_histogram!("hetsel.models.gpu.compile.ns").start_timer();
    let _span = hetsel_obs::span_with("hetsel.models.gpu.compile", || {
        vec![hetsel_obs::trace::field("kernel", kernel.name.as_str())]
    });
    let info = analyze_cached(kernel);
    let mut symbols = SymbolTable::new();
    let facts = CompiledKernel::compile(kernel, &mut symbols);
    let ctrips = CompiledTrips::compile(kernel, &mut symbols);
    let ploops = kernel.parallel_loops();
    let ploop_vars: Vec<LoopVarId> = ploops.iter().map(|l| l.var).collect();
    let accesses = info
        .accesses
        .iter()
        .map(|a| CensusAccess {
            sequential_vars: a
                .enclosing
                .iter()
                .filter(|(_, parallel)| !*parallel)
                .map(|(v, _)| *v)
                .collect(),
            thread_stride: a.thread_stride.compile(&mut symbols),
            elem_bytes: a.elem_bytes,
            array: a.array.0,
            ploop_coeffs: a.affine.as_ref().map(|aff| {
                ploops
                    .iter()
                    .map(|l| CompiledExpr::compile_poly(&aff.coeff(l.var), &mut symbols))
                    .collect()
            }),
        })
        .collect();
    CompiledGpuModel {
        loadout: compile_loadout(kernel),
        kernel: Arc::new(kernel.clone()),
        params: params.clone(),
        trip_mode,
        coal_mode,
        symbols,
        facts,
        ctrips,
        ploop_vars,
        accesses,
    }
}

/// A kernel's GPU model after the compile phase: the attribute-database
/// entry of the paper's architecture. Holds the partially evaluated
/// instruction loadout plus every IPDA-derived quantity lowered to
/// slot-resolved bytecode; evaluation against a [`Binding`] interns the
/// binding once, resolves strides and trip counts, and composes
/// Figures 4–5 — no string lookups, no `Expr` tree walks.
#[derive(Debug, Clone)]
pub struct CompiledGpuModel {
    /// Shared with the attribute-database record and the region's other
    /// compiled models: one decoded kernel serves them all.
    kernel: Arc<Kernel>,
    params: GpuModelParams,
    trip_mode: TripMode,
    coal_mode: CoalescingMode,
    loadout: CompiledLoadout,
    /// The interner every compiled expression below resolves slots against.
    symbols: SymbolTable,
    /// Parallel-iteration, array-footprint and transfer-volume bytecode.
    facts: CompiledKernel,
    /// Loop-nest trip resolution bytecode.
    ctrips: CompiledTrips,
    /// Parallel loop variables, outermost first.
    ploop_vars: Vec<LoopVarId>,
    /// Per-access census inputs, in access order.
    accesses: Vec<CensusAccess>,
}

impl CompiledGpuModel {
    /// The kernel this model was compiled from.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The runtime half of the model: produces exactly the arithmetic — bit
    /// for bit — of the one-shot [`predict`].
    pub fn evaluate(&self, binding: &Binding) -> Result<GpuPrediction, ModelError> {
        let _timer = hetsel_obs::static_histogram!("hetsel.models.gpu.evaluate.ns").start_timer();
        let _span = hetsel_obs::span_with("hetsel.models.gpu.evaluate", || {
            vec![hetsel_obs::trace::field(
                "kernel",
                self.kernel.name.as_str(),
            )]
        });
        let params = &self.params;
        let dev = &params.device;
        // Resolve every parameter to its dense slot once; everything below
        // replays bytecode against this view — no name lookups.
        let bound = self.symbols.bind(binding);
        let p_iters = self
            .facts
            .parallel_iterations(&bound)
            .ok_or_else(|| ModelError::unresolved(&self.kernel, binding))?;
        if p_iters == 0 {
            return Err(ModelError::ZeroTrip);
        }
        let geometry = select(dev, p_iters);
        let occ = occupancy(dev, &geometry);
        let n = f64::from(occ.warps_per_sm).max(1.0);

        let tc = self.ctrips.resolve(&bound);
        let slots = self.trip_mode.slots(&tc, self.ctrips.n_vars());
        let lo = self.loadout.evaluate_slots(&slots);

        // Instruction loadout: compute vs I/O categories (Section IV.B).
        let mut total_insts = 0.0;
        for k in hetsel_mca::ALL_KINDS {
            let cost = match k {
                OpKind::FDiv | OpKind::FSqrt => 8.0,
                _ => 1.0,
            };
            total_insts += lo.count(k) * cost;
        }
        let mem_insts = lo.mem_insts().max(1.0);

        let resident = (geometry.total_threads() as f64).min(p_iters as f64);
        let c = self.census(&bound, &tc, resident);
        let (coal, uncoal, uncoal_txns) = (c.coal, c.uncoal, c.uncoal_txns);

        // Figure 5 quantities, with the Volta adaptation's L2 blend: a
        // transaction served by L2 has L2 latency and departs at the LSU rate
        // instead of paying the DRAM departure delay.
        let base_l = c.l2_hit * dev.l2_latency_cycles + (1.0 - c.l2_hit) * dev.mem_latency_cycles;
        let txn_departure = c.l2_hit * (1.0 / dev.lsu_txns_per_cycle)
            + (1.0 - c.l2_hit) * params.departure_del_uncoal;
        let mem_l_coal = base_l;
        let mem_l_uncoal = base_l + (uncoal_txns - 1.0) * txn_departure;
        let mem_frac_uncoal = uncoal / (coal + uncoal).max(1.0);
        let mem_l = mem_l_uncoal * mem_frac_uncoal + mem_l_coal * (1.0 - mem_frac_uncoal);
        let departure_delay = txn_departure * uncoal_txns * mem_frac_uncoal
            + params.departure_del_coal * (1.0 - mem_frac_uncoal);
        let mwp_without_bw = (mem_l / departure_delay.max(1.0)).round().max(1.0);

        // Bandwidth-limited MWP: only L2 misses consume DRAM bandwidth.
        let load_bytes_per_warp =
            f64::from(dev.segment_bytes) * c.avg_txns * (1.0 - c.l2_hit).max(0.05);
        let bw_per_warp = dev.clock_ghz * load_bytes_per_warp / mem_l; // GB/s
        let mwp_peak_bw =
            dev.mem_bandwidth_gbs / (bw_per_warp * f64::from(occ.active_sms).max(1.0));
        let mwp = mwp_without_bw.min(mwp_peak_bw).min(n).max(1.0);

        let comp_cycles = params.issue_cycles * total_insts;
        let mem_cycles = mem_l_uncoal * uncoal + mem_l_coal * coal;
        let cwp_full = if comp_cycles > 0.0 {
            (mem_cycles + comp_cycles) / comp_cycles
        } else {
            n
        };
        let cwp = cwp_full.min(n).max(1.0);

        let rep = (geometry.blocks as f64
            / (f64::from(occ.blocks_per_sm).max(1.0) * f64::from(occ.active_sms).max(1.0)))
        .max(1.0);
        let omp_rep = geometry.omp_rep as f64;

        // Figure 4, with the highlighted × #Rep × #OMP_Rep factor.
        let (case, per_rep_cycles) = if (mwp - n).abs() < 1e-9 && (cwp - n).abs() < 1e-9 {
            (
                HongCase::Balanced,
                mem_cycles + comp_cycles + (comp_cycles / mem_insts) * (mwp - 1.0),
            )
        } else if cwp >= mwp {
            (
                HongCase::MemoryBound,
                mem_cycles * n / mwp + (comp_cycles / mem_insts) * (mwp - 1.0),
            )
        } else {
            (HongCase::ComputeBound, mem_l + comp_cycles * n)
        };
        let exec_cycles = per_rep_cycles * rep * omp_rep;
        let kernel_seconds = exec_cycles / (dev.clock_ghz * 1e9);

        let bytes_in =
            self.facts
                .bytes_to_device(&bound)
                .ok_or_else(|| ModelError::unresolved(&self.kernel, binding))? as f64;
        let bytes_out =
            self.facts
                .bytes_from_device(&bound)
                .ok_or_else(|| ModelError::unresolved(&self.kernel, binding))? as f64;
        let transfer = |b: f64| {
            if b <= 0.0 {
                0.0
            } else {
                dev.bus.latency_us * 1e-6 + b / (dev.bus.bandwidth_gbs * 1e9)
            }
        };
        let transfer_seconds = transfer(bytes_in) + transfer(bytes_out);

        Ok(GpuPrediction {
            seconds: kernel_seconds + transfer_seconds + dev.launch_overhead_us * 1e-6,
            kernel_seconds,
            transfer_seconds,
            exec_cycles,
            mwp,
            cwp,
            n_warps: n,
            case,
            rep,
            omp_rep,
            coal_mem_insts: coal,
            uncoal_mem_insts: uncoal,
            geometry,
            occupancy: occ,
        })
    }

    /// Aggregated memory census under the configured coalescing mode, from
    /// the precompiled per-access inputs.
    fn census(&self, bound: &BoundParams, tc: &TripCounts, resident_threads: f64) -> MemCensus {
        let seg = self.params.device.segment_bytes;
        let mut coal = 0.0;
        let mut uncoal = 0.0;
        let mut uncoal_txn_sum = 0.0;
        let mut hit_sum = 0.0;
        let mut txn_sum = 0.0;
        let mut total = 0.0;
        for a in &self.accesses {
            let mut weight = 1.0;
            for v in &a.sequential_vars {
                weight *= match self.trip_mode {
                    TripMode::Assume128 => 128.0,
                    TripMode::Runtime => tc.get(*v).max(0.0),
                };
            }
            if weight == 0.0 {
                continue;
            }
            let (is_coal, txns) = match self.coal_mode {
                CoalescingMode::AssumeCoalesced => (true, 1.0),
                CoalescingMode::AssumeUncoalesced => (false, 32.0),
                CoalescingMode::Ipda => match a.thread_stride.resolve(bound) {
                    Some(s) => (
                        hetsel_ipda::is_coalesced(s, a.elem_bytes, seg),
                        f64::from(hetsel_ipda::transactions_per_warp(s, a.elem_bytes, seg)),
                    ),
                    None => (false, 32.0),
                },
            };
            let hit = self.static_l2_hit(a, bound, tc, resident_threads);
            if is_coal {
                coal += weight;
            } else {
                uncoal += weight;
                uncoal_txn_sum += weight * txns;
            }
            hit_sum += weight * hit;
            txn_sum += weight * txns;
            total += weight;
        }
        MemCensus {
            coal,
            uncoal,
            uncoal_txns: if uncoal > 0.0 {
                uncoal_txn_sum / uncoal
            } else {
                32.0
            },
            l2_hit: if total > 0.0 { hit_sum / total } else { 0.0 },
            avg_txns: if total > 0.0 { txn_sum / total } else { 1.0 },
        }
    }

    /// Static L2-hit estimate for one access — the paper's stated
    /// future-work direction ("improved representation of the memory
    /// hierarchy impacts is a sure way to improve prediction efficacy"),
    /// realised with the same symbolic machinery IPDA already provides: from
    /// the access's coefficients on the parallel dimensions and the resident
    /// thread population, compute the distinct bytes the device touches per
    /// lockstep step; if that concurrent footprint fits in L2, repeated
    /// touches hit.
    fn static_l2_hit(
        &self,
        a: &CensusAccess,
        bound: &BoundParams,
        tc: &TripCounts,
        resident_threads: f64,
    ) -> f64 {
        let dev = &self.params.device;
        let l2 = dev.l2_bytes as f64;
        let array_bytes = self.facts.array_bytes(a.array, bound).unwrap_or(u64::MAX) as f64;
        if array_bytes <= l2 {
            return 0.95;
        }
        let Some(coeffs) = &a.ploop_coeffs else {
            return 0.0;
        };
        // Coverage of each parallel dimension by the resident threads
        // (innermost dimension fills first, matching the thread-id mapping).
        let n_dims = coeffs.len();
        let mut remaining = resident_threads;
        let mut distinct = 1.0;
        let mut innermost_unit = true;
        for idx in (0..n_dims).rev() {
            let t = tc.get(self.ploop_vars[idx]).max(1.0);
            let cover = remaining.min(t).max(1.0);
            remaining = (remaining / t).ceil().max(1.0);
            let coeff = coeffs[idx].eval_closed(bound).unwrap_or(1);
            if coeff != 0 {
                distinct *= cover;
            }
            if idx == n_dims - 1 {
                innermost_unit = coeff.abs() <= 1;
            }
        }
        let granule = if innermost_unit {
            f64::from(a.elem_bytes)
        } else {
            f64::from(dev.segment_bytes)
        };
        let footprint = distinct * granule;
        if footprint * 2.0 <= l2 {
            // Comfortably resident: essentially every repeat touch hits.
            0.95
        } else {
            (0.45 * l2 / footprint).min(0.85)
        }
    }
}

hetsel_ir::snap_unit_enum!(CoalescingMode {
    0 => Ipda,
    1 => AssumeUncoalesced,
    2 => AssumeCoalesced,
});

// `GpuDescriptor` / `BusDescriptor` live in hetsel-gpusim, which has no
// hetsel-ir dependency, so the orphan rule forbids implementing `Snap` there
// or here for them directly. Both are all-pub parameter sheets; serialize
// them field by field inside the `GpuModelParams` impl instead.
impl hetsel_ir::Snap for GpuModelParams {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        let d = &self.device;
        d.name.snap(w);
        w.put_u32(d.num_sms);
        w.put_u32(d.cores_per_sm);
        w.put_u32(d.schedulers_per_sm);
        w.put_f64(d.clock_ghz);
        w.put_f64(d.mem_bandwidth_gbs);
        w.put_f64(d.mem_latency_cycles);
        w.put_u64(d.l2_bytes);
        w.put_f64(d.l2_latency_cycles);
        w.put_u32(d.segment_bytes);
        w.put_f64(d.lsu_txns_per_cycle);
        w.put_u32(d.max_warps_per_sm);
        w.put_u32(d.max_blocks_per_sm);
        w.put_f64(d.issue_rate);
        w.put_f64(d.div_issue_slots);
        w.put_f64(d.launch_overhead_us);
        d.bus.name.snap(w);
        w.put_f64(d.bus.latency_us);
        w.put_f64(d.bus.bandwidth_gbs);
        w.put_f64(self.issue_cycles);
        w.put_f64(self.departure_del_coal);
        w.put_f64(self.departure_del_uncoal);
    }

    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        let device = hetsel_gpusim::GpuDescriptor {
            name: <&'static str>::unsnap(r)?,
            num_sms: r.get_u32()?,
            cores_per_sm: r.get_u32()?,
            schedulers_per_sm: r.get_u32()?,
            clock_ghz: r.get_f64()?,
            mem_bandwidth_gbs: r.get_f64()?,
            mem_latency_cycles: r.get_f64()?,
            l2_bytes: r.get_u64()?,
            l2_latency_cycles: r.get_f64()?,
            segment_bytes: r.get_u32()?,
            lsu_txns_per_cycle: r.get_f64()?,
            max_warps_per_sm: r.get_u32()?,
            max_blocks_per_sm: r.get_u32()?,
            issue_rate: r.get_f64()?,
            div_issue_slots: r.get_f64()?,
            launch_overhead_us: r.get_f64()?,
            bus: hetsel_gpusim::BusDescriptor {
                name: <&'static str>::unsnap(r)?,
                latency_us: r.get_f64()?,
                bandwidth_gbs: r.get_f64()?,
            },
        };
        Ok(GpuModelParams {
            device,
            issue_cycles: r.get_f64()?,
            departure_del_coal: r.get_f64()?,
            departure_del_uncoal: r.get_f64()?,
        })
    }
}

hetsel_ir::snap_struct!(CensusAccess {
    sequential_vars,
    thread_stride,
    elem_bytes,
    array,
    ploop_coeffs,
});

impl CompiledGpuModel {
    /// Serializes everything *except* the kernel. The snapshot container
    /// stores one kernel per region and shares it across that region's
    /// compiled models (this matters most for multi-accelerator fleets,
    /// which carry one `CompiledGpuModel` per device);
    /// [`CompiledGpuModel::unsnap_body`] reattaches the region's shared
    /// copy.
    pub fn snap_body(&self, w: &mut hetsel_ir::SnapWriter) {
        use hetsel_ir::Snap;
        self.params.snap(w);
        self.trip_mode.snap(w);
        self.coal_mode.snap(w);
        self.loadout.snap(w);
        self.symbols.snap(w);
        self.facts.snap(w);
        self.ctrips.snap(w);
        self.ploop_vars.snap(w);
        self.accesses.snap(w);
    }

    /// Decodes a [`CompiledGpuModel::snap_body`] encoding, adopting `kernel`
    /// as the model's (shared) kernel.
    pub fn unsnap_body(
        kernel: Arc<Kernel>,
        r: &mut hetsel_ir::SnapReader<'_>,
    ) -> Result<CompiledGpuModel, hetsel_ir::SnapError> {
        use hetsel_ir::Snap;
        Ok(CompiledGpuModel {
            kernel,
            params: GpuModelParams::unsnap(r)?,
            trip_mode: TripMode::unsnap(r)?,
            coal_mode: CoalescingMode::unsnap(r)?,
            loadout: CompiledLoadout::unsnap(r)?,
            symbols: SymbolTable::unsnap(r)?,
            facts: CompiledKernel::unsnap(r)?,
            ctrips: CompiledTrips::unsnap(r)?,
            ploop_vars: Vec::<LoopVarId>::unsnap(r)?,
            accesses: Vec::<CensusAccess>::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{find_kernel, Dataset};

    fn pred(name: &str, ds: Dataset, p: &GpuModelParams) -> GpuPrediction {
        let (k, binding) = find_kernel(name).unwrap();
        predict(&k, &binding(ds), p, TripMode::Runtime, CoalescingMode::Ipda).unwrap()
    }

    #[test]
    fn mwp_cwp_within_bounds() {
        for name in ["gemm", "2dconv", "3dconv", "atax.k1", "syrk", "corr.corr"] {
            for ds in [Dataset::Test, Dataset::Benchmark] {
                let g = pred(name, ds, &v100_params());
                assert!(g.mwp >= 1.0 && g.mwp <= g.n_warps, "{name}: mwp {}", g.mwp);
                assert!(g.cwp >= 1.0 && g.cwp <= g.n_warps, "{name}: cwp {}", g.cwp);
                assert!(g.exec_cycles > 0.0);
            }
        }
    }

    #[test]
    fn paper_omp_rep_in_play_for_large_grids() {
        let g = pred("gemm", Dataset::Benchmark, &v100_params());
        assert!(g.omp_rep > 1.0);
        let t = pred("gemm", Dataset::Test, &v100_params());
        assert!(t.omp_rep >= 1.0);
        assert!(g.omp_rep > t.omp_rep);
    }

    #[test]
    fn ipda_separates_coalesced_from_uncoalesced() {
        // atax.k1: A row-walk is uncoalesced; atax.k2: coalesced.
        let k1 = pred("atax.k1", Dataset::Test, &v100_params());
        let k2 = pred("atax.k2", Dataset::Test, &v100_params());
        assert!(k1.uncoal_mem_insts > 0.0);
        assert!(k2.uncoal_mem_insts < k1.uncoal_mem_insts);
        assert!(k1.seconds > k2.seconds);
    }

    #[test]
    fn coalescing_ablation_ordering() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        let p = v100_params();
        let ipda = predict(&k, &b, &p, TripMode::Runtime, CoalescingMode::Ipda).unwrap();
        let unc = predict(
            &k,
            &b,
            &p,
            TripMode::Runtime,
            CoalescingMode::AssumeUncoalesced,
        )
        .unwrap();
        let co = predict(
            &k,
            &b,
            &p,
            TripMode::Runtime,
            CoalescingMode::AssumeCoalesced,
        )
        .unwrap();
        assert!(co.kernel_seconds <= ipda.kernel_seconds + 1e-12);
        assert!(ipda.kernel_seconds <= unc.kernel_seconds + 1e-12);
    }

    #[test]
    fn memory_bound_kernel_classified() {
        let g = pred("2dconv", Dataset::Benchmark, &v100_params());
        assert!(
            matches!(g.case, HongCase::MemoryBound | HongCase::Balanced),
            "{:?}",
            g.case
        );
    }

    #[test]
    fn v100_predicts_faster_than_k80() {
        for name in ["gemm", "2dconv", "atax.k2"] {
            let v = pred(name, Dataset::Benchmark, &v100_params());
            let k = pred(name, Dataset::Benchmark, &k80_params());
            assert!(
                v.seconds < k.seconds,
                "{name}: v100 {} k80 {}",
                v.seconds,
                k.seconds
            );
        }
    }

    #[test]
    fn transfer_included_and_positive() {
        let g = pred("gemm", Dataset::Test, &v100_params());
        assert!(g.transfer_seconds > 0.0);
        assert!(g.seconds > g.kernel_seconds);
    }

    #[test]
    fn assume128_mode_shrinks_inner_loop_work() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Benchmark);
        let p = v100_params();
        let m128 = predict(&k, &b, &p, TripMode::Assume128, CoalescingMode::Ipda).unwrap();
        let mrt = predict(&k, &b, &p, TripMode::Runtime, CoalescingMode::Ipda).unwrap();
        assert!(mrt.kernel_seconds > m128.kernel_seconds * 10.0);
    }

    #[test]
    fn unresolved_binding_is_none() {
        let (k, _) = find_kernel("gemm").unwrap();
        assert!(predict(
            &k,
            &Binding::new(),
            &v100_params(),
            TripMode::Runtime,
            CoalescingMode::Ipda
        )
        .is_none());
    }
}
