//! Trip-count abstraction modes.
//!
//! The paper's static analysis "assumes that all loops execute 128
//! iterations and all conditional blocks execute half of the time"; the
//! hybrid runtime can instead bind real trip counts from the program
//! attribute database. Both modes are first-class here so the ablation
//! benches can quantify what the abstraction costs.

use hetsel_ir::{trips::TripCounts, Loop, TripSlots};

/// How inner-loop trip counts are resolved during model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripMode {
    /// The paper's static abstraction: every sequential loop runs 128
    /// iterations.
    Assume128,
    /// The hybrid mode: real trip counts from the runtime binding.
    Runtime,
}

impl TripMode {
    /// Builds the trip oracle for this mode over resolved counts.
    pub fn trip_fn<'a>(self, tc: &'a TripCounts) -> Box<dyn Fn(&Loop) -> f64 + 'a> {
        match self {
            TripMode::Assume128 => Box::new(|_: &Loop| 128.0),
            TripMode::Runtime => Box::new(move |l: &Loop| tc.of(l)),
        }
    }

    /// Dense-slot equivalent of [`TripMode::trip_fn`]: one `f64` per loop
    /// variable, indexable without boxing a closure. `slots.get(l.var)`
    /// equals `trip_fn(tc)(&l)` for every loop variable below `n_vars`.
    pub fn slots(self, tc: &TripCounts, n_vars: usize) -> TripSlots {
        match self {
            TripMode::Assume128 => TripSlots::uniform(n_vars, 128.0),
            TripMode::Runtime => tc.dense(n_vars),
        }
    }
}

hetsel_ir::snap_unit_enum!(TripMode {
    0 => Assume128,
    1 => Runtime,
});

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};

    #[test]
    fn modes_differ_on_real_counts() {
        let mut kb = KernelBuilder::new("t");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[j.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(a, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        let tc = hetsel_ir::trips::resolve(&k, &Binding::new().with("n", 1000));
        let inner = match &k.parallel_body()[1] {
            hetsel_ir::Stmt::For(l, _) => l.clone(),
            _ => panic!(),
        };
        assert_eq!((TripMode::Assume128.trip_fn(&tc))(&inner), 128.0);
        assert_eq!((TripMode::Runtime.trip_fn(&tc))(&inner), 1000.0);
    }
}
