//! Typed model-evaluation errors.
//!
//! The original prediction entry points returned `Option`: a `None` collapsed
//! "a parameter the runtime never bound", "an empty iteration space" and
//! "a shape the analysis cannot handle" into one indistinguishable case, and
//! the selector silently fell back to offloading. The selector's fallback
//! behaviour is part of the paper's story (unresolvable regions are offloaded,
//! Section V), so the *reason* for a fallback deserves to be recorded:
//! [`ModelError`] carries it through the decision path.

use std::fmt;

use hetsel_ir::{Binding, Kernel};

/// Why a compiled model could not produce a prediction for a binding.
///
/// Marked `#[non_exhaustive]`: new failure reasons are added as the decision
/// runtime grows (deadline budgets arrived this way), so downstream matches
/// must carry a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A symbolic parameter required by the kernel (an array extent or loop
    /// bound) is missing from the runtime binding.
    UnboundSymbol {
        /// The parameter name, e.g. `"n"`.
        name: String,
    },
    /// The parallel iteration space is empty: there is nothing to execute,
    /// so a time prediction is meaningless on either device.
    ZeroTrip,
    /// The host model was asked to predict for zero OpenMP threads.
    ZeroThreads,
    /// The kernel resolves, but some symbolic quantity in it does not close
    /// to a value the analysis can use.
    UnsupportedShape {
        /// Human-readable description of what failed to close.
        reason: String,
    },
    /// The model evaluated, but the resulting time is not a usable number:
    /// NaN, an infinity, or negative. A prediction like this must not be
    /// compared (`NaN < x` is false for every `x`, which would silently
    /// select the host) — the selector treats it as a model failure and
    /// keeps the compiler default of offloading.
    NonFinitePrediction {
        /// The offending value, rendered (`"NaN"`, `"inf"`, `"-0.003"`).
        value: String,
    },
    /// The decision's time budget ran out before the models could answer.
    /// Nothing is wrong with the models — the caller asked for an answer
    /// faster than one could be produced, and the selector degraded to the
    /// compiler default of offloading.
    DeadlineExceeded,
}

impl ModelError {
    /// Stable dotted suffix naming this variant in telemetry: fallback
    /// decisions are counted per reason under
    /// `hetsel.core.fallback.<metric_key>`.
    pub fn metric_key(&self) -> &'static str {
        match self {
            ModelError::UnboundSymbol { .. } => "unbound_symbol",
            ModelError::ZeroTrip => "zero_trip",
            ModelError::ZeroThreads => "zero_threads",
            ModelError::UnsupportedShape { .. } => "unsupported_shape",
            ModelError::NonFinitePrediction { .. } => "non_finite_prediction",
            ModelError::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// Wraps a predicted time that is not a usable number (NaN, ±∞ or
    /// negative). The value is rendered with `f64`'s `Display`, which is
    /// deterministic, so decisions carrying this error stay bit-for-bit
    /// cacheable.
    pub fn non_finite(value: f64) -> ModelError {
        ModelError::NonFinitePrediction {
            value: value.to_string(),
        }
    }

    /// True iff `seconds` is a prediction the selector may compare: finite
    /// and non-negative.
    pub fn usable_time(seconds: f64) -> bool {
        seconds.is_finite() && seconds >= 0.0
    }

    /// Classifies a failed symbolic resolution against `binding`: names the
    /// first kernel parameter the binding does not cover, or falls back to
    /// [`ModelError::UnsupportedShape`] when every parameter is bound (the
    /// failure is then structural, e.g. a division by a zero-valued bound).
    pub fn unresolved(kernel: &Kernel, binding: &Binding) -> ModelError {
        for name in kernel.params() {
            if binding.get(&name).is_none() {
                return ModelError::UnboundSymbol { name };
            }
        }
        ModelError::UnsupportedShape {
            reason: format!(
                "a symbolic quantity of `{}` did not resolve to a value",
                kernel.name
            ),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnboundSymbol { name } => {
                write!(f, "parameter `{name}` is not bound at runtime")
            }
            ModelError::ZeroTrip => write!(f, "parallel iteration space is empty"),
            ModelError::ZeroThreads => write!(f, "zero host threads requested"),
            ModelError::UnsupportedShape { reason } => {
                write!(f, "unsupported kernel shape: {reason}")
            }
            ModelError::NonFinitePrediction { value } => {
                write!(f, "model produced an unusable predicted time: {value}")
            }
            ModelError::DeadlineExceeded => {
                write!(f, "decision deadline expired before the models answered")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::Binding;
    use hetsel_polybench::find_kernel;

    #[test]
    fn unresolved_names_the_missing_parameter() {
        let (k, _) = find_kernel("gemm").unwrap();
        match ModelError::unresolved(&k, &Binding::new()) {
            ModelError::UnboundSymbol { name } => {
                assert!(k.params().contains(&name), "{name} not a gemm parameter")
            }
            other => panic!("expected UnboundSymbol, got {other:?}"),
        }
    }

    #[test]
    fn fully_bound_kernel_reports_unsupported_shape() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(hetsel_polybench::Dataset::Test);
        assert!(matches!(
            ModelError::unresolved(&k, &b),
            ModelError::UnsupportedShape { .. }
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = ModelError::UnboundSymbol { name: "n".into() };
        assert!(e.to_string().contains("`n`"));
        assert!(ModelError::ZeroTrip.to_string().contains("empty"));
        assert!(ModelError::non_finite(f64::NAN).to_string().contains("NaN"));
    }

    #[test]
    fn usable_time_classification() {
        assert!(ModelError::usable_time(0.0));
        assert!(ModelError::usable_time(1.5e-3));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -1e-300] {
            assert!(!ModelError::usable_time(bad), "{bad} accepted");
        }
    }

    #[test]
    fn non_finite_renders_deterministically() {
        assert_eq!(
            ModelError::non_finite(f64::NAN),
            ModelError::non_finite(f64::NAN)
        );
        match ModelError::non_finite(f64::INFINITY) {
            ModelError::NonFinitePrediction { value } => assert_eq!(value, "inf"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
