//! # hetsel-models — the paper's analytical performance models
//!
//! The two hybrid analytical models at the heart of the framework:
//!
//! * [`cpu`] — Liao & Chapman's compile-time OpenMP cost model (Figure 3 of
//!   the paper), its `Machine_cycles_per_iter` term supplied by the
//!   `hetsel-mca` scheduler analysis and its constants by Table II;
//! * [`gpu`] — Hong & Kim's MWP/CWP GPU model (Figures 4–5), adapted to the
//!   Tesla K80 and V100 (Table III), extended with the paper's `#OMP_Rep`
//!   factor and with memory-coalescing inputs from the IPDA symbolic
//!   analysis resolved at runtime.
//!
//! Both models are *hybrid*: their skeletons are built statically and
//! completed by a runtime [`hetsel_ir::Binding`] — the design the paper
//! argues makes the decision cost negligible compared to ML inference.
//! Both also share the originals' stated abstractions (no cache hierarchy,
//! 128-iteration trip-count assumption as [`TripMode::Assume128`]), kept
//! deliberately so that model-vs-simulator error reproduces the paper's
//! error structure.

#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod trip;

pub use cpu::{power8_params, power9_params, CpuModelParams, CpuPrediction};
pub use gpu::{k80_params, p100_params, v100_params, CoalescingMode, GpuModelParams, GpuPrediction, HongCase};
pub use trip::TripMode;
