//! # hetsel-models — the paper's analytical performance models
//!
//! The two hybrid analytical models at the heart of the framework:
//!
//! * [`cpu`] — Liao & Chapman's compile-time OpenMP cost model (Figure 3 of
//!   the paper), its `Machine_cycles_per_iter` term supplied by the
//!   `hetsel-mca` scheduler analysis and its constants by Table II;
//! * [`gpu`] — Hong & Kim's MWP/CWP GPU model (Figures 4–5), adapted to the
//!   Tesla K80 and V100 (Table III), extended with the paper's `#OMP_Rep`
//!   factor and with memory-coalescing inputs from the IPDA symbolic
//!   analysis resolved at runtime.
//!
//! Both models are *hybrid*: their skeletons are built statically and
//! completed by a runtime [`hetsel_ir::Binding`] — the design the paper
//! argues makes the decision cost negligible compared to ML inference.
//! Both also share the originals' stated abstractions (no cache hierarchy,
//! 128-iteration trip-count assumption as [`TripMode::Assume128`]), kept
//! deliberately so that model-vs-simulator error reproduces the paper's
//! error structure.
//!
//! The two-phase split is realised by the [`engine`] traits: a
//! [`CostModel`] compiles a kernel once into a [`CompiledModel`]
//! (attribute-database entry), which is then evaluated per runtime binding.
//! The legacy free functions [`cpu::predict`] / [`gpu::predict`] are thin
//! wrappers over compile-then-evaluate, so both paths are identical bit for
//! bit. Evaluation failures are typed [`ModelError`]s, not silent `None`s.

#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod error;
pub mod gpu;
pub mod trip;

pub use cpu::{power8_params, power9_params, CompiledCpuModel, CpuModelParams, CpuPrediction};
pub use engine::{CompiledModel, CostModel, CpuCostModel, GpuCostModel, Prediction};
pub use error::ModelError;
pub use gpu::{
    k80_params, p100_params, v100_params, CoalescingMode, CompiledGpuModel, GpuModelParams,
    GpuPrediction, HongCase,
};
pub use trip::TripMode;
