//! The trait-based decision engine: compile once, evaluate per binding.
//!
//! The paper's hybrid analysis splits model evaluation into two phases
//! (Section III): at *compile time* every expensive analysis — MCA
//! scheduling, IPDA symbolic strides, instruction lowering — runs once per
//! kernel and lands in the program attribute database; at *runtime* the
//! stored model is merely **bound** to the values the runtime knows (array
//! extents, trip counts) and evaluated, so "the runtime overhead introduced
//! by the model evaluation is negligible".
//!
//! [`CostModel`] is the compile phase: a model configuration (parameters +
//! modes) that [`CostModel::compile`]s a kernel into its attribute-database
//! entry. [`CompiledModel`] is the runtime phase: evaluation against a
//! [`Binding`], returning either a device-comparable [`Prediction`] or a
//! typed [`ModelError`] explaining why the region must fall back to the
//! selector's default device.
//!
//! The compiled types also expose inherent `evaluate` methods returning the
//! full per-model predictions ([`CpuPrediction`](crate::cpu::CpuPrediction),
//! [`GpuPrediction`](crate::gpu::GpuPrediction)) with every intermediate
//! quantity; the trait method projects those onto the common summary. Both
//! run the identical arithmetic.

use hetsel_ir::{Binding, Kernel};

use crate::cpu::{self, CompiledCpuModel, CpuModelParams};
use crate::error::ModelError;
use crate::gpu::{self, CoalescingMode, CompiledGpuModel, GpuModelParams};
use crate::trip::TripMode;

/// The device-agnostic summary of a model evaluation: what the selector
/// needs to compare devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted wall time for the region on this device, seconds —
    /// including transfers and launch overheads where they apply.
    pub seconds: f64,
    /// Predicted execution time excluding data movement, seconds.
    pub kernel_seconds: f64,
    /// Predicted data-movement time, seconds (zero for the host).
    pub transfer_seconds: f64,
}

/// A model configuration that can be compiled against a kernel: the
/// compile-time phase of the paper's hybrid analysis. Implementations run
/// *all* symbolic and scheduling work in [`compile`](CostModel::compile);
/// the result is cheap to evaluate repeatedly.
pub trait CostModel {
    /// The attribute-database entry this model produces.
    type Compiled: CompiledModel;

    /// Runs the compile-time analyses for `kernel` and packages them.
    fn compile(&self, kernel: &Kernel) -> Self::Compiled;
}

/// A compiled, kernel-specific model: the runtime phase. Evaluation binds
/// runtime values and replays precomputed arithmetic.
pub trait CompiledModel {
    /// The name of the region this model was compiled for.
    fn region(&self) -> &str;

    /// Evaluates the model under `binding`. An `Err` explains why no
    /// prediction is possible — the selector records it and falls back.
    fn evaluate(&self, binding: &Binding) -> Result<Prediction, ModelError>;
}

/// Configuration of the host-side (Liao/Chapman) model: Table II parameters
/// plus the thread count and trip-count mode to predict for.
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    /// Table II parameters.
    pub params: CpuModelParams,
    /// OpenMP threads the prediction assumes.
    pub threads: u32,
    /// Trip-count abstraction.
    pub trip_mode: TripMode,
}

impl CostModel for CpuCostModel {
    type Compiled = CompiledCpuModel;

    fn compile(&self, kernel: &Kernel) -> CompiledCpuModel {
        cpu::compile(kernel, &self.params, self.threads, self.trip_mode)
    }
}

impl CompiledModel for CompiledCpuModel {
    fn region(&self) -> &str {
        &self.kernel().name
    }

    fn evaluate(&self, binding: &Binding) -> Result<Prediction, ModelError> {
        CompiledCpuModel::evaluate(self, binding).map(|p| Prediction {
            seconds: p.seconds,
            kernel_seconds: p.seconds,
            transfer_seconds: 0.0,
        })
    }
}

/// Configuration of the device-side (Hong–Kim + `#OMP_Rep`) model: Table III
/// parameters plus the trip-count and coalescing modes.
#[derive(Debug, Clone)]
pub struct GpuCostModel {
    /// Device sheet and pipeline constants.
    pub params: GpuModelParams,
    /// Trip-count abstraction.
    pub trip_mode: TripMode,
    /// How memory accesses are classified.
    pub coal_mode: CoalescingMode,
}

impl CostModel for GpuCostModel {
    type Compiled = CompiledGpuModel;

    fn compile(&self, kernel: &Kernel) -> CompiledGpuModel {
        gpu::compile(kernel, &self.params, self.trip_mode, self.coal_mode)
    }
}

impl CompiledModel for CompiledGpuModel {
    fn region(&self) -> &str {
        &self.kernel().name
    }

    fn evaluate(&self, binding: &Binding) -> Result<Prediction, ModelError> {
        CompiledGpuModel::evaluate(self, binding).map(|p| Prediction {
            seconds: p.seconds,
            kernel_seconds: p.kernel_seconds,
            transfer_seconds: p.transfer_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{power9_params, v100_params};
    use hetsel_polybench::{find_kernel, Dataset};

    fn models() -> (CpuCostModel, GpuCostModel) {
        (
            CpuCostModel {
                params: power9_params(),
                threads: 160,
                trip_mode: TripMode::Runtime,
            },
            GpuCostModel {
                params: v100_params(),
                trip_mode: TripMode::Runtime,
                coal_mode: CoalescingMode::Ipda,
            },
        )
    }

    #[test]
    fn trait_evaluation_matches_one_shot_predict() {
        let (cpu_m, gpu_m) = models();
        for name in ["gemm", "atax.k2", "3dconv", "corr.corr"] {
            let (k, binding) = find_kernel(name).unwrap();
            let b = binding(Dataset::Test);
            let cc = cpu_m.compile(&k);
            let cg = gpu_m.compile(&k);
            assert_eq!(CompiledModel::region(&cc), name);
            assert_eq!(CompiledModel::region(&cg), name);
            let pc = CompiledModel::evaluate(&cc, &b).unwrap();
            let pg = CompiledModel::evaluate(&cg, &b).unwrap();
            let oc = cpu::predict(&k, &b, &power9_params(), 160, TripMode::Runtime).unwrap();
            let og = gpu::predict(
                &k,
                &b,
                &v100_params(),
                TripMode::Runtime,
                CoalescingMode::Ipda,
            )
            .unwrap();
            assert_eq!(pc.seconds.to_bits(), oc.seconds.to_bits(), "{name} cpu");
            assert_eq!(pg.seconds.to_bits(), og.seconds.to_bits(), "{name} gpu");
            assert_eq!(
                pg.transfer_seconds.to_bits(),
                og.transfer_seconds.to_bits(),
                "{name} transfer"
            );
        }
    }

    #[test]
    fn errors_carry_the_reason() {
        let (cpu_m, gpu_m) = models();
        let (k, _) = find_kernel("gemm").unwrap();
        let empty = Binding::new();
        let cc = cpu_m.compile(&k);
        let cg = gpu_m.compile(&k);
        assert!(matches!(
            CompiledModel::evaluate(&cc, &empty),
            Err(ModelError::UnboundSymbol { .. })
        ));
        assert!(matches!(
            CompiledModel::evaluate(&cg, &empty),
            Err(ModelError::UnboundSymbol { .. })
        ));
        let zero_threads = CpuCostModel {
            threads: 0,
            ..cpu_m
        };
        let (_, binding) = find_kernel("gemm").unwrap();
        assert_eq!(
            CompiledModel::evaluate(&zero_threads.compile(&k), &binding(Dataset::Test)),
            Err(ModelError::ZeroThreads)
        );
    }
}
