//! The analytical CPU model: Liao & Chapman's compile-time OpenMP cost
//! model (paper Figure 3) with `Machine_cycles_per_iter` supplied by the
//! MCA engine (paper Section IV.A.1).
//!
//! ```text
//! Parallel_region = Fork + Σ_j max_i(Thread_exe_ij) + Join
//! Parallel_for    = Schedule_times × (Schedule + Loop_chunk)
//! Loop_chunk      = Machine_cycles_per_iter × Chunk_size
//!                   + Cache_cost + Loop_overhead
//! ```
//!
//! Like the original, the model has **no cache hierarchy**: loads cost the
//! flat L1 latency inside the MCA analysis, and the only memory-system term
//! is the TLB estimate (Table II: 1024 entries, 14-cycle penalty). This is
//! the limitation the paper calls "a primary future work direction", and it
//! is the main source of CPU-side prediction error against the simulator.

use crate::error::ModelError;
use crate::trip::TripMode;
use hetsel_ipda::{analyze_cached, CompiledAssess, CompiledStride};
use hetsel_ir::{
    Binding, BoundParams, CompiledKernel, CompiledTrips, Kernel, LoopVarId, SymbolTable, TripSlots,
};
use hetsel_mca::{compile_parallel_iter_cycles, CompiledCycles, CoreDescriptor};
use std::sync::Arc;

/// CPU model parameters (paper Table II).
#[derive(Debug, Clone)]
pub struct CpuModelParams {
    /// Host name.
    pub name: &'static str,
    /// CPU frequency, GHz (Table II: 3 GHz).
    pub freq_ghz: f64,
    /// TLB entries (Table II: 1024).
    pub tlb_entries: u32,
    /// TLB miss penalty, cycles (Table II: 14).
    pub tlb_miss_penalty: f64,
    /// Page size, bytes.
    pub page_bytes: u64,
    /// `Loop_overhead_per_iter`, cycles (Table II: 4).
    pub loop_overhead_per_iter: f64,
    /// `Par_Schedule_Overhead_static`, cycles (Table II: 10154).
    pub schedule_overhead_static: f64,
    /// `Synchronization_Overhead`, cycles (Table II: 4000).
    pub synchronization_overhead: f64,
    /// `Par_Startup` (fork), cycles (Table II: 3000).
    pub par_startup: f64,
    /// Fork/join scaling with thread count, cycles per thread (EPCC-style
    /// measurement on the simulated host; complements Table II's flat
    /// constants, which were measured at a fixed thread count).
    pub fork_per_thread: f64,
    /// Physical cores (for the model's crude SMT abstraction).
    pub cores: u32,
    /// The model's SMT abstraction: threads beyond `cores × smt_benefit`
    /// add nothing (the real machine's curve is richer — model error).
    pub smt_benefit: f64,
    /// Compiler unroll factor assumed when analysing the loop schedule.
    pub unroll: f64,
    /// MCA core descriptor the machine-code analysis runs against.
    pub core: CoreDescriptor,
    /// Whether the model credits outer-loop vectorisation (POWER9).
    pub outer_loop_vectorization: bool,
}

/// Table II parameters for the POWER9 host.
pub fn power9_params() -> CpuModelParams {
    CpuModelParams {
        name: "POWER9",
        freq_ghz: 3.0,
        tlb_entries: 1024,
        tlb_miss_penalty: 14.0,
        page_bytes: 64 * 1024,
        loop_overhead_per_iter: 4.0,
        schedule_overhead_static: 10154.0,
        synchronization_overhead: 4000.0,
        par_startup: 3000.0,
        fork_per_thread: 24_000.0,
        cores: 20,
        smt_benefit: 2.0,
        unroll: 4.0,
        core: hetsel_mca::power9(),
        outer_loop_vectorization: true,
    }
}

/// Table II-style parameters for the POWER8 host.
pub fn power8_params() -> CpuModelParams {
    CpuModelParams {
        name: "POWER8",
        freq_ghz: 3.0,
        tlb_entries: 1024,
        tlb_miss_penalty: 14.0,
        page_bytes: 64 * 1024,
        loop_overhead_per_iter: 4.0,
        schedule_overhead_static: 10154.0,
        synchronization_overhead: 4000.0,
        par_startup: 3000.0,
        fork_per_thread: 24_000.0,
        cores: 20,
        smt_benefit: 2.0,
        unroll: 4.0,
        core: hetsel_mca::power8(),
        outer_loop_vectorization: false,
    }
}

/// A CPU-side runtime prediction with its intermediate quantities — the
/// terms of Figure 3, exposed so the composition is auditable.
#[derive(Debug, Clone)]
pub struct CpuPrediction {
    /// Predicted region time, seconds.
    pub seconds: f64,
    /// Predicted region cycles (one thread's critical path + overheads).
    pub cycles: f64,
    /// `Machine_cycles_per_iter` from the MCA analysis (post-schedule).
    pub machine_cycles_per_iter: f64,
    /// Static chunk size (iterations per thread).
    pub chunk: u64,
    /// TLB cost per chunk, cycles.
    pub cache_cost: f64,
    /// SIMD factor the model credited.
    pub vector_factor: f64,
    /// Figure 3 `Fork_c`: startup plus per-thread fork/join scaling.
    pub fork_cycles: f64,
    /// Figure 3 `Schedule_c` (static dispatch).
    pub schedule_cycles: f64,
    /// Figure 3 `Loop_chunk_c` (machine cycles + cache + loop overhead,
    /// SMT-stretched).
    pub loop_chunk_cycles: f64,
    /// Figure 3 `Join_c` (synchronisation).
    pub join_cycles: f64,
}

impl CpuPrediction {
    /// Checks the Figure 3 composition:
    /// `Parallel_region = Fork + Schedule + Loop_chunk + Join`.
    pub fn composition_residual(&self) -> f64 {
        (self.cycles
            - (self.fork_cycles + self.schedule_cycles + self.loop_chunk_cycles + self.join_cycles))
            .abs()
    }
}

/// One access's precompiled TLB inputs: the sequential loop variables whose
/// trips weight the access, and the bytecode for its innermost stride.
#[derive(Debug, Clone)]
struct TlbAccess {
    sequential_vars: Vec<LoopVarId>,
    stride: CompiledStride,
    elem_bytes: u32,
}

/// The binding-independent half of the vector-schedule credit, extracted at
/// compile time: lane budget, the hottest loop, and the hot accesses' thread
/// strides as bytecode.
#[derive(Debug, Clone, Default)]
struct CompiledVectorFactor {
    lanes: f64,
    inner: Option<(LoopVarId, bool)>,
    hot_thread_strides: Vec<CompiledStride>,
}

/// Predicts the host execution time of a kernel with `threads` OpenMP
/// threads (paper Figure 3 + Table II).
///
/// ```
/// use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};
/// use hetsel_models::{cpu, power9_params, TripMode};
///
/// let mut kb = KernelBuilder::new("sum");
/// let x = kb.array("x", 4, &["n".into()], Transfer::In);
/// let y = kb.array("y", 4, &["n".into()], Transfer::Out);
/// let i = kb.parallel_loop(0, "n");
/// let ld = kb.load(x, &[i.into()]);
/// kb.store(y, &[i.into()], ld);
/// kb.end_loop();
/// let kernel = kb.finish();
///
/// let p = cpu::predict(&kernel, &Binding::new().with("n", 1 << 20),
///                      &power9_params(), 160, TripMode::Runtime).unwrap();
/// assert!(p.seconds > 0.0);
/// assert_eq!(p.chunk, (1 << 20) / 160 + 1); // static schedule
/// ```
pub fn predict(
    kernel: &Kernel,
    binding: &Binding,
    params: &CpuModelParams,
    threads: u32,
    mode: TripMode,
) -> Option<CpuPrediction> {
    compile(kernel, params, threads, mode)
        .evaluate(binding)
        .ok()
}

/// The compile-time half of the CPU model: the MCA scheduling analysis and
/// IPDA both run once, here; [`CompiledCpuModel::evaluate`] then only binds
/// trip counts and replays precomputed arithmetic.
pub fn compile(
    kernel: &Kernel,
    params: &CpuModelParams,
    threads: u32,
    mode: TripMode,
) -> CompiledCpuModel {
    let _timer = hetsel_obs::static_histogram!("hetsel.models.cpu.compile.ns").start_timer();
    let _span = hetsel_obs::span_with("hetsel.models.cpu.compile", || {
        vec![hetsel_obs::trace::field("kernel", kernel.name.as_str())]
    });
    let info = analyze_cached(kernel);
    let mut symbols = SymbolTable::new();
    let facts = CompiledKernel::compile(kernel, &mut symbols);
    let ctrips = CompiledTrips::compile(kernel, &mut symbols);
    let assess = CompiledAssess::compile(kernel, &info, &mut symbols);
    let tlb = info
        .accesses
        .iter()
        .map(|a| TlbAccess {
            sequential_vars: a
                .enclosing
                .iter()
                .filter(|(_, parallel)| !*parallel)
                .map(|(v, _)| *v)
                .collect(),
            stride: a.innermost_stride.compile(&mut symbols),
            elem_bytes: a.elem_bytes,
        })
        .collect();
    let elem = kernel
        .arrays
        .iter()
        .map(|a| a.elem_bytes)
        .max()
        .unwrap_or(4);
    let max_depth = info
        .accesses
        .iter()
        .map(|a| a.enclosing.len())
        .max()
        .unwrap_or(0);
    let hot: Vec<_> = info
        .accesses
        .iter()
        .filter(|a| a.enclosing.len() == max_depth)
        .collect();
    let vector = CompiledVectorFactor {
        lanes: (f64::from(params.core.vector_lanes_f64) * 8.0 / f64::from(elem)).max(1.0),
        inner: hot.first().and_then(|a| a.enclosing.last().copied()),
        hot_thread_strides: hot
            .iter()
            .map(|a| a.thread_stride.compile(&mut symbols))
            .collect(),
    };
    CompiledCpuModel {
        cycles_serial: compile_parallel_iter_cycles(kernel, &params.core, None, true),
        cycles_tput: compile_parallel_iter_cycles(kernel, &params.core, None, false),
        kernel: Arc::new(kernel.clone()),
        params: params.clone(),
        threads,
        mode,
        symbols,
        facts,
        ctrips,
        assess,
        tlb,
        vector,
    }
}

/// A kernel's CPU model after the compile phase: the attribute-database
/// entry of the paper's architecture. Holds the partially evaluated MCA
/// analyses (both accumulator-chain settings, for the unroll credit) plus
/// every IPDA-derived quantity lowered to slot-resolved bytecode; evaluation
/// against a [`Binding`] interns the binding once and is pure arithmetic —
/// no string lookups, no `Expr` tree walks.
#[derive(Debug, Clone)]
pub struct CompiledCpuModel {
    /// Shared with the attribute-database record and the region's other
    /// compiled models: one decoded kernel serves them all.
    kernel: Arc<Kernel>,
    params: CpuModelParams,
    threads: u32,
    mode: TripMode,
    /// MCA replay with carried accumulator chains (serial upper bound).
    cycles_serial: CompiledCycles,
    /// MCA replay without carried chains (throughput bound).
    cycles_tput: CompiledCycles,
    /// The interner every compiled expression below resolves slots against.
    symbols: SymbolTable,
    /// Parallel-iteration and array-footprint bytecode.
    facts: CompiledKernel,
    /// Loop-nest trip resolution bytecode.
    ctrips: CompiledTrips,
    /// SIMD legality replay (stride checks + body flags).
    assess: CompiledAssess,
    /// Per-access TLB inputs, in access order.
    tlb: Vec<TlbAccess>,
    /// Vector-schedule credit statics.
    vector: CompiledVectorFactor,
}

impl CompiledCpuModel {
    /// The kernel this model was compiled from.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The runtime half of the model: binds trip counts, replays the
    /// compiled MCA analyses and composes Figure 3. Produces exactly the
    /// arithmetic — bit for bit — of the one-shot [`predict`].
    pub fn evaluate(&self, binding: &Binding) -> Result<CpuPrediction, ModelError> {
        let _timer = hetsel_obs::static_histogram!("hetsel.models.cpu.evaluate.ns").start_timer();
        let _span = hetsel_obs::span_with("hetsel.models.cpu.evaluate", || {
            vec![hetsel_obs::trace::field(
                "kernel",
                self.kernel.name.as_str(),
            )]
        });
        let params = &self.params;
        let threads = self.threads;
        // Resolve every parameter to its dense slot once; everything below
        // replays bytecode against this view — no name lookups.
        let bound = self.symbols.bind(binding);
        let p_iters = self
            .facts
            .parallel_iterations(&bound)
            .ok_or_else(|| ModelError::unresolved(&self.kernel, binding))?;
        if p_iters == 0 {
            return Err(ModelError::ZeroTrip);
        }
        if threads == 0 {
            return Err(ModelError::ZeroThreads);
        }
        let tc = self.ctrips.resolve(&bound);
        let slots = self.mode.slots(&tc, self.ctrips.n_vars());

        // Machine_cycles_per_iter: MCA over the generated schedule (unrolled,
        // vectorised), flat L1 load latency — no cache model.
        let cpi_serial = self.cycles_serial.evaluate_slots(&slots);
        let cpi_tput = self.cycles_tput.evaluate_slots(&slots);
        let vf = self.vector_factor(&bound);
        let machine_cycles_per_iter = cpi_tput.max(cpi_serial / params.unroll) / vf;

        // The model's thread abstraction: SMT beyond `smt_benefit` threads per
        // core contributes nothing.
        let effective_threads =
            u64::from(threads).min((f64::from(params.cores) * params.smt_benefit) as u64);
        let chunk = p_iters.div_ceil(u64::from(threads).min(p_iters).max(1));
        let smt_stretch =
            u64::from(threads).min(p_iters) as f64 / effective_threads.min(p_iters).max(1) as f64;

        let cache_cost =
            self.tlb_misses_per_iter(&bound, &slots) * params.tlb_miss_penalty * chunk as f64;
        let loop_overhead = params.loop_overhead_per_iter * chunk as f64;

        // Figure 3: Parallel_region = Fork + max_i(Thread_exe) + Join, with the
        // max over threads realised as the chunk cost, stretched when SMT
        // threads share a core (everything a thread executes shares the core).
        let loop_chunk =
            (machine_cycles_per_iter * chunk as f64 + cache_cost + loop_overhead) * smt_stretch;
        let schedule = params.schedule_overhead_static;
        let fork =
            params.par_startup + params.fork_per_thread * u64::from(threads).min(p_iters) as f64;
        let join = params.synchronization_overhead;
        let cycles = fork + schedule + loop_chunk + join;

        Ok(CpuPrediction {
            seconds: cycles / (params.freq_ghz * 1e9),
            cycles,
            machine_cycles_per_iter,
            chunk,
            cache_cost,
            vector_factor: vf,
            fork_cycles: fork,
            schedule_cycles: schedule,
            loop_chunk_cycles: loop_chunk,
            join_cycles: join,
        })
    }

    /// Static TLB-miss estimate: for each access, the probability that one
    /// dynamic execution crosses into a new page, assuming the footprint
    /// exceeds the TLB reach (the libhugetlbfs-style estimate of the paper).
    fn tlb_misses_per_iter(&self, bound: &BoundParams, slots: &TripSlots) -> f64 {
        let p = &self.params;
        // TLB reach: if every mapped byte fits under the TLB, no misses.
        let total_bytes = self.facts.resolved_bytes_total(bound);
        if total_bytes <= u64::from(p.tlb_entries) * p.page_bytes {
            return 0.0;
        }
        let mut misses = 0.0;
        for a in &self.tlb {
            // Dynamic executions per parallel iteration under the trip mode:
            // resolved average trips for Runtime, 128 for the abstraction.
            let mut weight = 1.0;
            for v in &a.sequential_vars {
                weight *= slots.get(*v).max(0.0);
            }
            let stride_bytes = match a.stride.resolve(bound) {
                Some(s) => s.unsigned_abs() as f64 * f64::from(a.elem_bytes),
                None => p.page_bytes as f64, // irregular: assume a new page each time
            };
            let per_exec = (stride_bytes / p.page_bytes as f64).min(1.0);
            misses += weight * per_exec;
        }
        misses
    }

    /// The model's vector-schedule credit: same legality reasoning as the
    /// compiler applies, without any cache knowledge.
    fn vector_factor(&self, bound: &BoundParams) -> f64 {
        let p = &self.params;
        let vec_info = self.assess.evaluate(bound);
        let lanes = self.vector.lanes;
        let Some((inner_var, inner_parallel)) = self.vector.inner else {
            return 1.0;
        };
        if !inner_parallel {
            if let Some(vi) = vec_info.get(&inner_var) {
                if vi.legal {
                    let mut f = lanes * p.core.vector_efficiency;
                    if vi.has_reduction {
                        f *= p.core.vector_reduction_efficiency;
                    }
                    return f.max(1.0);
                }
            }
        }
        let thread_ok = self
            .vector
            .hot_thread_strides
            .iter()
            .all(|s| matches!(s.resolve(bound), Some(0) | Some(1) | Some(-1)));
        if thread_ok {
            if inner_parallel {
                return (lanes * p.core.vector_efficiency).max(1.0);
            }
            if p.outer_loop_vectorization {
                return (lanes * p.core.vector_efficiency * 0.8).max(1.0);
            }
        }
        1.0
    }
}

hetsel_ir::snap_struct!(CpuModelParams {
    name,
    freq_ghz,
    tlb_entries,
    tlb_miss_penalty,
    page_bytes,
    loop_overhead_per_iter,
    schedule_overhead_static,
    synchronization_overhead,
    par_startup,
    fork_per_thread,
    cores,
    smt_benefit,
    unroll,
    core,
    outer_loop_vectorization,
});

hetsel_ir::snap_struct!(TlbAccess {
    sequential_vars,
    stride,
    elem_bytes,
});

hetsel_ir::snap_struct!(CompiledVectorFactor {
    lanes,
    inner,
    hot_thread_strides,
});

impl CompiledCpuModel {
    /// Serializes everything *except* the kernel. The snapshot container
    /// stores one kernel per region and shares it across that region's
    /// compiled models, so the models' wire format deliberately has no
    /// kernel field; [`CompiledCpuModel::unsnap_body`] reattaches the
    /// region's shared copy.
    pub fn snap_body(&self, w: &mut hetsel_ir::SnapWriter) {
        use hetsel_ir::Snap;
        self.params.snap(w);
        w.put_u32(self.threads);
        self.mode.snap(w);
        self.cycles_serial.snap(w);
        self.cycles_tput.snap(w);
        self.symbols.snap(w);
        self.facts.snap(w);
        self.ctrips.snap(w);
        self.assess.snap(w);
        self.tlb.snap(w);
        self.vector.snap(w);
    }

    /// Decodes a [`CompiledCpuModel::snap_body`] encoding, adopting `kernel`
    /// as the model's (shared) kernel.
    pub fn unsnap_body(
        kernel: Arc<Kernel>,
        r: &mut hetsel_ir::SnapReader<'_>,
    ) -> Result<CompiledCpuModel, hetsel_ir::SnapError> {
        use hetsel_ir::Snap;
        Ok(CompiledCpuModel {
            kernel,
            params: CpuModelParams::unsnap(r)?,
            threads: r.get_u32()?,
            mode: TripMode::unsnap(r)?,
            cycles_serial: hetsel_mca::CompiledCycles::unsnap(r)?,
            cycles_tput: hetsel_mca::CompiledCycles::unsnap(r)?,
            symbols: SymbolTable::unsnap(r)?,
            facts: CompiledKernel::unsnap(r)?,
            ctrips: CompiledTrips::unsnap(r)?,
            assess: CompiledAssess::unsnap(r)?,
            tlb: Vec::<TlbAccess>::unsnap(r)?,
            vector: CompiledVectorFactor::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{find_kernel, Dataset};

    fn predict_kernel(name: &str, ds: Dataset, threads: u32, mode: TripMode) -> CpuPrediction {
        let (k, binding) = find_kernel(name).unwrap();
        predict(&k, &binding(ds), &power9_params(), threads, mode).unwrap()
    }

    #[test]
    fn more_threads_predicts_faster() {
        let p4 = predict_kernel("gemm", Dataset::Test, 4, TripMode::Runtime);
        let p40 = predict_kernel("gemm", Dataset::Test, 40, TripMode::Runtime);
        assert!(p40.seconds < p4.seconds);
    }

    #[test]
    fn smt_abstraction_saturates() {
        // Beyond 40 threads (20 cores x2) the model adds nothing.
        let p40 = predict_kernel("gemm", Dataset::Benchmark, 40, TripMode::Runtime);
        let p160 = predict_kernel("gemm", Dataset::Benchmark, 160, TripMode::Runtime);
        assert!((p160.seconds - p40.seconds).abs() / p40.seconds < 0.05);
    }

    #[test]
    fn assume128_underestimates_benchmark_inner_loops() {
        let m128 = predict_kernel("gemm", Dataset::Benchmark, 160, TripMode::Assume128);
        let mrt = predict_kernel("gemm", Dataset::Benchmark, 160, TripMode::Runtime);
        // Real inner loop: 9600 iterations; the abstraction sees 128.
        assert!(mrt.seconds > m128.seconds * 20.0);
    }

    #[test]
    fn overheads_present_in_tiny_kernels() {
        // A kernel with 64 iterations is dominated by Table II overheads.
        let (k, binding) = find_kernel("2dconv").unwrap();
        let p = predict(
            &k,
            &binding(Dataset::Mini),
            &power9_params(),
            160,
            TripMode::Runtime,
        )
        .unwrap();
        let overhead = 3000.0 + 10154.0 + 4000.0 + 160.0 * 24_000.0;
        assert!(p.cycles >= overhead);
        assert!(p.cycles < overhead * 1.5);
    }

    #[test]
    fn tlb_cost_grows_with_dataset() {
        let t = predict_kernel("bicg.k1", Dataset::Test, 160, TripMode::Runtime);
        let b = predict_kernel("bicg.k1", Dataset::Benchmark, 160, TripMode::Runtime);
        // Column walk over a 368 MB matrix must show TLB cost; over a 4.8 MB
        // one the reach covers everything.
        assert_eq!(t.cache_cost, 0.0, "test-mode A fits TLB reach");
        assert!(b.cache_cost > 0.0);
    }

    #[test]
    fn p9_credits_outer_vectorization_p8_does_not() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        let p9 = predict(&k, &b, &power9_params(), 160, TripMode::Runtime).unwrap();
        let p8 = predict(&k, &b, &power8_params(), 160, TripMode::Runtime).unwrap();
        assert!(p9.vector_factor > 1.0);
        assert_eq!(p8.vector_factor, 1.0);
    }

    #[test]
    fn figure3_composition_is_exact() {
        for name in ["gemm", "2dconv", "corr.corr"] {
            let p = predict_kernel(name, Dataset::Test, 160, TripMode::Runtime);
            assert!(
                p.composition_residual() < 1e-9,
                "{name}: {}",
                p.composition_residual()
            );
            assert!(p.fork_cycles >= 3000.0);
            assert_eq!(p.schedule_cycles, 10154.0);
            assert_eq!(p.join_cycles, 4000.0);
            assert!(p.loop_chunk_cycles > 0.0);
        }
    }

    #[test]
    fn unresolved_binding_is_none() {
        let (k, _) = find_kernel("gemm").unwrap();
        assert!(predict(&k, &Binding::new(), &power9_params(), 4, TripMode::Runtime).is_none());
    }
}
