//! Symbolic inter-iteration strides and their classification.

use hetsel_ir::{Binding, BoundParams, CompiledExpr, Poly, SymbolTable};
use std::fmt;

/// The inter-iteration (or inter-thread) stride of a memory access along one
/// loop dimension, in **elements**.
///
/// This is the value of the iteration-point difference
/// `IPD_v(access) = index(v+1) - index(v)`: for affine accesses a polynomial
/// over runtime parameters; constant when the polynomial is closed at compile
/// time; unknown for non-affine accesses.
#[derive(Debug, Clone, PartialEq)]
pub enum Stride {
    /// Stride known exactly at compile time.
    Known(i64),
    /// Stride known symbolically; resolved by binding runtime parameters
    /// (the *hybrid* half of the analysis).
    Symbolic(Poly),
    /// The access is not affine in the loop variables; no stride exists.
    Irregular,
}

impl Stride {
    /// Builds a stride from an IPD polynomial, collapsing compile-time
    /// constants to [`Stride::Known`].
    pub fn from_poly(p: Poly) -> Stride {
        match p.as_const() {
            Some(c) => Stride::Known(c),
            None => Stride::Symbolic(p),
        }
    }

    /// Resolves the stride to a concrete element count under a runtime
    /// binding. `None` for irregular accesses or unbound parameters.
    pub fn resolve(&self, binding: &Binding) -> Option<i64> {
        match self {
            Stride::Known(c) => Some(*c),
            Stride::Symbolic(p) => p.eval(binding),
            Stride::Irregular => None,
        }
    }

    /// True if the stride is fully known at compile time.
    pub fn is_static(&self) -> bool {
        matches!(self, Stride::Known(_))
    }

    /// True if the stride can be resolved (possibly only at runtime).
    pub fn is_analyzable(&self) -> bool {
        !matches!(self, Stride::Irregular)
    }

    /// Lowers the stride for slot-indexed resolution: symbolic polynomials
    /// become [`CompiledExpr`] bytecode over `table`'s interned parameters.
    pub fn compile(&self, table: &mut SymbolTable) -> CompiledStride {
        match self {
            Stride::Known(c) => CompiledStride::Known(*c),
            Stride::Symbolic(p) => {
                let c = CompiledExpr::compile_poly(p, table);
                match c.as_const() {
                    // compile_poly folds what Poly::eval would compute for a
                    // closed polynomial, so collapsing keeps values equal.
                    Some(v) => CompiledStride::Known(v),
                    None => CompiledStride::Symbolic(c),
                }
            }
            Stride::Irregular => CompiledStride::Irregular,
        }
    }
}

/// A [`Stride`] lowered against a [`SymbolTable`]: resolution reads dense
/// parameter slots instead of walking polynomial terms by name.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledStride {
    /// Stride known exactly at compile time.
    Known(i64),
    /// Stride resolved by evaluating compiled bytecode at runtime.
    Symbolic(CompiledExpr),
    /// No stride exists (non-affine access).
    Irregular,
}

impl CompiledStride {
    /// Resolves the stride under a dense parameter view; agrees with
    /// [`Stride::resolve`] on the binding the view was built from.
    pub fn resolve(&self, params: &BoundParams) -> Option<i64> {
        match self {
            CompiledStride::Known(c) => Some(*c),
            CompiledStride::Symbolic(c) => c.eval_closed(params),
            CompiledStride::Irregular => None,
        }
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stride::Known(c) => write!(f, "{c}"),
            Stride::Symbolic(p) => write!(f, "{p}"),
            Stride::Irregular => write!(f, "<irregular>"),
        }
    }
}

/// Qualitative classification of a resolved stride, as used by the GPU
/// memory-warp model and reported by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Stride 0: every thread reads the same element (a broadcast); the
    /// hardware serves the warp with a single transaction.
    Uniform,
    /// |stride| = 1: adjacent threads access adjacent elements — fully
    /// coalesced.
    Coalesced,
    /// Constant stride > 1: partially coalesced; the warp touches
    /// `transactions_per_warp` distinct segments.
    Strided,
    /// Unknown at both compile time and runtime.
    Irregular,
}

/// Classifies a resolved element stride.
pub fn classify(stride_elems: Option<i64>) -> AccessPattern {
    match stride_elems {
        None => AccessPattern::Irregular,
        Some(0) => AccessPattern::Uniform,
        Some(1) | Some(-1) => AccessPattern::Coalesced,
        Some(_) => AccessPattern::Strided,
    }
}

impl hetsel_ir::Snap for Stride {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            Stride::Known(c) => {
                w.put_u8(0);
                w.put_i64(*c);
            }
            Stride::Symbolic(p) => {
                w.put_u8(1);
                p.snap(w);
            }
            Stride::Irregular => w.put_u8(2),
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => Stride::Known(r.get_i64()?),
            1 => Stride::Symbolic(Poly::unsnap(r)?),
            2 => Stride::Irregular,
            _ => return Err(hetsel_ir::SnapError::Malformed("bad Stride tag")),
        })
    }
}

impl hetsel_ir::Snap for CompiledStride {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            CompiledStride::Known(c) => {
                w.put_u8(0);
                w.put_i64(*c);
            }
            CompiledStride::Symbolic(e) => {
                w.put_u8(1);
                e.snap(w);
            }
            CompiledStride::Irregular => w.put_u8(2),
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => CompiledStride::Known(r.get_i64()?),
            1 => CompiledStride::Symbolic(CompiledExpr::unsnap(r)?),
            2 => CompiledStride::Irregular,
            _ => return Err(hetsel_ir::SnapError::Malformed("bad CompiledStride tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_poly_becomes_known() {
        assert_eq!(Stride::from_poly(Poly::constant(4)), Stride::Known(4));
        assert_eq!(Stride::from_poly(Poly::zero()), Stride::Known(0));
    }

    #[test]
    fn symbolic_resolves_at_runtime() {
        let s = Stride::from_poly(Poly::param("max"));
        assert!(!s.is_static());
        assert!(s.is_analyzable());
        assert_eq!(s.resolve(&Binding::new()), None);
        assert_eq!(s.resolve(&Binding::new().with("max", 1)), Some(1));
        assert_eq!(s.resolve(&Binding::new().with("max", 9600)), Some(9600));
    }

    #[test]
    fn irregular_never_resolves() {
        assert_eq!(
            Stride::Irregular.resolve(&Binding::new().with("n", 1)),
            None
        );
        assert!(!Stride::Irregular.is_analyzable());
    }

    #[test]
    fn classification() {
        assert_eq!(classify(Some(0)), AccessPattern::Uniform);
        assert_eq!(classify(Some(1)), AccessPattern::Coalesced);
        assert_eq!(classify(Some(-1)), AccessPattern::Coalesced);
        assert_eq!(classify(Some(2)), AccessPattern::Strided);
        assert_eq!(classify(Some(9600)), AccessPattern::Strided);
        assert_eq!(classify(None), AccessPattern::Irregular);
    }
}
