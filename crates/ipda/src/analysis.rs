//! The Iteration Point Difference Analysis proper.
//!
//! For every memory access in a kernel, IPDA builds the symbolic difference
//! of the access's linearised index between consecutive iteration points of
//! each loop dimension. Differencing an affine index is exact: the IPD along
//! dimension `v` is the index's coefficient on `v`. The analysis runs at
//! compile time; strides that remain symbolic are stored in the program
//! attribute database and resolved by the runtime immediately before launch.

use crate::stride::{classify, AccessPattern, Stride};
use crate::warp;
use hetsel_ir::{linearize, Affine, ArrayId, Binding, Kernel, Lhs, LoopVarId};

/// IPDA result for a single static memory access.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    /// The accessed array.
    pub array: ArrayId,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Linearised affine index, if the access is affine.
    pub affine: Option<Affine>,
    /// Inter-thread stride: the IPD along the kernel's thread dimension
    /// (the innermost parallel loop, which consecutive GPU threads map to).
    pub thread_stride: Stride,
    /// Stride along the innermost *enclosing* loop of the access — the
    /// dimension a CPU vectoriser would vectorise over.
    pub innermost_stride: Stride,
    /// Enclosing loops, outermost first, with their parallel flag.
    pub enclosing: Vec<(LoopVarId, bool)>,
}

impl AccessInfo {
    /// The innermost enclosing loop variable.
    pub fn innermost_var(&self) -> Option<LoopVarId> {
        self.enclosing.last().map(|(v, _)| *v)
    }

    /// Resolves and classifies the inter-thread pattern under a binding.
    pub fn thread_pattern(&self, binding: &Binding) -> AccessPattern {
        classify(self.thread_stride.resolve(binding))
    }

    /// Memory transactions per warp for this access under a binding, using
    /// `seg_bytes` segments. Irregular accesses are assumed fully scattered
    /// (one transaction per lane) — the conservative choice the paper's
    /// model makes when the analysis cannot prove better.
    pub fn transactions_per_warp(&self, binding: &Binding, seg_bytes: u32) -> u32 {
        match self.thread_stride.resolve(binding) {
            Some(s) => warp::transactions_per_warp(s, self.elem_bytes, seg_bytes),
            None => warp::WARP_SIZE,
        }
    }

    /// True if the access is coalesced under a binding (irregular counts as
    /// uncoalesced).
    pub fn is_coalesced(&self, binding: &Binding, seg_bytes: u32) -> bool {
        match self.thread_stride.resolve(binding) {
            Some(s) => warp::is_coalesced(s, self.elem_bytes, seg_bytes),
            None => false,
        }
    }
}

/// IPDA results for every memory access of a kernel, in walk order.
#[derive(Debug, Clone)]
pub struct KernelAccessInfo {
    /// Kernel name (for attribute-database indexing).
    pub kernel: String,
    /// Per-access results.
    pub accesses: Vec<AccessInfo>,
}

/// Runs IPDA over a kernel.
///
/// This is the compile-time half of the hybrid analysis: every access gets a
/// symbolic inter-thread stride; accesses whose stride polynomial is closed
/// are classified immediately, the rest await a runtime [`Binding`].
///
/// ```
/// use hetsel_ir::{cexpr, Binding, Expr, KernelBuilder, Transfer};
///
/// // A[max * a] — the paper's Section IV.C example.
/// let mut kb = KernelBuilder::new("example");
/// let arr = kb.array("A", 4, &[Expr::param("max") * Expr::param("max")], Transfer::InOut);
/// let a = kb.parallel_loop(0, "max");
/// kb.store(arr, &[Expr::param("max") * Expr::var(a)], cexpr::lit(1.0));
/// kb.end_loop();
/// let kernel = kb.finish();
///
/// let info = hetsel_ipda::analyze(&kernel);
/// // Compile time: the stride is the symbolic polynomial [max].
/// assert_eq!(format!("{}", info.accesses[0].thread_stride), "[max]");
/// // Runtime: binding max resolves it.
/// let stride = info.accesses[0].thread_stride.resolve(&Binding::new().with("max", 9600));
/// assert_eq!(stride, Some(9600));
/// ```
pub fn analyze(kernel: &Kernel) -> KernelAccessInfo {
    let thread_dim = kernel.thread_dim();
    let mut accesses = Vec::new();
    kernel.walk_assigns(|loops, assign| {
        let enclosing: Vec<(LoopVarId, bool)> = loops.iter().map(|l| (l.var, l.parallel)).collect();
        let mut record = |r: &hetsel_ir::ArrayRef, is_store: bool| {
            let affine = linearize(kernel, r);
            let innermost = enclosing.last().map(|(v, _)| *v);
            let (thread_stride, innermost_stride) = match &affine {
                Some(a) => {
                    let t = match thread_dim {
                        Some(td) => Stride::from_poly(a.coeff(td)),
                        None => Stride::Irregular,
                    };
                    let inner = match innermost {
                        Some(iv) => Stride::from_poly(a.coeff(iv)),
                        None => Stride::Known(0),
                    };
                    (t, inner)
                }
                None => (Stride::Irregular, Stride::Irregular),
            };
            accesses.push(AccessInfo {
                array: r.array,
                elem_bytes: kernel.array(r.array).elem_bytes,
                is_store,
                affine,
                thread_stride,
                innermost_stride,
                enclosing: enclosing.clone(),
            });
        };
        assign.rhs.for_each_load(&mut |r| record(r, false));
        if let Lhs::Array(r) = &assign.lhs {
            record(r, true);
        }
    });
    KernelAccessInfo {
        kernel: kernel.name.clone(),
        accesses,
    }
}

/// Aggregate coalescing characteristics of a kernel under a runtime binding —
/// the `#Coal_Mem_insts` / `#Uncoal_Mem_insts` split consumed by the GPU
/// model, counted over *static* memory instructions (the models weight them
/// by trip counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescingSummary {
    /// Static memory instructions proven coalesced (or uniform).
    pub coalesced: u32,
    /// Static memory instructions that are strided/irregular.
    pub uncoalesced: u32,
    /// Mean transactions per warp across all static memory instructions.
    pub avg_transactions: f64,
    /// Mean transactions per warp across *uncoalesced* instructions only
    /// (the departure-delay multiplier of the Hong–Kim model).
    pub uncoal_transactions: f64,
}

impl CoalescingSummary {
    /// Fraction of memory instructions that are coalesced.
    pub fn coalesced_fraction(&self) -> f64 {
        let total = self.coalesced + self.uncoalesced;
        if total == 0 {
            1.0
        } else {
            f64::from(self.coalesced) / f64::from(total)
        }
    }
}

/// Summarises the coalescing characteristics of all accesses under a binding.
pub fn summarize(info: &KernelAccessInfo, binding: &Binding, seg_bytes: u32) -> CoalescingSummary {
    let mut coalesced = 0u32;
    let mut uncoalesced = 0u32;
    let mut txn_sum = 0u64;
    let mut uncoal_txn_sum = 0u64;
    for a in &info.accesses {
        let t = a.transactions_per_warp(binding, seg_bytes);
        txn_sum += u64::from(t);
        if a.is_coalesced(binding, seg_bytes) {
            coalesced += 1;
        } else {
            uncoalesced += 1;
            uncoal_txn_sum += u64::from(t);
        }
    }
    let n = info.accesses.len().max(1) as f64;
    CoalescingSummary {
        coalesced,
        uncoalesced,
        avg_transactions: txn_sum as f64 / n,
        uncoal_transactions: if uncoalesced == 0 {
            0.0
        } else {
            uncoal_txn_sum as f64 / f64::from(uncoalesced)
        },
    }
}

hetsel_ir::snap_struct!(AccessInfo {
    array,
    elem_bytes,
    is_store,
    affine,
    thread_stride,
    innermost_stride,
    enclosing,
});

hetsel_ir::snap_struct!(KernelAccessInfo { kernel, accesses });

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::{cexpr, KernelBuilder, Poly, Transfer};

    /// The paper's running example (Section IV.C):
    /// ```c
    /// #pragma omp teams distribute parallel for
    /// for (int a = 0; a < max; a++) A[max * a] = ...;
    /// ```
    fn paper_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("paper");
        let arr = kb.array(
            "A",
            8,
            &[hetsel_ir::Expr::param("max") * hetsel_ir::Expr::param("max")],
            Transfer::InOut,
        );
        let a = kb.parallel_loop(0, "max");
        kb.store(
            arr,
            &[hetsel_ir::Expr::param("max") * hetsel_ir::Expr::var(a)],
            cexpr::lit(1.0),
        );
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn paper_example_symbolic_stride() {
        let k = paper_kernel();
        let info = analyze(&k);
        assert_eq!(info.accesses.len(), 1);
        let acc = &info.accesses[0];
        assert!(acc.is_store);
        // IPD_th(A[max*a]) = [max] * 1 - [max] * 0 = [max]
        assert_eq!(acc.thread_stride, Stride::Symbolic(Poly::param("max")));
    }

    #[test]
    fn paper_example_runtime_resolution() {
        let k = paper_kernel();
        let info = analyze(&k);
        let acc = &info.accesses[0];
        // max = 1: stride 1, coalesced.
        let b1 = Binding::new().with("max", 1);
        assert_eq!(acc.thread_pattern(&b1), AccessPattern::Coalesced);
        assert!(acc.is_coalesced(&b1, 32));
        // max = 9600: fully scattered.
        let b2 = Binding::new().with("max", 9600);
        assert_eq!(acc.thread_pattern(&b2), AccessPattern::Strided);
        assert!(!acc.is_coalesced(&b2, 32));
        assert_eq!(acc.transactions_per_warp(&b2, 32), 32);
    }

    /// Row access A[i][j] with i parallel, j sequential: coalesced for the
    /// CPU vectoriser (innermost stride 1) but *uncoalesced* across GPU
    /// threads (thread stride n) — the canonical transposed-access hazard.
    #[test]
    fn row_major_parallel_rows() {
        let mut kb = KernelBuilder::new("rows");
        let arr = kb.array("A", 8, &["n".into(), "n".into()], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(arr, &[i.into(), j.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.acc_init("t", cexpr::scalar("s"));
        kb.end_loop();
        let k = kb.finish();

        let info = analyze(&k);
        let acc = &info.accesses[0];
        assert_eq!(acc.thread_stride, Stride::Symbolic(Poly::param("n")));
        assert_eq!(acc.innermost_stride, Stride::Known(1));
        let b = Binding::new().with("n", 1100);
        assert_eq!(acc.thread_pattern(&b), AccessPattern::Strided);
    }

    /// Column access A[j][i] with i the thread dim: coalesced on the GPU.
    #[test]
    fn column_access_is_gpu_coalesced() {
        let mut kb = KernelBuilder::new("cols");
        let arr = kb.array("A", 8, &["n".into(), "n".into()], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(arr, &[j.into(), i.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.acc_init("t", cexpr::scalar("s"));
        kb.end_loop();
        let k = kb.finish();

        let info = analyze(&k);
        let acc = &info.accesses[0];
        assert_eq!(acc.thread_stride, Stride::Known(1));
        // But the CPU vectoriser sees stride n over the innermost loop.
        assert_eq!(acc.innermost_stride, Stride::Symbolic(Poly::param("n")));
        assert!(acc.is_coalesced(&Binding::new(), 32));
    }

    #[test]
    fn broadcast_load_is_uniform() {
        let mut kb = KernelBuilder::new("bcast");
        let x = kb.array("x", 8, &["n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(x, &[j.into()]); // invariant w.r.t. i
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        let info = analyze(&k);
        let load = &info.accesses[0];
        assert_eq!(load.thread_stride, Stride::Known(0));
        assert_eq!(load.thread_pattern(&Binding::new()), AccessPattern::Uniform);
        // The store y[i] is coalesced.
        let store = info.accesses.iter().find(|a| a.is_store).unwrap();
        assert_eq!(store.thread_stride, Stride::Known(1));
    }

    #[test]
    fn summary_counts() {
        let mut kb = KernelBuilder::new("mix");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let c = kb.array("c", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        // coalesced load a[0][i], uncoalesced load a[i][0]
        let l1 = kb.load(a, &[0.into(), i.into()]);
        let l2 = kb.load(a, &[i.into(), 0.into()]);
        kb.store(c, &[i.into()], cexpr::add(l1, l2));
        kb.end_loop();
        let k = kb.finish();
        let info = analyze(&k);
        let b = Binding::new().with("n", 1024);
        let s = summarize(&info, &b, 32);
        assert_eq!(s.coalesced, 2); // a[0][i] and the store c[i]
        assert_eq!(s.uncoalesced, 1); // a[i][0]
        assert!((s.coalesced_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.uncoal_transactions >= 31.0);
    }

    #[test]
    fn empty_pattern_fraction_is_one() {
        let s = CoalescingSummary {
            coalesced: 0,
            uncoalesced: 0,
            avg_transactions: 0.0,
            uncoal_transactions: 0.0,
        };
        assert_eq!(s.coalesced_fraction(), 1.0);
    }
}
