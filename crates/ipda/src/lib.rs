//! # hetsel-ipda — Iteration Point Difference Analysis
//!
//! A from-scratch implementation of the hybrid symbolic analysis the paper
//! applies to improve the memory-coalescing inputs of its GPU performance
//! model (Section IV.C), after Chikin et al.'s IPDA framework.
//!
//! For each memory access in an OpenMP parallel loop, the analysis builds the
//! **symbolic difference** of the access's linearised index between adjacent
//! iteration points of the thread dimension:
//!
//! ```text
//! IPD_th(A[max * a]) = [max]·1 − [max]·0 = [max]
//! ```
//!
//! When the difference closes to a constant at compile time the access is
//! classified immediately; otherwise the polynomial is stored in the program
//! attribute database and resolved by the runtime just before kernel launch —
//! *without ever executing or profiling the kernel*, which is the paper's key
//! advantage over trace-driven coalescing models.
//!
//! The crate provides:
//! * [`analyze`] — per-access inter-thread and inner-loop strides;
//! * [`warp`] — exact warp-transaction arithmetic (`#Coal_Mem_insts` /
//!   `#Uncoal_Mem_insts` for the Hong–Kim model);
//! * [`vectorize`] — SIMD legality of inner loops on the host (the POWER9
//!   VSX3 story);
//! * [`false_sharing`] — the CPU-side sharing diagnosis the paper sketches.

#![warn(missing_docs)]

pub mod analysis;
pub mod false_sharing;
pub mod memo;
pub mod stride;
pub mod vectorize;
pub mod warp;

pub use analysis::{analyze, summarize, AccessInfo, CoalescingSummary, KernelAccessInfo};
pub use false_sharing::{store_sharing_risk, Schedule, SharingRisk};
pub use memo::{analyze_cached, clear as clear_analysis_memo, seed as seed_analysis};
pub use stride::{classify, AccessPattern, CompiledStride, Stride};
pub use vectorize::{assess, CompiledAssess, VectorizationInfo};
pub use warp::{
    is_coalesced, memory_efficiency, transactions_for_lanes, transactions_per_warp, WARP_SIZE,
};
