//! Warp-level transaction arithmetic.
//!
//! Given a resolved inter-thread stride, these routines compute how many
//! memory transactions the hardware issues to serve one warp-wide access —
//! the quantity that separates a coalesced access (1–2 transactions) from a
//! fully scattered one (one transaction per lane), and the direct input to
//! the `#Uncoal_Mem_insts` / `#Coal_Mem_insts` split of the Hong–Kim model.

/// Number of lanes in a warp on every NVIDIA architecture we model.
pub const WARP_SIZE: u32 = 32;

/// Computes the number of distinct memory segments of `seg_bytes` touched by
/// a warp whose lane `l` accesses byte address `l * stride_elems * elem_bytes`
/// (base assumed segment-aligned, the common case for mapped buffers).
pub fn transactions_per_warp(stride_elems: i64, elem_bytes: u32, seg_bytes: u32) -> u32 {
    transactions_for_lanes(stride_elems, elem_bytes, seg_bytes, WARP_SIZE)
}

/// As [`transactions_per_warp`] but for an arbitrary number of active lanes
/// (partial warps at the fringe of the iteration space).
pub fn transactions_for_lanes(
    stride_elems: i64,
    elem_bytes: u32,
    seg_bytes: u32,
    lanes: u32,
) -> u32 {
    assert!(elem_bytes > 0 && seg_bytes > 0 && lanes > 0);
    if lanes == 1 || stride_elems == 0 {
        // A broadcast (or single lane): the access spans
        // ceil(elem/seg) segments starting at an aligned base.
        return elem_bytes.div_ceil(seg_bytes);
    }
    let stride_bytes = stride_elems.unsigned_abs() * u64::from(elem_bytes);
    let seg = u64::from(seg_bytes);
    // Count distinct segments across the lanes. Each lane touches
    // [l*stride, l*stride + elem) bytes; segments are seg-aligned.
    let mut count = 0u32;
    let mut last_seg = u64::MAX;
    for l in 0..u64::from(lanes) {
        let start = l * stride_bytes;
        let end = start + u64::from(elem_bytes) - 1;
        let s0 = start / seg;
        let s1 = end / seg;
        if s0 != last_seg {
            count += 1;
        }
        // Elements larger than a segment (or straddling) add the extra
        // segments they cover.
        count += (s1 - s0) as u32;
        last_seg = s1;
    }
    count
}

/// Fraction of transferred bytes that the warp actually uses: 1.0 for a
/// perfectly coalesced access, approaching `elem_bytes / seg_bytes` for a
/// fully scattered one.
pub fn memory_efficiency(stride_elems: i64, elem_bytes: u32, seg_bytes: u32) -> f64 {
    let txns = transactions_per_warp(stride_elems, elem_bytes, seg_bytes);
    let useful = if stride_elems == 0 {
        u64::from(elem_bytes)
    } else {
        u64::from(WARP_SIZE) * u64::from(elem_bytes)
    };
    useful as f64 / (u64::from(txns) * u64::from(seg_bytes)) as f64
}

/// True if a warp-wide access with this stride is served by the minimal
/// number of transactions (the hardware's definition of "coalesced").
pub fn is_coalesced(stride_elems: i64, elem_bytes: u32, seg_bytes: u32) -> bool {
    let txns = transactions_per_warp(stride_elems, elem_bytes, seg_bytes);
    let minimal = (WARP_SIZE * elem_bytes).div_ceil(seg_bytes);
    txns <= minimal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_doubles() {
        // 32 lanes * 8B = 256B = 8 segments of 32B.
        assert_eq!(transactions_per_warp(1, 8, 32), 8);
        assert!(is_coalesced(1, 8, 32));
    }

    #[test]
    fn unit_stride_floats_128b_segments() {
        // 32 lanes * 4B = 128B = 1 segment of 128B.
        assert_eq!(transactions_per_warp(1, 4, 128), 1);
        assert!(is_coalesced(1, 4, 128));
    }

    #[test]
    fn broadcast_is_one_transaction() {
        assert_eq!(transactions_per_warp(0, 8, 32), 1);
        assert!(is_coalesced(0, 8, 32));
    }

    #[test]
    fn large_stride_fully_scattered() {
        // Stride 9600 doubles: every lane in its own segment.
        assert_eq!(transactions_per_warp(9600, 8, 32), 32);
        assert!(!is_coalesced(9600, 8, 32));
        assert_eq!(transactions_per_warp(9600, 8, 128), 32);
    }

    #[test]
    fn stride_two_halves_efficiency() {
        // Stride 2 doubles: lanes cover 512B = 16 segments of 32B, but only
        // 256B useful.
        assert_eq!(transactions_per_warp(2, 8, 32), 16);
        assert!((memory_efficiency(2, 8, 32) - 0.5).abs() < 1e-12);
        assert!(!is_coalesced(2, 8, 32));
    }

    #[test]
    fn stride_four_floats() {
        // 4B elems, stride 4 elems = 16B apart: two lanes per 32B segment.
        assert_eq!(transactions_per_warp(4, 4, 32), 16);
    }

    #[test]
    fn negative_stride_same_as_positive() {
        assert_eq!(
            transactions_per_warp(-3, 8, 32),
            transactions_per_warp(3, 8, 32)
        );
    }

    #[test]
    fn partial_warp() {
        assert_eq!(transactions_for_lanes(1, 4, 32, 8), 1);
        assert_eq!(transactions_for_lanes(9600, 8, 32, 4), 4);
        assert_eq!(transactions_for_lanes(1, 4, 32, 1), 1);
    }

    #[test]
    fn coalesced_efficiency_is_one() {
        assert!((memory_efficiency(1, 4, 32) - 1.0).abs() < 1e-12);
        assert!((memory_efficiency(1, 8, 32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transactions_monotone_in_stride_sample() {
        let mut prev = 0;
        for s in [0i64, 1, 2, 4, 8, 16, 64] {
            let t = transactions_per_warp(s, 8, 32);
            assert!(t >= prev, "stride {s} gave {t} < {prev}");
            prev = t;
        }
    }
}
