//! False-sharing diagnosis for the host execution path.
//!
//! The paper notes (Section II.C) that the same inter-thread difference that
//! decides GPU coalescing "may also inform the compiler whether the CPU
//! version of the same kernel would exhibit false-sharing among threads":
//! under a cyclic OpenMP schedule, adjacent parallel iterations run on
//! *different* threads, so a small inter-iteration store stride puts multiple
//! threads' stores in the same cache line.

use crate::analysis::AccessInfo;
use hetsel_ir::Binding;

/// The OpenMP loop schedule relevant to sharing analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)` — each thread owns one contiguous block.
    Block,
    /// `schedule(static, chunk)` — chunks dealt round-robin.
    Cyclic {
        /// Iterations per chunk.
        chunk: u32,
    },
}

/// Result of the sharing analysis for one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingRisk {
    /// Threads' stores land in disjoint cache lines (up to block fringes).
    None,
    /// Multiple threads store into the same cache line repeatedly.
    FalseSharing,
    /// The stride could not be resolved.
    Unknown,
}

/// Diagnoses false-sharing risk for a store access under a schedule.
///
/// For a block schedule, each thread's stores are contiguous runs; only the
/// single line at each block boundary is shared, which is negligible unless
/// a thread's whole block fits in one line. For a cyclic schedule with chunk
/// `c`, threads alternate every `c` iterations: the sharing window is
/// `c × |stride| × elem_bytes`; if that is smaller than a cache line,
/// different threads write the same line.
pub fn store_sharing_risk(
    access: &AccessInfo,
    binding: &Binding,
    schedule: Schedule,
    line_bytes: u32,
    iterations_per_thread: u64,
) -> SharingRisk {
    if !access.is_store {
        return SharingRisk::None;
    }
    let Some(stride) = access.thread_stride.resolve(binding) else {
        return SharingRisk::Unknown;
    };
    let footprint_per_iter = stride.unsigned_abs() * u64::from(access.elem_bytes);
    match schedule {
        Schedule::Block => {
            // A thread's block spans iterations_per_thread * stride * elem
            // bytes; false sharing only if that all fits within one line
            // (including the degenerate stride-0 case where every thread
            // hammers the same element).
            let block_span = footprint_per_iter
                .saturating_mul(iterations_per_thread.max(1))
                .max(u64::from(access.elem_bytes));
            if block_span < u64::from(line_bytes) {
                SharingRisk::FalseSharing
            } else {
                SharingRisk::None
            }
        }
        Schedule::Cyclic { chunk } => {
            let window = footprint_per_iter
                .saturating_mul(u64::from(chunk.max(1)))
                .max(u64::from(access.elem_bytes));
            if window < u64::from(line_bytes) {
                SharingRisk::FalseSharing
            } else {
                SharingRisk::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use hetsel_ir::{cexpr, Kernel, KernelBuilder, Transfer};

    fn store_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("st");
        let a = kb.array("a", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(1.0));
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn cyclic_unit_stride_false_shares() {
        let k = store_kernel();
        let info = analyze(&k);
        let st = &info.accesses[0];
        let b = Binding::new().with("n", 4096);
        // schedule(static,1): adjacent threads write adjacent doubles — the
        // classic false-sharing pattern (8B window < 64B line).
        assert_eq!(
            store_sharing_risk(st, &b, Schedule::Cyclic { chunk: 1 }, 64, 1024),
            SharingRisk::FalseSharing
        );
        // Chunk of 8 doubles exactly covers a line: no sharing.
        assert_eq!(
            store_sharing_risk(st, &b, Schedule::Cyclic { chunk: 8 }, 64, 1024),
            SharingRisk::None
        );
    }

    #[test]
    fn block_schedule_is_safe_for_large_blocks() {
        let k = store_kernel();
        let info = analyze(&k);
        let st = &info.accesses[0];
        let b = Binding::new().with("n", 4096);
        assert_eq!(
            store_sharing_risk(st, &b, Schedule::Block, 64, 1024),
            SharingRisk::None
        );
        // Degenerate: 2 iterations per thread -> 16B block inside one line.
        assert_eq!(
            store_sharing_risk(st, &b, Schedule::Block, 64, 2),
            SharingRisk::FalseSharing
        );
    }

    #[test]
    fn unresolved_stride_is_unknown() {
        // Store with symbolic stride and no binding.
        let mut kb = KernelBuilder::new("sym");
        let a = kb.array(
            "a",
            8,
            &[hetsel_ir::Expr::param("m") * hetsel_ir::Expr::param("n")],
            Transfer::Out,
        );
        let i = kb.parallel_loop(0, "n");
        kb.store(
            a,
            &[hetsel_ir::Expr::param("m") * hetsel_ir::Expr::var(i)],
            cexpr::lit(0.0),
        );
        kb.end_loop();
        let k = kb.finish();
        let info = analyze(&k);
        assert_eq!(
            store_sharing_risk(
                &info.accesses[0],
                &Binding::new(),
                Schedule::Cyclic { chunk: 1 },
                64,
                16
            ),
            SharingRisk::Unknown
        );
    }

    #[test]
    fn loads_never_flag() {
        let mut kb = KernelBuilder::new("ld");
        let a = kb.array("a", 8, &["n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[i.into()]);
        kb.store(y, &[i.into()], ld);
        kb.end_loop();
        let k = kb.finish();
        let info = analyze(&k);
        let load = info.accesses.iter().find(|a| !a.is_store).unwrap();
        assert_eq!(
            store_sharing_risk(load, &Binding::new(), Schedule::Cyclic { chunk: 1 }, 64, 1),
            SharingRisk::None
        );
    }
}
