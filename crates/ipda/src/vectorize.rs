//! CPU-side use of the iteration-point differences: vectorisation legality.
//!
//! The same inter-iteration strides that decide GPU coalescing decide whether
//! the host compiler can emit SIMD code for an inner loop: unit-stride (or
//! uniform) accesses vectorise; gather/scatter patterns do not (profitably).
//! The paper leans on this for the POWER9 story — kernels whose sequential
//! inner loops vectorise benefit from the wider VSX3 support and may become
//! *better* on the newer CPU than on the newer GPU (the CORR flip).

use crate::analysis::KernelAccessInfo;
use hetsel_ir::{Binding, BoundParams, CompiledExpr, Kernel, Lhs, LoopVarId, SymbolTable};
use std::collections::BTreeMap;

/// Vectorisation assessment of one innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorizationInfo {
    /// The loop variable this assessment covers.
    pub loop_var: LoopVarId,
    /// True if all enclosed accesses are unit-stride or uniform and any
    /// loop-carried dependence is a reassociable reduction.
    pub legal: bool,
    /// True if the loop carries a scalar reduction (vectorised with partial
    /// sums; slightly lower efficiency, and a capability where POWER9's VSX3
    /// improves on POWER8).
    pub has_reduction: bool,
    /// True if the loop body contains divisions or square roots (vector
    /// versions have long latency).
    pub has_div_or_sqrt: bool,
}

/// Assesses every loop that directly encloses at least one assignment.
///
/// Returns a map keyed by loop variable. Symbolic strides are resolved under
/// `binding`; unresolvable strides make the loop non-vectorisable (the
/// conservative answer a compiler must give).
pub fn assess(
    kernel: &Kernel,
    info: &KernelAccessInfo,
    binding: &Binding,
) -> BTreeMap<LoopVarId, VectorizationInfo> {
    let mut out: BTreeMap<LoopVarId, VectorizationInfo> = BTreeMap::new();

    // Stride legality per loop, from the access analysis.
    for a in &info.accesses {
        let Some(v) = a.innermost_var() else { continue };
        let entry = out.entry(v).or_insert(VectorizationInfo {
            loop_var: v,
            legal: true,
            has_reduction: false,
            has_div_or_sqrt: false,
        });
        let stride = match &a.affine {
            Some(aff) => aff.coeff(v).eval(binding),
            None => None,
        };
        match stride {
            Some(0) if a.is_store => {
                // A loop-invariant store is a cross-lane conflict.
                entry.legal = false;
            }
            Some(0) | Some(1) | Some(-1) => {}
            _ => entry.legal = false,
        }
    }

    // Reduction and long-latency-op detection, from the statement bodies.
    kernel.walk_assigns(|loops, assign| {
        let Some(l) = loops.last() else { return };
        let entry = out.entry(l.var).or_insert(VectorizationInfo {
            loop_var: l.var,
            legal: true,
            has_reduction: false,
            has_div_or_sqrt: false,
        });
        if matches!(assign.lhs, Lhs::Acc(_)) && assign.rhs.uses_acc() {
            entry.has_reduction = true;
        }
        let ops = assign.rhs.fp_op_counts();
        if ops.div > 0 || ops.sqrt > 0 {
            entry.has_div_or_sqrt = true;
        }
    });

    out
}

/// [`assess`] with its binding-independent parts precomputed: the per-access
/// stride polynomials are lowered to [`CompiledExpr`] bytecode and the
/// reduction/long-latency body flags (which do not depend on the binding at
/// all) are extracted once, at model compile time. [`CompiledAssess::evaluate`]
/// replays both passes of [`assess`] in the same order, so the result map is
/// identical for any binding/slot-view pair built from the same table.
#[derive(Debug, Clone, Default)]
pub struct CompiledAssess {
    /// One entry per access that has an innermost enclosing loop, in access
    /// order. `stride: None` marks a non-affine access.
    stride_checks: Vec<StrideCheck>,
    /// One entry per assignment with an enclosing loop, in walk order.
    body_flags: Vec<BodyFlags>,
}

#[derive(Debug, Clone)]
struct StrideCheck {
    var: LoopVarId,
    stride: Option<CompiledExpr>,
    is_store: bool,
}

#[derive(Debug, Clone)]
struct BodyFlags {
    var: LoopVarId,
    has_reduction: bool,
    has_div_or_sqrt: bool,
}

impl CompiledAssess {
    /// Precomputes the assessment for a kernel, interning stride parameters
    /// into `table`.
    pub fn compile(kernel: &Kernel, info: &KernelAccessInfo, table: &mut SymbolTable) -> Self {
        let mut stride_checks = Vec::new();
        for a in &info.accesses {
            let Some(v) = a.innermost_var() else { continue };
            stride_checks.push(StrideCheck {
                var: v,
                stride: a
                    .affine
                    .as_ref()
                    .map(|aff| CompiledExpr::compile_poly(&aff.coeff(v), table)),
                is_store: a.is_store,
            });
        }
        let mut body_flags = Vec::new();
        kernel.walk_assigns(|loops, assign| {
            let Some(l) = loops.last() else { return };
            let ops = assign.rhs.fp_op_counts();
            body_flags.push(BodyFlags {
                var: l.var,
                has_reduction: matches!(assign.lhs, Lhs::Acc(_)) && assign.rhs.uses_acc(),
                has_div_or_sqrt: ops.div > 0 || ops.sqrt > 0,
            });
        });
        CompiledAssess {
            stride_checks,
            body_flags,
        }
    }

    /// Replays [`assess`] against dense parameter slots.
    pub fn evaluate(&self, params: &BoundParams) -> BTreeMap<LoopVarId, VectorizationInfo> {
        let mut out: BTreeMap<LoopVarId, VectorizationInfo> = BTreeMap::new();
        for c in &self.stride_checks {
            let entry = out.entry(c.var).or_insert(VectorizationInfo {
                loop_var: c.var,
                legal: true,
                has_reduction: false,
                has_div_or_sqrt: false,
            });
            let stride = c.stride.as_ref().and_then(|s| s.eval_closed(params));
            match stride {
                Some(0) if c.is_store => entry.legal = false,
                Some(0) | Some(1) | Some(-1) => {}
                _ => entry.legal = false,
            }
        }
        for f in &self.body_flags {
            let entry = out.entry(f.var).or_insert(VectorizationInfo {
                loop_var: f.var,
                legal: true,
                has_reduction: false,
                has_div_or_sqrt: false,
            });
            entry.has_reduction |= f.has_reduction;
            entry.has_div_or_sqrt |= f.has_div_or_sqrt;
        }
        out
    }
}

hetsel_ir::snap_struct!(StrideCheck {
    var,
    stride,
    is_store,
});

hetsel_ir::snap_struct!(BodyFlags {
    var,
    has_reduction,
    has_div_or_sqrt,
});

hetsel_ir::snap_struct!(CompiledAssess {
    stride_checks,
    body_flags,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use hetsel_ir::{cexpr, KernelBuilder, Transfer};

    fn assess_kernel(k: &Kernel, b: &Binding) -> BTreeMap<LoopVarId, VectorizationInfo> {
        assess(k, &analyze(k), b)
    }

    #[test]
    fn dot_product_inner_loop_vectorises_as_reduction() {
        let mut kb = KernelBuilder::new("dot");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let x = kb.array("x", 8, &["n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
        kb.assign_acc("s", cexpr::add(cexpr::acc(), prod));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        let v = assess_kernel(&k, &Binding::new().with("n", 1100));
        let inner = v[&j];
        assert!(inner.legal);
        assert!(inner.has_reduction);
        assert!(!inner.has_div_or_sqrt);
    }

    #[test]
    fn column_walk_does_not_vectorise() {
        let mut kb = KernelBuilder::new("colwalk");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[j.into(), i.into()]); // stride n over j
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        let v = assess_kernel(&k, &Binding::new().with("n", 1100));
        assert!(!v[&j].legal);
    }

    #[test]
    fn unresolved_symbolic_stride_blocks_vectorisation() {
        let mut kb = KernelBuilder::new("sym");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[j.into(), i.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        // No binding: stride [n] unresolved.
        let v = assess_kernel(&k, &Binding::new());
        assert!(!v[&j].legal);
    }

    #[test]
    fn compiled_assessment_matches_interpreted() {
        // Reuse the kernels above; the compiled replay must agree with the
        // interpreted pass for full, partial and empty bindings.
        let mut kernels = Vec::new();
        for build in [
            dot_kernel as fn() -> Kernel,
            colwalk_kernel as fn() -> Kernel,
        ] {
            kernels.push(build());
        }
        for k in &kernels {
            let info = analyze(k);
            let mut table = SymbolTable::new();
            let compiled = CompiledAssess::compile(k, &info, &mut table);
            for b in [
                Binding::new().with("n", 1100),
                Binding::new().with("n", 0),
                Binding::new(),
            ] {
                let params = table.bind(&b);
                assert_eq!(compiled.evaluate(&params), assess(k, &info, &b));
            }
        }
    }

    fn dot_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("dot");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let x = kb.array("x", 8, &["n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
        kb.assign_acc("s", cexpr::add(cexpr::acc(), prod));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        kb.finish()
    }

    fn colwalk_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("colwalk");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[j.into(), i.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn division_is_flagged() {
        let mut kb = KernelBuilder::new("divk");
        let a = kb.array("a", 8, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[i.into()]);
        kb.store(a, &[i.into()], cexpr::div(ld, cexpr::scalar("mean")));
        kb.end_loop();
        let k = kb.finish();
        let v = assess_kernel(&k, &Binding::new().with("n", 100));
        let vi = v[&i];
        assert!(vi.legal);
        assert!(vi.has_div_or_sqrt);
        assert!(!vi.has_reduction);
    }
}
