//! Process-wide memoization of IPDA results.
//!
//! The paper's architecture runs the symbolic analyses **once per kernel at
//! compile time** and stores the results in the program attribute database
//! (Section III). In this reproduction several consumers — the CPU model's
//! vectorization assessment, its TLB estimator, the GPU model's coalescing
//! census and the attribute database itself — each need the same
//! [`KernelAccessInfo`]. Before this module existed every consumer re-ran
//! [`analyze`] from scratch, so a single cold prediction paid for the
//! analysis three times over.
//!
//! [`analyze_cached`] gives all consumers one shared, immutable copy behind
//! an [`Arc`]. The memo is keyed on the kernel's *structure*, not just its
//! name: property tests and fuzzers generate many distinct kernels under the
//! same name, and two structurally different kernels must never share an
//! analysis. Structure is fingerprinted by hashing the kernel's compact
//! snapshot encoding (a `Debug`-rendering hash before that — the snap bytes
//! are ~4× faster to produce and hash, which matters because the compile
//! path fingerprints every kernel several times), and hash buckets are
//! disambiguated by structural equality, so collisions cost a comparison,
//! never a wrong answer. The table is bounded; on overflow it is cleared
//! wholesale, which keeps the worst case simple and is harmless because
//! entries are pure functions of the key.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hetsel_ir::{Kernel, Snap};

use crate::analysis::{analyze, KernelAccessInfo};

/// Upper bound on memoized kernels. The Polybench suite has a few dozen
/// regions; the bound only matters for generative tests, which would
/// otherwise grow the table without limit.
const MEMO_CAPACITY: usize = 256;

type Bucket = Vec<(Kernel, Arc<KernelAccessInfo>)>;

static MEMO: OnceLock<Mutex<HashMap<u64, Bucket>>> = OnceLock::new();

/// Structural fingerprint of a kernel: the checksum of its snapshot
/// encoding. The encoding is injective over kernel structure (it is what
/// snapshot round-trips rely on), so structurally different kernels get
/// different byte strings; the hash itself is the snapshot checksum family.
fn structural_hash(kernel: &Kernel) -> u64 {
    let mut w = hetsel_ir::SnapWriter::new();
    kernel.snap(&mut w);
    hetsel_ir::snap::checksum(w.bytes())
}

/// Memoized [`analyze`]: returns a shared copy of the IPDA result for this
/// kernel, computing it at most once per distinct kernel structure.
///
/// The returned value is identical to what `analyze(kernel)` would produce;
/// only the sharing differs. A hit allocates one short-lived fingerprint
/// buffer and nothing else.
pub fn analyze_cached(kernel: &Kernel) -> Arc<KernelAccessInfo> {
    let key = structural_hash(kernel);
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(bucket) = map.get(&key) {
            if let Some((_, hit)) = bucket.iter().find(|(k, _)| k == kernel) {
                hetsel_obs::static_counter!("hetsel.ipda.memo.hit").inc();
                return Arc::clone(hit);
            }
        }
    }
    hetsel_obs::static_counter!("hetsel.ipda.memo.miss").inc();
    // Analyze outside the lock; a racing thread may duplicate the work but
    // the results are equal and only one lands in the table.
    let info = {
        let _timer = hetsel_obs::static_histogram!("hetsel.ipda.analyze.ns").start_timer();
        let mut span = hetsel_obs::span("hetsel.ipda.analyze");
        span.record("kernel", kernel.name.as_str());
        Arc::new(analyze(kernel))
    };
    let mut map = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if map.values().map(Vec::len).sum::<usize>() >= MEMO_CAPACITY {
        map.clear();
    }
    let bucket = map.entry(key).or_default();
    if let Some((_, hit)) = bucket.iter().find(|(k, _)| k == kernel) {
        return Arc::clone(hit);
    }
    bucket.push((kernel.clone(), Arc::clone(&info)));
    info
}

/// Seeds the memo with a precomputed analysis result without running the
/// analysis.
///
/// Used by the snapshot loader: a reloaded attribute database carries each
/// region's [`KernelAccessInfo`], and seeding it here means the first
/// decision after a snapshot load takes the memo hit path instead of paying
/// for a fresh IPDA pass. An entry already present for this kernel structure
/// wins (it is equal by construction — both are pure functions of the
/// kernel), so seeding never replaces live shared state.
pub fn seed(kernel: &Kernel, info: Arc<KernelAccessInfo>) {
    let key = structural_hash(kernel);
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if map.values().map(Vec::len).sum::<usize>() >= MEMO_CAPACITY {
        map.clear();
    }
    let bucket = map.entry(key).or_default();
    if bucket.iter().any(|(k, _)| k == kernel) {
        return;
    }
    bucket.push((kernel.clone(), info));
}

/// Empties the memo. For cold-start benchmarks that must measure what a
/// genuinely fresh process pays: the memo is process-global, so without
/// this a second in-process "cold" compile silently reuses the first one's
/// analyses. Correctness is unaffected — entries are pure functions of the
/// kernel and repopulate on demand.
pub fn clear() {
    if let Some(memo) = MEMO.get() {
        memo.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::{cexpr, Expr, KernelBuilder, Transfer};

    /// `for (i) a[s*i] = 1.0` with a parallel `i` loop.
    fn tiny_kernel(name: &str, scale: i64) -> Kernel {
        let mut kb = KernelBuilder::new(name);
        let arr = kb.array("a", 8, &[Expr::param("n")], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.store(arr, &[Expr::var(i) * Expr::Const(scale)], cexpr::lit(1.0));
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn cached_result_matches_direct_analysis() {
        let k = tiny_kernel("memo_direct", 1);
        let cached = analyze_cached(&k);
        let direct = analyze(&k);
        assert_eq!(cached.kernel, direct.kernel);
        assert_eq!(cached.accesses.len(), direct.accesses.len());
        for (c, d) in cached.accesses.iter().zip(&direct.accesses) {
            assert_eq!(format!("{c:?}"), format!("{d:?}"));
        }
    }

    #[test]
    fn repeated_calls_share_one_allocation() {
        let k = tiny_kernel("memo_shared", 1);
        let a = analyze_cached(&k);
        let b = analyze_cached(&k);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn same_name_different_structure_not_conflated() {
        let unit = tiny_kernel("memo_clash", 1);
        let strided = tiny_kernel("memo_clash", 2);
        let i1 = analyze_cached(&unit);
        let i2 = analyze_cached(&strided);
        assert_ne!(
            format!("{:?}", i1.accesses[0].thread_stride),
            format!("{:?}", i2.accesses[0].thread_stride),
        );
    }
}
