//! The throughput engine: an idealised out-of-order scheduler.
//!
//! This is the heart of the analyzer and mirrors what `llvm-mca` does with a
//! target's scheduling model: dispatch the instruction stream in program
//! order at the front-end width, issue each op when its operands are ready
//! and a pipeline of its functional-unit class is free, and measure the
//! steady-state cycles per loop iteration. Dependency chains (e.g. a
//! reduction's serial accumulator) and resource pressure (e.g. two
//! loads/cycle max) emerge naturally rather than from hand-written formulas.
//!
//! Known limitations shared with the real tool (and called out in the
//! paper): no cache hierarchy or memory model — the load latency is a flat
//! parameter the caller may override with a cache-aware effective latency.

use crate::descriptor::CoreDescriptor;
use crate::isa::{LoopBody, OpKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Options for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Loop iterations to simulate. Steady state is measured over the second
    /// half, so ≥ 8 is recommended for per-iteration estimates.
    pub iterations: u32,
    /// Effective load latency in cycles; `None` uses the core's L1 latency.
    pub load_latency: Option<f64>,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            iterations: 16,
            load_latency: None,
        }
    }
}

/// What limits the loop's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Front-end dispatch width.
    Dispatch,
    /// A functional-unit class (by index into the core's `units`).
    Unit(usize),
    /// A data-dependency chain (latency-bound).
    DependencyChain,
}

/// Result of simulating a loop body.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the whole simulated stream, in cycles.
    pub total_cycles: f64,
    /// Steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Busy cycles per iteration *per pipeline* of each functional-unit
    /// class, parallel to the core's `units` vector.
    pub unit_busy_per_iter: Vec<f64>,
    /// Ops per iteration divided by dispatch width: the front-end's
    /// minimum cycles per iteration.
    pub dispatch_cycles_per_iter: f64,
    /// The dominant limiter.
    pub bottleneck: Bottleneck,
}

/// Wall-clock-ordered pool of `count` identical pipelines.
struct UnitPool {
    free_at: BinaryHeap<Reverse<OrderedF64>>,
    inv_throughput: f64,
}

/// f64 wrapper with a total order (times are never NaN).
#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("NaN time")
    }
}

impl UnitPool {
    fn new(count: u32, inv_throughput: f64) -> UnitPool {
        let mut free_at = BinaryHeap::with_capacity(count as usize);
        for _ in 0..count {
            free_at.push(Reverse(OrderedF64(0.0)));
        }
        UnitPool {
            free_at,
            inv_throughput,
        }
    }

    /// Issues an op that is ready at `ready`; returns the issue time.
    fn issue(&mut self, ready: f64) -> f64 {
        let Reverse(OrderedF64(free)) = self.free_at.pop().expect("unit pool empty");
        let issue = ready.max(free);
        self.free_at
            .push(Reverse(OrderedF64(issue + self.inv_throughput)));
        issue
    }
}

/// Simulates `opts.iterations` back-to-back copies of the loop body on the
/// core and reports steady-state throughput.
pub fn simulate(body: &LoopBody, core: &CoreDescriptor, opts: SimOptions) -> SimResult {
    debug_assert_eq!(core.validate(), Ok(()));
    let iters = opts.iterations.max(1);
    let load_lat = opts.load_latency.unwrap_or(core.l1_load_latency);

    let mut pools: Vec<UnitPool> = core
        .units
        .iter()
        .map(|u| UnitPool::new(u.count, u.inv_throughput))
        .collect();
    let unit_of: Vec<usize> = {
        // Dense map OpKind index -> unit class index.
        let mut m = vec![0usize; 10];
        for k in crate::isa::ALL_KINDS {
            m[k.index()] = core.unit_for(k);
        }
        m
    };

    let mut reg_ready: HashMap<u32, f64> = HashMap::with_capacity(body.num_regs as usize);
    let mut busy = vec![0.0f64; core.units.len()];
    let mut dispatched: u64 = 0;
    let width = f64::from(core.dispatch_width);
    let mut completion = 0.0f64;
    let mut iter_finish = vec![0.0f64; iters as usize];

    for it in 0..iters {
        let mut last = 0.0f64;
        for op in &body.ops {
            // In-order dispatch at the front-end width: the op cannot issue
            // before its dispatch cycle.
            let dispatch_cycle = (dispatched as f64 / width).floor();
            dispatched += 1;

            let mut ready = dispatch_cycle;
            for s in &op.srcs {
                if let Some(t) = reg_ready.get(&s.0) {
                    ready = ready.max(*t);
                }
            }
            let uc = unit_of[op.kind.index()];
            let issue = pools[uc].issue(ready);
            // Per-pipeline occupancy: class occupancy divided by pipe count.
            busy[uc] += core.units[uc].inv_throughput / f64::from(core.units[uc].count);

            let latency = if op.kind == OpKind::Load {
                load_lat
            } else {
                core.latency(op.kind)
            };
            let done = issue + latency;
            if let Some(d) = op.dst {
                reg_ready.insert(d.0, done);
            }
            completion = completion.max(done);
            last = last.max(done);
        }
        iter_finish[it as usize] = last;
    }

    let cycles_per_iter = if iters >= 8 {
        let half = (iters / 2) as usize;
        (iter_finish[iters as usize - 1] - iter_finish[half - 1]) / (iters as usize - half) as f64
    } else {
        completion / f64::from(iters)
    };

    let dispatch_cpi = body.ops.len() as f64 / width;
    let unit_busy_per_iter: Vec<f64> = busy.iter().map(|b| b / f64::from(iters)).collect();

    // Attribute the bottleneck to whichever limit the measured throughput
    // sits closest to (ties resolved dispatch < unit < dependency).
    let max_unit = unit_busy_per_iter
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, b)| (i, *b))
        .unwrap_or((0, 0.0));
    let eps = 1e-9;
    let bottleneck = if cycles_per_iter <= dispatch_cpi + eps {
        Bottleneck::Dispatch
    } else if cycles_per_iter <= max_unit.1 + eps {
        Bottleneck::Unit(max_unit.0)
    } else {
        Bottleneck::DependencyChain
    };

    SimResult {
        total_cycles: completion,
        cycles_per_iter,
        unit_busy_per_iter,
        dispatch_cycles_per_iter: dispatch_cpi,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::power9;
    use crate::isa::{MachineOp, Reg};

    fn op(kind: OpKind, srcs: &[u32], dst: Option<u32>) -> MachineOp {
        MachineOp::new(kind, srcs.iter().map(|r| Reg(*r)).collect(), dst.map(Reg))
    }

    /// A serial FMA accumulator: r1 = fma(r0, r2, r1). Throughput must be
    /// bounded by FMA latency (7 cycles on POWER9), not unit count.
    #[test]
    fn reduction_chain_is_latency_bound() {
        let body = LoopBody {
            ops: vec![
                op(OpKind::Load, &[], Some(0)),
                op(OpKind::Fma, &[0, 2, 1], Some(1)),
            ],
            num_regs: 3,
        };
        let r = simulate(&body, &power9(), SimOptions::default());
        assert!(
            (r.cycles_per_iter - 7.0).abs() < 0.5,
            "expected ~7 cycles/iter, got {}",
            r.cycles_per_iter
        );
        assert_eq!(r.bottleneck, Bottleneck::DependencyChain);
    }

    /// Independent FMAs (distinct destinations): throughput-bound by the two
    /// FP pipes, i.e. 4 FMAs / 2 pipes = 2 cycles/iter.
    #[test]
    fn independent_fmas_are_unit_bound() {
        let body = LoopBody {
            ops: vec![
                op(OpKind::Fma, &[8, 9], Some(0)),
                op(OpKind::Fma, &[8, 9], Some(1)),
                op(OpKind::Fma, &[8, 9], Some(2)),
                op(OpKind::Fma, &[8, 9], Some(3)),
            ],
            num_regs: 10,
        };
        let r = simulate(&body, &power9(), SimOptions::default());
        assert!(
            (r.cycles_per_iter - 2.0).abs() < 0.2,
            "expected ~2 cycles/iter, got {}",
            r.cycles_per_iter
        );
        assert!(matches!(r.bottleneck, Bottleneck::Unit(_)));
    }

    /// Many independent single-cycle integer ops: dispatch width (6) limits.
    #[test]
    fn wide_int_stream_is_dispatch_bound() {
        let ops: Vec<MachineOp> = (0..12).map(|i| op(OpKind::IntAlu, &[], Some(i))).collect();
        let body = LoopBody { ops, num_regs: 12 };
        let r = simulate(&body, &power9(), SimOptions::default());
        // 12 ops / 6-wide dispatch = 2 cycles/iter; FXU has only 2 pipes so
        // the unit is actually the tighter limit here (6 cycles).
        assert!(
            (r.cycles_per_iter - 6.0).abs() < 0.3,
            "got {}",
            r.cycles_per_iter
        );
        assert!(matches!(r.bottleneck, Bottleneck::Unit(_)));
    }

    #[test]
    fn load_latency_override_slows_chains() {
        // Pointer chase: r0 = load [r0].
        let body = LoopBody {
            ops: vec![op(OpKind::Load, &[0], Some(0))],
            num_regs: 1,
        };
        let fast = simulate(&body, &power9(), SimOptions::default());
        let slow = simulate(
            &body,
            &power9(),
            SimOptions {
                iterations: 16,
                load_latency: Some(100.0),
            },
        );
        assert!((fast.cycles_per_iter - 5.0).abs() < 0.3);
        assert!((slow.cycles_per_iter - 100.0).abs() < 1.0);
    }

    #[test]
    fn total_cycles_scale_with_iterations() {
        let body = LoopBody {
            ops: vec![op(OpKind::Fma, &[0, 1, 2], Some(2))],
            num_regs: 3,
        };
        let r4 = simulate(
            &body,
            &power9(),
            SimOptions {
                iterations: 4,
                load_latency: None,
            },
        );
        let r16 = simulate(
            &body,
            &power9(),
            SimOptions {
                iterations: 16,
                load_latency: None,
            },
        );
        assert!(r16.total_cycles > r4.total_cycles * 3.0);
    }

    #[test]
    fn empty_body_is_free() {
        let body = LoopBody::default();
        let r = simulate(&body, &power9(), SimOptions::default());
        assert_eq!(r.total_cycles, 0.0);
        assert_eq!(r.cycles_per_iter, 0.0);
    }

    #[test]
    fn fdiv_throughput_dominates() {
        let body = LoopBody {
            ops: vec![op(OpKind::FDiv, &[1, 2], Some(0))],
            num_regs: 3,
        };
        let r = simulate(&body, &power9(), SimOptions::default());
        // Independent divides: bounded by pipe occupancy (inv_throughput=1)
        // only, so nearly 0.5/iter on two pipes; with the dependency-free
        // stream the answer must be well under the 33-cycle latency.
        assert!(r.cycles_per_iter < 33.0);
    }
}
