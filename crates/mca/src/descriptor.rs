//! Core resource descriptors — the scheduler models the analyzer runs against.
//!
//! A [`CoreDescriptor`] plays the role of an LLVM target's `SchedModel`:
//! dispatch width, functional-unit classes with counts and inverse
//! throughputs, and per-op latencies. Presets are provided for the two host
//! processors of the paper's experiments (POWER8 and POWER9).

use crate::isa::{OpKind, ALL_KINDS};

/// A class of identical functional-unit pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitClass {
    /// Human-readable name (e.g. `"LSU"`).
    pub name: &'static str,
    /// Number of identical pipelines.
    pub count: u32,
    /// Op kinds this class executes.
    pub ops: Vec<OpKind>,
    /// Cycles a pipeline is occupied per op (1.0 = fully pipelined).
    pub inv_throughput: f64,
}

/// A processor core model.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDescriptor {
    /// Model name.
    pub name: &'static str,
    /// Ops dispatched per cycle (front-end width).
    pub dispatch_width: u32,
    /// Functional-unit classes. Every [`OpKind`] must be executable by
    /// exactly one class.
    pub units: Vec<UnitClass>,
    /// Result latency per op kind, in cycles (index by [`OpKind::index`]).
    pub latency: [f64; 10],
    /// L1-hit load-to-use latency (the default `Load` latency; simulators
    /// override it with cache-hierarchy-aware effective latencies).
    pub l1_load_latency: f64,
    /// SIMD vector width in 64-bit lanes (2 for 128-bit VSX).
    pub vector_lanes_f64: u32,
    /// Efficiency factor applied to vectorised loops (ISA quality: POWER9's
    /// VSX3 vectorises more idioms with fewer fix-up instructions).
    pub vector_efficiency: f64,
    /// Extra efficiency factor for vectorised *reductions* (partial-sum
    /// shuffles; markedly better on POWER9).
    pub vector_reduction_efficiency: f64,
}

impl CoreDescriptor {
    /// The unit class executing `kind`.
    pub fn unit_for(&self, kind: OpKind) -> usize {
        self.units
            .iter()
            .position(|u| u.ops.contains(&kind))
            .unwrap_or_else(|| panic!("{}: no unit executes {kind}", self.name))
    }

    /// Latency of an op kind.
    pub fn latency(&self, kind: OpKind) -> f64 {
        self.latency[kind.index()]
    }

    /// Validates that every op kind maps to exactly one unit class.
    pub fn validate(&self) -> Result<(), String> {
        for k in ALL_KINDS {
            let n = self.units.iter().filter(|u| u.ops.contains(&k)).count();
            if n != 1 {
                return Err(format!(
                    "{}: op {k} executable by {n} unit classes",
                    self.name
                ));
            }
            if self.latency(k) <= 0.0 {
                return Err(format!("{}: op {k} has non-positive latency", self.name));
            }
        }
        if self.dispatch_width == 0 {
            return Err(format!("{}: zero dispatch width", self.name));
        }
        Ok(())
    }
}

fn latency_table(entries: &[(OpKind, f64)]) -> [f64; 10] {
    let mut t = [1.0; 10];
    for (k, l) in entries {
        t[k.index()] = *l;
    }
    t
}

/// IBM POWER9 core model (SMT4 slice pair, 3.0 GHz in the paper's AC922).
///
/// Latencies and widths follow the POWER9 User Manual at the granularity the
/// analyzer needs: 6-wide dispatch, two load/store superslices, two DP
/// floating-point pipes with 64-bit 7-cycle FMA, strong VSX3 vector support.
pub fn power9() -> CoreDescriptor {
    CoreDescriptor {
        name: "POWER9",
        dispatch_width: 6,
        units: vec![
            UnitClass {
                name: "LSU",
                count: 2,
                ops: vec![OpKind::Load, OpKind::Store],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "FXU",
                count: 2,
                ops: vec![OpKind::IntAlu, OpKind::IntMul],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "FPU",
                count: 2,
                ops: vec![
                    OpKind::FAdd,
                    OpKind::FMul,
                    OpKind::Fma,
                    OpKind::FDiv,
                    OpKind::FSqrt,
                ],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "BRU",
                count: 1,
                ops: vec![OpKind::Branch],
                inv_throughput: 1.0,
            },
        ],
        latency: latency_table(&[
            (OpKind::IntAlu, 1.0),
            (OpKind::IntMul, 5.0),
            (OpKind::Load, 5.0),
            (OpKind::Store, 1.0),
            (OpKind::FAdd, 7.0),
            (OpKind::FMul, 7.0),
            (OpKind::Fma, 7.0),
            (OpKind::FDiv, 33.0),
            (OpKind::FSqrt, 40.0),
            (OpKind::Branch, 1.0),
        ]),
        l1_load_latency: 5.0,
        vector_lanes_f64: 2,
        vector_efficiency: 0.95,
        vector_reduction_efficiency: 0.85,
    }
}

/// IBM POWER8 core model (the paper's K80 host, also clocked at ~3 GHz for
/// the comparison).
///
/// Slightly narrower effective FP issue and materially weaker vector
/// support: VSX without the POWER9 VSX3 additions, which is the paper's
/// explanation for the CORR benchmark flipping from GPU-profitable on the
/// POWER8 machine to host-profitable on POWER9.
pub fn power8() -> CoreDescriptor {
    CoreDescriptor {
        name: "POWER8",
        dispatch_width: 6,
        units: vec![
            UnitClass {
                name: "LSU",
                count: 2,
                ops: vec![OpKind::Load, OpKind::Store],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "FXU",
                count: 2,
                ops: vec![OpKind::IntAlu, OpKind::IntMul],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "FPU",
                count: 2,
                ops: vec![
                    OpKind::FAdd,
                    OpKind::FMul,
                    OpKind::Fma,
                    OpKind::FDiv,
                    OpKind::FSqrt,
                ],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "BRU",
                count: 1,
                ops: vec![OpKind::Branch],
                inv_throughput: 1.0,
            },
        ],
        latency: latency_table(&[
            (OpKind::IntAlu, 1.0),
            (OpKind::IntMul, 5.0),
            (OpKind::Load, 4.0),
            (OpKind::Store, 1.0),
            (OpKind::FAdd, 6.0),
            (OpKind::FMul, 6.0),
            (OpKind::Fma, 6.0),
            (OpKind::FDiv, 33.0),
            (OpKind::FSqrt, 42.0),
            (OpKind::Branch, 1.0),
        ]),
        l1_load_latency: 4.0,
        vector_lanes_f64: 2,
        vector_efficiency: 0.70,
        vector_reduction_efficiency: 0.45,
    }
}

/// Intel Skylake-SP core model (e.g. Xeon Gold 6148: 20 cores at ~2.4 GHz
/// sustained AVX clock).
///
/// The paper notes that "POWER9 is the only viable host architecture for
/// our experiments at the time of writing" because of what LLVM-MCA
/// demands from a target's instruction scheduler. In this reimplementation
/// a host backend is just a descriptor: 4-wide allocation into 8 ports, two
/// 512-bit FMA pipes (4-cycle latency), two load ports, AVX-512's 8
/// f64 / 16 f32 lanes.
pub fn skylake() -> CoreDescriptor {
    CoreDescriptor {
        name: "Skylake-SP",
        dispatch_width: 4,
        units: vec![
            UnitClass {
                name: "LSU",
                count: 2,
                ops: vec![OpKind::Load, OpKind::Store],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "ALU",
                count: 4,
                ops: vec![OpKind::IntAlu, OpKind::IntMul],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "FMA",
                count: 2,
                ops: vec![
                    OpKind::FAdd,
                    OpKind::FMul,
                    OpKind::Fma,
                    OpKind::FDiv,
                    OpKind::FSqrt,
                ],
                inv_throughput: 1.0,
            },
            UnitClass {
                name: "BRU",
                count: 1,
                ops: vec![OpKind::Branch],
                inv_throughput: 1.0,
            },
        ],
        latency: latency_table(&[
            (OpKind::IntAlu, 1.0),
            (OpKind::IntMul, 3.0),
            (OpKind::Load, 5.0),
            (OpKind::Store, 1.0),
            (OpKind::FAdd, 4.0),
            (OpKind::FMul, 4.0),
            (OpKind::Fma, 4.0),
            (OpKind::FDiv, 14.0),
            (OpKind::FSqrt, 18.0),
            (OpKind::Branch, 1.0),
        ]),
        l1_load_latency: 5.0,
        vector_lanes_f64: 8,
        vector_efficiency: 0.9,
        vector_reduction_efficiency: 0.8,
    }
}

hetsel_ir::snap_struct!(UnitClass {
    name,
    count,
    ops,
    inv_throughput,
});

hetsel_ir::snap_struct!(CoreDescriptor {
    name,
    dispatch_width,
    units,
    latency,
    l1_load_latency,
    vector_lanes_f64,
    vector_efficiency,
    vector_reduction_efficiency,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        power8().validate().unwrap();
        power9().validate().unwrap();
        skylake().validate().unwrap();
    }

    #[test]
    fn skylake_has_wide_vectors_short_fp_latency() {
        let sk = skylake();
        assert_eq!(sk.vector_lanes_f64, 8);
        assert!(sk.latency(OpKind::Fma) < power9().latency(OpKind::Fma));
        assert!(sk.dispatch_width < power9().dispatch_width);
    }

    #[test]
    fn unit_mapping() {
        let p9 = power9();
        assert_eq!(p9.units[p9.unit_for(OpKind::Load)].name, "LSU");
        assert_eq!(p9.units[p9.unit_for(OpKind::Fma)].name, "FPU");
        assert_eq!(p9.units[p9.unit_for(OpKind::Branch)].name, "BRU");
    }

    #[test]
    fn power9_vector_support_exceeds_power8() {
        assert!(power9().vector_efficiency > power8().vector_efficiency);
        assert!(power9().vector_reduction_efficiency > power8().vector_reduction_efficiency);
    }

    #[test]
    fn invalid_descriptor_detected() {
        let mut d = power9();
        d.units[0].ops.push(OpKind::Branch); // Branch now executable twice
        assert!(d.validate().is_err());
    }
}
