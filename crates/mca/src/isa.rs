//! The abstract machine ISA the analyzer operates on.
//!
//! Kernels are lowered to a generic load/store RISC instruction stream —
//! the role POWER9 assembly plays for LLVM-MCA in the paper. The exact
//! opcode set matters less than what the scheduler needs: which functional
//! unit an op occupies, for how long, and which values it depends on.

use std::fmt;

/// Operation classes distinguished by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer ALU op (address updates, induction increments, compares).
    IntAlu,
    /// Integer multiply (un-strength-reduced address arithmetic).
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Floating-point add/subtract.
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Fused multiply-add.
    Fma,
    /// Floating-point divide (long latency, poorly pipelined).
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Branch (loop back-edge, conditionals).
    Branch,
}

/// All op kinds, for iteration and dense tables.
pub const ALL_KINDS: [OpKind; 10] = [
    OpKind::IntAlu,
    OpKind::IntMul,
    OpKind::Load,
    OpKind::Store,
    OpKind::FAdd,
    OpKind::FMul,
    OpKind::Fma,
    OpKind::FDiv,
    OpKind::FSqrt,
    OpKind::Branch,
];

impl OpKind {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            OpKind::IntAlu => 0,
            OpKind::IntMul => 1,
            OpKind::Load => 2,
            OpKind::Store => 3,
            OpKind::FAdd => 4,
            OpKind::FMul => 5,
            OpKind::Fma => 6,
            OpKind::FDiv => 7,
            OpKind::FSqrt => 8,
            OpKind::Branch => 9,
        }
    }

    /// True for floating-point compute ops.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpKind::FAdd | OpKind::FMul | OpKind::Fma | OpKind::FDiv | OpKind::FSqrt
        )
    }

    /// True for memory ops.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IntAlu => "ialu",
            OpKind::IntMul => "imul",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::FAdd => "fadd",
            OpKind::FMul => "fmul",
            OpKind::Fma => "fma",
            OpKind::FDiv => "fdiv",
            OpKind::FSqrt => "fsqrt",
            OpKind::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// A virtual register. Within a [`LoopBody`] registers are reused across
/// iterations; the scheduler renames them, so a register written late in the
/// body and read early creates a loop-carried dependency (the accumulator
/// chain of a reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u32);

/// One machine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineOp {
    /// Operation class.
    pub kind: OpKind,
    /// Input registers.
    pub srcs: Vec<Reg>,
    /// Output register (None for stores and branches).
    pub dst: Option<Reg>,
}

impl MachineOp {
    /// Constructs an op.
    pub fn new(kind: OpKind, srcs: Vec<Reg>, dst: Option<Reg>) -> MachineOp {
        MachineOp { kind, srcs, dst }
    }
}

/// A straight-line loop body in the abstract ISA.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopBody {
    /// Ops in program order; one copy per loop iteration.
    pub ops: Vec<MachineOp>,
    /// Number of virtual registers referenced.
    pub num_regs: u32,
}

impl LoopBody {
    /// Number of ops of a given kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// Number of memory operations.
    pub fn mem_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_mem()).count()
    }

    /// Number of floating-point operations.
    pub fn fp_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_fp()).count()
    }

    /// Total ops per iteration.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

hetsel_ir::snap_unit_enum!(OpKind {
    0 => IntAlu,
    1 => IntMul,
    2 => Load,
    3 => Store,
    4 => FAdd,
    5 => FMul,
    6 => Fma,
    7 => FDiv,
    8 => FSqrt,
    9 => Branch,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = vec![false; ALL_KINDS.len()];
        for k in ALL_KINDS {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn classification() {
        assert!(OpKind::Fma.is_fp());
        assert!(!OpKind::Load.is_fp());
        assert!(OpKind::Load.is_mem());
        assert!(OpKind::Store.is_mem());
        assert!(!OpKind::Branch.is_mem());
    }

    #[test]
    fn body_counts() {
        let b = LoopBody {
            ops: vec![
                MachineOp::new(OpKind::Load, vec![], Some(Reg(0))),
                MachineOp::new(OpKind::Fma, vec![Reg(0), Reg(1)], Some(Reg(1))),
                MachineOp::new(OpKind::IntAlu, vec![Reg(2)], Some(Reg(2))),
                MachineOp::new(OpKind::Branch, vec![Reg(2)], None),
            ],
            num_regs: 3,
        };
        assert_eq!(b.count(OpKind::Load), 1);
        assert_eq!(b.mem_ops(), 1);
        assert_eq!(b.fp_ops(), 1);
        assert_eq!(b.len(), 4);
    }
}
