//! Lowering from the kernel IR to the abstract machine ISA.
//!
//! Mirrors what a backend does before `llvm-mca` sees the code: array
//! accesses become strength-reduced address updates plus loads/stores,
//! `a + b*c` dataflow fuses into FMAs, named scalars and literals live in
//! registers, and every loop iteration carries induction-variable and
//! back-edge overhead ops. The register assignment deliberately reuses
//! registers across iterations so that reductions show up as loop-carried
//! dependency chains in the scheduler.

use crate::descriptor::CoreDescriptor;
use crate::isa::{LoopBody, MachineOp, OpKind, Reg};
use crate::sched::{simulate, SimOptions, SimResult};
use hetsel_ir::{Assign, CExpr, Kernel, Lhs, Loop, Stmt};
use std::collections::HashMap;

/// Lowering state for one kernel body.
struct Lowerer {
    ops: Vec<MachineOp>,
    next_reg: u32,
    /// Named scalars (kernel arguments and accumulators) -> register.
    scalars: HashMap<String, Reg>,
    /// Register holding materialised literals (loop-invariant, one is enough).
    lit_reg: Option<Reg>,
    /// Accumulators read before being written in this block: the register
    /// their first read consumed. After lowering, those reads are patched to
    /// consume the accumulator's *final* register, closing the loop-carried
    /// dependency cycle the scheduler needs to see.
    acc_initial: HashMap<String, Reg>,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            ops: Vec::new(),
            next_reg: 0,
            scalars: HashMap::new(),
            lit_reg: None,
            acc_initial: HashMap::new(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, kind: OpKind, srcs: Vec<Reg>, dst: Option<Reg>) -> Option<Reg> {
        self.ops.push(MachineOp::new(kind, srcs, dst));
        dst
    }

    /// Register for a named scalar; allocated on first use (kernel arguments
    /// are loop-invariant and pre-loaded, costing nothing per iteration).
    fn scalar_reg(&mut self, name: &str) -> Reg {
        if let Some(r) = self.scalars.get(name) {
            return *r;
        }
        let r = self.fresh();
        self.scalars.insert(name.to_string(), r);
        r
    }

    fn literal_reg(&mut self) -> Reg {
        if let Some(r) = self.lit_reg {
            return r;
        }
        let r = self.fresh();
        self.lit_reg = Some(r);
        r
    }

    /// Address computation for an array reference: in a steady-state loop
    /// the compiler strength-reduces indexing to one pointer update per
    /// reference (the update chains with itself across iterations, as real
    /// induction registers do).
    fn addr(&mut self, r: &hetsel_ir::ArrayRef) -> Reg {
        let key = format!("__addr_{}_{}", r.array.0, self.addr_disambig(r));
        let reg = self.scalar_reg(&key);
        self.emit(OpKind::IntAlu, vec![reg], Some(reg));
        reg
    }

    /// Distinct references need distinct induction registers; disambiguate
    /// by the reference's index expressions.
    fn addr_disambig(&self, r: &hetsel_ir::ArrayRef) -> String {
        format!("{:?}", r.index)
    }

    fn load(&mut self, r: &hetsel_ir::ArrayRef) -> Reg {
        let a = self.addr(r);
        let d = self.fresh();
        self.emit(OpKind::Load, vec![a], Some(d));
        d
    }

    fn store(&mut self, r: &hetsel_ir::ArrayRef, val: Reg) {
        let a = self.addr(r);
        self.emit(OpKind::Store, vec![a, val], None);
    }

    /// Lowers a dataflow expression; `acc` is the register holding the
    /// destination's previous value (for `CExpr::Acc`).
    fn cexpr(&mut self, e: &CExpr, acc: Option<Reg>) -> Reg {
        match e {
            CExpr::Load(r) => self.load(r),
            CExpr::Scalar(name) => self.scalar_reg(name),
            CExpr::Lit(_) => self.literal_reg(),
            CExpr::Acc => acc.expect("CExpr::Acc outside read-modify-write"),
            CExpr::Add(a, b) => {
                // FMA fusion: x + y*z or y*z + x.
                if let CExpr::Mul(y, z) = b.as_ref() {
                    let ra = self.cexpr(a, acc);
                    let ry = self.cexpr(y, acc);
                    let rz = self.cexpr(z, acc);
                    let d = self.fresh();
                    self.emit(OpKind::Fma, vec![ry, rz, ra], Some(d));
                    return d;
                }
                if let CExpr::Mul(y, z) = a.as_ref() {
                    let ry = self.cexpr(y, acc);
                    let rz = self.cexpr(z, acc);
                    let rb = self.cexpr(b, acc);
                    let d = self.fresh();
                    self.emit(OpKind::Fma, vec![ry, rz, rb], Some(d));
                    return d;
                }
                let (ra, rb) = (self.cexpr(a, acc), self.cexpr(b, acc));
                let d = self.fresh();
                self.emit(OpKind::FAdd, vec![ra, rb], Some(d));
                d
            }
            CExpr::Sub(a, b) => {
                // Fused multiply-subtract: x - y*z.
                if let CExpr::Mul(y, z) = b.as_ref() {
                    let ra = self.cexpr(a, acc);
                    let ry = self.cexpr(y, acc);
                    let rz = self.cexpr(z, acc);
                    let d = self.fresh();
                    self.emit(OpKind::Fma, vec![ry, rz, ra], Some(d));
                    return d;
                }
                let (ra, rb) = (self.cexpr(a, acc), self.cexpr(b, acc));
                let d = self.fresh();
                self.emit(OpKind::FAdd, vec![ra, rb], Some(d));
                d
            }
            CExpr::Mul(a, b) => {
                let (ra, rb) = (self.cexpr(a, acc), self.cexpr(b, acc));
                let d = self.fresh();
                self.emit(OpKind::FMul, vec![ra, rb], Some(d));
                d
            }
            CExpr::Div(a, b) => {
                let (ra, rb) = (self.cexpr(a, acc), self.cexpr(b, acc));
                let d = self.fresh();
                self.emit(OpKind::FDiv, vec![ra, rb], Some(d));
                d
            }
            CExpr::Sqrt(a) => {
                let ra = self.cexpr(a, acc);
                let d = self.fresh();
                self.emit(OpKind::FSqrt, vec![ra, d], Some(d));
                d
            }
        }
    }

    fn assign(&mut self, a: &Assign) {
        match &a.lhs {
            Lhs::Acc(name) => {
                // The accumulator's previous value lives in its register; a
                // read before any write in this block is a loop-carried use.
                let prev = if a.rhs.uses_acc() {
                    let first_use = !self.scalars.contains_key(name);
                    let r = self.scalar_reg(name);
                    if first_use {
                        self.acc_initial.insert(name.clone(), r);
                    }
                    Some(r)
                } else {
                    None
                };
                let val = self.cexpr(&a.rhs, prev);
                // Bind the name to the freshly produced value register so
                // subsequent reads (and the next iteration) depend on it.
                self.scalars.insert(name.clone(), val);
            }
            Lhs::Array(r) => {
                let prev = if a.rhs.uses_acc() {
                    Some(self.load(r))
                } else {
                    None
                };
                let val = self.cexpr(&a.rhs, prev);
                self.store(r, val);
            }
        }
    }

    /// Induction increment, exit compare, and back-edge branch.
    fn loop_overhead(&mut self) {
        let ind = self.scalar_reg("__induction");
        self.emit(OpKind::IntAlu, vec![ind], Some(ind));
        let cmp = self.fresh();
        self.emit(OpKind::IntAlu, vec![ind], Some(cmp));
        self.emit(OpKind::Branch, vec![cmp], None);
    }

    /// Finishes without closing accumulator cycles: each iteration's first
    /// accumulator read stays on the pre-loop register, so iterations are
    /// independent (the unrolled/partial-sums schedule).
    fn finish_unchained(self) -> LoopBody {
        LoopBody {
            ops: self.ops,
            num_regs: self.next_reg,
        }
    }

    fn finish(mut self) -> LoopBody {
        // Close loop-carried accumulator cycles: the first (pre-write) read
        // of each accumulator must consume the value produced by its *last*
        // update, so that replaying the op list chains iterations together.
        for (name, initial) in &self.acc_initial {
            let final_reg = self.scalars[name];
            if final_reg != *initial {
                for op in &mut self.ops {
                    for s in &mut op.srcs {
                        if *s == *initial {
                            *s = final_reg;
                        }
                    }
                }
            }
        }
        LoopBody {
            ops: self.ops,
            num_regs: self.next_reg,
        }
    }
}

/// Lowers a run of assignments into a loop body.
///
/// With `loop_overhead`, the body additionally carries the iteration's
/// induction/compare/branch ops (use for bodies that *are* a loop, not for
/// straight-line statement runs).
pub fn lower_assigns(assigns: &[&Assign], loop_overhead: bool) -> LoopBody {
    lower_assigns_opts(assigns, loop_overhead, true)
}

/// As [`lower_assigns`], with control over loop-carried accumulator chains.
///
/// With `carry_accumulators = false` the reduction chain is left open:
/// iterations become independent, modelling a compiler that unrolls the
/// loop with multiple partial accumulators (the throughput-optimal
/// schedule). The real code sits between the two: see
/// `hetsel-cpusim`'s use of both bounds.
pub fn lower_assigns_opts(
    assigns: &[&Assign],
    loop_overhead: bool,
    carry_accumulators: bool,
) -> LoopBody {
    let mut l = Lowerer::new();
    for a in assigns {
        l.assign(a);
    }
    if loop_overhead {
        l.loop_overhead();
    }
    if carry_accumulators {
        l.finish()
    } else {
        l.finish_unchained()
    }
}

/// A recursive trip-count oracle: given a loop header, how many iterations
/// should the analysis assume? The paper's static abstraction answers "128"
/// for every sequential loop; the hybrid runtime answers with real values.
pub type TripFn<'a> = dyn Fn(&Loop) -> f64 + 'a;

/// Estimated cycles to execute a statement list once on `core`, composing
/// MCA throughput analysis over the loop structure:
/// straight-line assignment runs contribute their block latency; sequential
/// loops contribute `trips × steady-state cycles-per-iteration`.
pub fn nest_cycles(
    kernel: &Kernel,
    stmts: &[Stmt],
    core: &CoreDescriptor,
    trip: &TripFn,
    load_latency: Option<f64>,
) -> f64 {
    nest_cycles_opts(kernel, stmts, core, trip, load_latency, true)
}

/// As [`nest_cycles`], with control over accumulator chains (see
/// [`lower_assigns_opts`]).
pub fn nest_cycles_opts(
    kernel: &Kernel,
    stmts: &[Stmt],
    core: &CoreDescriptor,
    trip: &TripFn,
    load_latency: Option<f64>,
    carry: bool,
) -> f64 {
    let _ = kernel; // reserved for future per-array latency hints
    let mut total = 0.0;
    let mut run: Vec<&Assign> = Vec::new();
    let flush = |run: &mut Vec<&Assign>, total: &mut f64| {
        if run.is_empty() {
            return;
        }
        let body = lower_assigns_opts(run, false, carry);
        let r = simulate(
            &body,
            core,
            SimOptions {
                iterations: 1,
                load_latency,
            },
        );
        *total += r.total_cycles;
        run.clear();
    };
    for s in stmts {
        match s {
            Stmt::Assign(a) => run.push(a),
            Stmt::For(l, body) => {
                flush(&mut run, &mut total);
                let trips = trip(l).max(0.0);
                let inner = loop_cycles_per_iter(kernel, body, core, trip, load_latency, carry);
                // Pipeline fill: roughly one iteration of latency on entry.
                total += trips * inner.throughput + inner.startup;
            }
        }
    }
    flush(&mut run, &mut total);
    total
}

/// Per-iteration cost of a loop body (steady-state) plus a startup estimate.
struct LoopCost {
    throughput: f64,
    startup: f64,
}

fn loop_cycles_per_iter(
    kernel: &Kernel,
    body: &[Stmt],
    core: &CoreDescriptor,
    trip: &TripFn,
    load_latency: Option<f64>,
    carry: bool,
) -> LoopCost {
    let all_assigns: Vec<&Assign> = body
        .iter()
        .filter_map(|s| match s {
            Stmt::Assign(a) => Some(a),
            Stmt::For(..) => None,
        })
        .collect();
    let has_inner_loop = body.iter().any(|s| matches!(s, Stmt::For(..)));
    if !has_inner_loop {
        // Innermost loop: full steady-state throughput analysis.
        let lowered = lower_assigns_opts(&all_assigns, true, carry);
        let r = simulate(
            &lowered,
            core,
            SimOptions {
                iterations: 16,
                load_latency,
            },
        );
        LoopCost {
            throughput: r.cycles_per_iter,
            startup: r.total_cycles / 16.0, // ~ fill cost of one iteration
        }
    } else {
        // Mixed body: recurse; iterations of this loop do not overlap
        // (conservative, matching MCA's block-at-a-time view).
        let per_iter = nest_cycles_opts(kernel, body, core, trip, load_latency, carry) + 3.0;
        LoopCost {
            throughput: per_iter,
            startup: 0.0,
        }
    }
}

/// Analyzes the per-parallel-iteration cost of a kernel: the
/// `Machine_cycles_per_iter` input of the Liao/Chapman model.
pub fn parallel_iter_cycles(
    kernel: &Kernel,
    core: &CoreDescriptor,
    trip: &TripFn,
    load_latency: Option<f64>,
) -> f64 {
    parallel_iter_cycles_opts(kernel, core, trip, load_latency, true)
}

/// As [`parallel_iter_cycles`], with control over accumulator chains.
pub fn parallel_iter_cycles_opts(
    kernel: &Kernel,
    core: &CoreDescriptor,
    trip: &TripFn,
    load_latency: Option<f64>,
    carry: bool,
) -> f64 {
    let body = kernel.parallel_body();
    // A straight-line parallel body *is* the loop body of the parallel
    // loop: consecutive parallel iterations pipeline on the core, so the
    // steady-state throughput applies, not the one-pass latency.
    if body.iter().all(|s| matches!(s, Stmt::Assign(_))) {
        let assigns: Vec<&Assign> = body
            .iter()
            .map(|s| match s {
                Stmt::Assign(a) => a,
                _ => unreachable!(),
            })
            .collect();
        let lowered = lower_assigns_opts(&assigns, true, carry);
        let r = simulate(
            &lowered,
            core,
            SimOptions {
                iterations: 16,
                load_latency,
            },
        );
        return r.cycles_per_iter;
    }
    // Body of one parallel iteration plus the parallel loop's own
    // per-iteration overhead ops (induction/compare/branch ≈ 2 cycles,
    // hidden behind the body on a 6-wide core; we charge 1).
    nest_cycles_opts(kernel, body, core, trip, load_latency, carry) + 1.0
}

/// Convenience: simulate a lowered body and return the full report.
pub fn analyze_block(assigns: &[&Assign], core: &CoreDescriptor, opts: SimOptions) -> SimResult {
    let body = lower_assigns(assigns, true);
    simulate(&body, core, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::power9;
    use hetsel_ir::{cexpr, KernelBuilder, Transfer};

    fn gemm_like() -> Kernel {
        let mut kb = KernelBuilder::new("gemm");
        let a = kb.array("A", 8, &["n".into(), "n".into()], Transfer::In);
        let b = kb.array("B", 8, &["n".into(), "n".into()], Transfer::In);
        let c = kb.array("C", 8, &["n".into(), "n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let j = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let k = kb.seq_loop(0, "n");
        let prod = cexpr::mul(
            kb.load(a, &[i.into(), k.into()]),
            kb.load(b, &[k.into(), j.into()]),
        );
        kb.assign_acc("s", cexpr::add(cexpr::acc(), prod));
        kb.end_loop();
        kb.store(
            c,
            &[i.into(), j.into()],
            cexpr::mul(cexpr::scalar("alpha"), cexpr::scalar("s")),
        );
        kb.end_loop();
        kb.end_loop();
        kb.finish()
    }

    /// Finds the innermost all-assignment loop body of a kernel.
    fn find_inner(stmts: &[Stmt]) -> Option<&Vec<Stmt>> {
        for s in stmts {
            if let Stmt::For(_, body) = s {
                if body.iter().all(|x| matches!(x, Stmt::Assign(_))) {
                    return Some(body);
                }
                if let Some(b) = find_inner(body) {
                    return Some(b);
                }
            }
        }
        None
    }

    fn inner_assigns(k: &Kernel) -> Vec<&Assign> {
        find_inner(k.parallel_body())
            .expect("no inner loop")
            .iter()
            .map(|s| match s {
                Stmt::Assign(a) => a,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn lowering_fuses_fma() {
        let k = gemm_like();
        let body = lower_assigns(&inner_assigns(&k), false);
        assert_eq!(body.count(OpKind::Fma), 1);
        assert_eq!(body.count(OpKind::FMul), 0);
        assert_eq!(body.count(OpKind::FAdd), 0);
        assert_eq!(body.count(OpKind::Load), 2);
    }

    #[test]
    fn gemm_inner_loop_is_serial_fma_chain() {
        // One FMA per iteration feeding itself: ~7 cycles/iter on POWER9.
        let k = gemm_like();
        let r = analyze_block(&inner_assigns(&k), &power9(), SimOptions::default());
        assert!(
            r.cycles_per_iter >= 6.0 && r.cycles_per_iter <= 9.0,
            "expected latency-bound ~7 cycles/iter, got {}",
            r.cycles_per_iter
        );
    }

    #[test]
    fn nest_cycles_scale_with_trip_counts() {
        let k = gemm_like();
        let core = power9();
        let c128 = parallel_iter_cycles(&k, &core, &|_| 128.0, None);
        let c256 = parallel_iter_cycles(&k, &core, &|_| 256.0, None);
        assert!(c256 > c128 * 1.8, "c128={c128} c256={c256}");
        assert!(c128 > 128.0 * 5.0, "inner loop should dominate: {c128}");
    }

    #[test]
    fn straight_line_body_has_positive_cost() {
        let mut kb = KernelBuilder::new("sl");
        let a = kb.array("a", 8, &["n".into()], Transfer::In);
        let b = kb.array("b", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[i.into()]);
        kb.store(b, &[i.into()], cexpr::mul(cexpr::scalar("alpha"), ld));
        kb.end_loop();
        let k = kb.finish();
        let c = parallel_iter_cycles(&k, &power9(), &|_| 128.0, None);
        assert!(c > 1.0 && c < 100.0, "got {c}");
    }

    #[test]
    fn load_latency_override_increases_cost() {
        let k = gemm_like();
        let core = power9();
        let fast = parallel_iter_cycles(&k, &core, &|_| 128.0, None);
        let slow = parallel_iter_cycles(&k, &core, &|_| 128.0, Some(60.0));
        assert!(slow > fast, "slow={slow} fast={fast}");
    }
}
