//! # hetsel-mca — a machine-code analyzer in the mould of LLVM-MCA
//!
//! The paper replaces the OpenUH compiler's internal per-iteration cycle
//! estimate with LLVM-MCA: a tool that replays an assembly sequence through
//! the compiler's own instruction-scheduling model to predict its throughput
//! (Section IV.A.1). This crate reproduces that component from scratch:
//!
//! * kernels are [lowered](lower) from the IR to a generic load/store
//!   machine ISA (strength-reduced addressing, FMA fusion, loop overhead);
//! * a [scheduler engine](sched) replays the stream against a
//!   [`CoreDescriptor`] — dispatch width, functional-unit pipelines with
//!   latencies and inverse throughputs — exactly the information an LLVM
//!   `SchedModel` carries;
//! * the steady-state **cycles per iteration** feeds the
//!   `Machine_cycles_per_iter` term of the Liao/Chapman OpenMP cost model.
//!
//! Like the real tool, the engine has *no cache or memory-type model*: load
//! latency is a flat parameter (the paper lists this as the CPU model's main
//! limitation). The timing simulator in `hetsel-cpusim` closes the loop by
//! re-running the same engine with cache-aware effective load latencies.

#![warn(missing_docs)]

pub mod compile;
pub mod descriptor;
pub mod isa;
pub mod loadout;
pub mod lower;
pub mod report;
pub mod sched;

pub use compile::{compile_loadout, compile_parallel_iter_cycles, CompiledCycles, CompiledLoadout};
pub use descriptor::{power8, power9, skylake, CoreDescriptor, UnitClass};
pub use isa::{LoopBody, MachineOp, OpKind, Reg, ALL_KINDS};
pub use loadout::{assume_128, loadout, Loadout};
pub use lower::{
    analyze_block, lower_assigns, lower_assigns_opts, nest_cycles, nest_cycles_opts,
    parallel_iter_cycles, parallel_iter_cycles_opts, TripFn,
};
pub use report::{report, Report};
pub use sched::{simulate, Bottleneck, SimOptions, SimResult};
