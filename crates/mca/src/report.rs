//! Human-readable analysis reports, in the spirit of `llvm-mca`'s summary
//! view: instruction mix, resource pressure per functional unit, and the
//! identified bottleneck.

use crate::descriptor::CoreDescriptor;
use crate::isa::{LoopBody, ALL_KINDS};
use crate::sched::{Bottleneck, SimResult};
use std::fmt;

/// A formatted analysis report for one loop body.
#[derive(Debug, Clone)]
pub struct Report {
    /// Core the analysis ran against.
    pub core: &'static str,
    /// Instruction counts per kind, in [`ALL_KINDS`] order.
    pub mix: Vec<(&'static str, usize)>,
    /// Total ops per iteration.
    pub ops_per_iter: usize,
    /// Steady-state cycles per iteration.
    pub cycles_per_iter: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Resource pressure per unit class: `(name, busy cycles per iteration
    /// per pipeline)`.
    pub pressure: Vec<(&'static str, f64)>,
    /// Bottleneck description.
    pub bottleneck: String,
}

/// Builds a report from a lowered body and its simulation result.
pub fn report(body: &LoopBody, core: &CoreDescriptor, sim: &SimResult) -> Report {
    let mix: Vec<(&'static str, usize)> = ALL_KINDS
        .iter()
        .map(|k| {
            let name: &'static str = match k {
                crate::isa::OpKind::IntAlu => "ialu",
                crate::isa::OpKind::IntMul => "imul",
                crate::isa::OpKind::Load => "load",
                crate::isa::OpKind::Store => "store",
                crate::isa::OpKind::FAdd => "fadd",
                crate::isa::OpKind::FMul => "fmul",
                crate::isa::OpKind::Fma => "fma",
                crate::isa::OpKind::FDiv => "fdiv",
                crate::isa::OpKind::FSqrt => "fsqrt",
                crate::isa::OpKind::Branch => "branch",
            };
            (name, body.count(*k))
        })
        .filter(|(_, n)| *n > 0)
        .collect();
    let pressure: Vec<(&'static str, f64)> = core
        .units
        .iter()
        .zip(&sim.unit_busy_per_iter)
        .map(|(u, b)| (u.name, *b))
        .collect();
    let bottleneck = match sim.bottleneck {
        Bottleneck::Dispatch => "front-end dispatch width".to_string(),
        Bottleneck::Unit(i) => format!("{} pipelines", core.units[i].name),
        Bottleneck::DependencyChain => "data-dependency chain (latency-bound)".to_string(),
    };
    let ipc = if sim.cycles_per_iter > 0.0 {
        body.ops.len() as f64 / sim.cycles_per_iter
    } else {
        0.0
    };
    Report {
        core: core.name,
        mix,
        ops_per_iter: body.ops.len(),
        cycles_per_iter: sim.cycles_per_iter,
        ipc,
        pressure,
        bottleneck,
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[mca] target: {}", self.core)?;
        writeln!(
            f,
            "[mca] {} ops/iter, {:.2} cycles/iter, IPC {:.2}",
            self.ops_per_iter, self.cycles_per_iter, self.ipc
        )?;
        write!(f, "[mca] mix:")?;
        for (name, n) in &self.mix {
            write!(f, " {name}={n}")?;
        }
        writeln!(f)?;
        write!(f, "[mca] pressure:")?;
        for (name, p) in &self.pressure {
            write!(f, " {name}={p:.2}")?;
        }
        writeln!(f)?;
        writeln!(f, "[mca] bottleneck: {}", self.bottleneck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::power9;
    use crate::isa::{MachineOp, OpKind, Reg};
    use crate::sched::{simulate, SimOptions};

    #[test]
    fn report_renders() {
        let body = LoopBody {
            ops: vec![
                MachineOp::new(OpKind::Load, vec![], Some(Reg(0))),
                MachineOp::new(OpKind::Fma, vec![Reg(0), Reg(1), Reg(2)], Some(Reg(2))),
                MachineOp::new(OpKind::Branch, vec![], None),
            ],
            num_regs: 3,
        };
        let core = power9();
        let sim = simulate(&body, &core, SimOptions::default());
        let rep = report(&body, &core, &sim);
        let text = rep.to_string();
        assert!(text.contains("POWER9"));
        assert!(text.contains("fma=1"));
        assert!(text.contains("bottleneck"));
        assert!(rep.ipc > 0.0);
        assert_eq!(rep.ops_per_iter, 3);
    }

    #[test]
    fn zero_kinds_are_omitted_from_mix() {
        let body = LoopBody {
            ops: vec![MachineOp::new(OpKind::Load, vec![], Some(Reg(0)))],
            num_regs: 1,
        };
        let core = power9();
        let sim = simulate(&body, &core, SimOptions::default());
        let rep = report(&body, &core, &sim);
        assert_eq!(rep.mix, vec![("load", 1)]);
    }
}
