//! Instruction loadout: dynamic operation counts per parallel iteration.
//!
//! The paper's GPU model needs "the number of dynamic instructions" executed
//! by each thread (Section IV.B, *Instruction Loadout*): a static analysis
//! counts IR instructions, grouped into I/O and compute categories, with
//! loop trip counts supplied either by the static abstraction (128) or by
//! runtime values. This module produces those counts from the same lowering
//! the throughput engine uses, so the model and the analyzer agree on what
//! an "instruction" is.

use crate::isa::{OpKind, ALL_KINDS};
use crate::lower::{lower_assigns, TripFn};
use hetsel_ir::{Assign, Kernel, Stmt};

/// Dynamic instruction counts for one parallel iteration (one GPU thread's
/// work item, before `#OMP_Rep` repetition).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Loadout {
    /// Dynamic count per op kind (indexed by [`OpKind::index`]).
    pub counts: [f64; 10],
}

impl Loadout {
    /// Dynamic count of one op kind.
    pub fn count(&self, kind: OpKind) -> f64 {
        self.counts[kind.index()]
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Memory (I/O category) instructions.
    pub fn mem_insts(&self) -> f64 {
        self.count(OpKind::Load) + self.count(OpKind::Store)
    }

    /// Compute-category instructions (everything that is not memory).
    pub fn comp_insts(&self) -> f64 {
        self.total() - self.mem_insts()
    }

    /// Floating-point instructions.
    pub fn fp_insts(&self) -> f64 {
        self.count(OpKind::FAdd)
            + self.count(OpKind::FMul)
            + self.count(OpKind::Fma)
            + self.count(OpKind::FDiv)
            + self.count(OpKind::FSqrt)
    }

    pub(crate) fn add_scaled(&mut self, other: &Loadout, w: f64) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i] * w;
        }
    }
}

/// Counts the dynamic instructions of one parallel iteration of `kernel`,
/// resolving sequential-loop trip counts through `trip`.
pub fn loadout(kernel: &Kernel, trip: &TripFn) -> Loadout {
    let mut out = Loadout::default();
    count_stmts(kernel.parallel_body(), trip, 1.0, &mut out);
    out
}

fn count_stmts(stmts: &[Stmt], trip: &TripFn, weight: f64, out: &mut Loadout) {
    let mut run: Vec<&Assign> = Vec::new();
    let flush = |run: &mut Vec<&Assign>, out: &mut Loadout, w: f64| {
        if run.is_empty() {
            return;
        }
        let body = lower_assigns(run, false);
        let mut l = Loadout::default();
        for k in ALL_KINDS {
            l.counts[k.index()] = body.count(k) as f64;
        }
        out.add_scaled(&l, w);
        run.clear();
    };
    for s in stmts {
        match s {
            Stmt::Assign(a) => run.push(a),
            Stmt::For(l, body) => {
                flush(&mut run, out, weight);
                let trips = trip(l).max(0.0);
                // Per-iteration loop overhead: induction add, compare, branch.
                out.counts[OpKind::IntAlu.index()] += 2.0 * trips * weight;
                out.counts[OpKind::Branch.index()] += trips * weight;
                count_stmts(body, trip, weight * trips, out);
            }
        }
    }
    flush(&mut run, out, weight);
}

/// The paper's static trip-count abstraction: "all loops are assumed to
/// execute 128 iterations".
pub fn assume_128(_: &hetsel_ir::Loop) -> f64 {
    128.0
}

hetsel_ir::snap_struct!(Loadout { counts });

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};

    fn dot_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("dot");
        let a = kb.array("a", 4, &["n".into(), "n".into()], Transfer::In);
        let x = kb.array("x", 4, &["n".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
        kb.assign_acc("s", cexpr::add(cexpr::acc(), prod));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn inner_loop_counts_scale_with_trip() {
        let k = dot_kernel();
        let l128 = loadout(&k, &assume_128);
        let l256 = loadout(&k, &|_| 256.0);
        // 2 loads per inner iteration.
        assert_eq!(l128.count(OpKind::Load), 2.0 * 128.0);
        assert_eq!(l256.count(OpKind::Load), 2.0 * 256.0);
        // One store per parallel iteration, trip-independent.
        assert_eq!(l128.count(OpKind::Store), 1.0);
        assert_eq!(l256.count(OpKind::Store), 1.0);
        // One FMA per inner iteration.
        assert_eq!(l128.count(OpKind::Fma), 128.0);
    }

    #[test]
    fn io_vs_compute_categories() {
        let k = dot_kernel();
        let l = loadout(&k, &assume_128);
        assert_eq!(l.mem_insts(), 2.0 * 128.0 + 1.0);
        assert!(l.comp_insts() > 0.0);
        assert_eq!(l.total(), l.mem_insts() + l.comp_insts());
        assert_eq!(l.fp_insts(), 128.0);
    }

    #[test]
    fn runtime_trip_fn_uses_bindings() {
        let k = dot_kernel();
        let b = Binding::new().with("n", 1000);
        let tc = hetsel_ir::trips::resolve(&k, &b);
        let l = loadout(&k, &|lp| tc.of(lp));
        assert_eq!(l.count(OpKind::Load), 2000.0);
    }
}
