//! Partial evaluation of the MCA analyses: compile once, evaluate per binding.
//!
//! The paper's central architectural claim is that *everything expensive
//! happens at compile time*: the scheduling analysis, the lowering, the
//! symbolic algebra are all run once per kernel, and the runtime merely
//! substitutes loop trip counts before taking the decision (Section III:
//! "the runtime overhead introduced by the model evaluation is negligible").
//!
//! The recursive analyses in [`lower`](crate::lower) and
//! [`loadout`](crate::loadout()) mix the two phases: every call re-lowers the
//! kernel and re-runs [`simulate`], even though those steps depend only on
//! the kernel *structure* and the [`CoreDescriptor`] — never on the trip
//! counts. Trip counts enter the result exclusively as multiplicative
//! weights on precomputable per-block constants.
//!
//! This module splits the phases. [`compile_parallel_iter_cycles`] and
//! [`compile_loadout`] run every simulation and lowering up front and record
//! a small replay tree; evaluating the tree against a [`TripFn`] performs
//! the *identical* floating-point operations in the *identical* order as the
//! direct analyses, so results are equal bit for bit (asserted by tests here
//! and by property tests at the workspace root).

use crate::descriptor::CoreDescriptor;
use crate::isa::{OpKind, ALL_KINDS};
use crate::loadout::Loadout;
use crate::lower::{lower_assigns, lower_assigns_opts, TripFn};
use crate::sched::{simulate, SimOptions};
use hetsel_ir::{Assign, Kernel, Loop, Stmt, TripSlots};

/// Partially evaluated [`parallel_iter_cycles_opts`]
/// (`Machine_cycles_per_iter` of the Liao/Chapman model).
///
/// [`parallel_iter_cycles_opts`]: crate::lower::parallel_iter_cycles_opts
#[derive(Debug, Clone)]
pub enum CompiledCycles {
    /// Straight-line parallel body: the steady-state cycles-per-iteration is
    /// a constant, independent of any trip count.
    StraightLine(f64),
    /// A loop nest, replayed against runtime trip counts.
    Nest(CompiledNest),
}

impl CompiledCycles {
    /// Evaluates the compiled analysis under `trip`, reproducing
    /// `parallel_iter_cycles_opts(kernel, core, trip, ...)` exactly.
    pub fn evaluate(&self, trip: &TripFn) -> f64 {
        match self {
            CompiledCycles::StraightLine(cycles) => *cycles,
            // Parallel loop's own per-iteration overhead, as in the direct
            // analysis.
            CompiledCycles::Nest(nest) => nest.evaluate(trip) + 1.0,
        }
    }

    /// [`CompiledCycles::evaluate`] against a dense [`TripSlots`] view: the
    /// hot-path form — integer-indexed trip lookups, no boxed closure. The
    /// arithmetic (and thus the result, bit for bit) is identical to the
    /// closure path when `trips.of(l)` agrees with `trip(l)`.
    pub fn evaluate_slots(&self, trips: &TripSlots) -> f64 {
        match self {
            CompiledCycles::StraightLine(cycles) => *cycles,
            CompiledCycles::Nest(nest) => nest.evaluate_slots(trips) + 1.0,
        }
    }
}

/// Replay tree for one statement list: the partially evaluated form of
/// [`nest_cycles_opts`](crate::lower::nest_cycles_opts).
#[derive(Debug, Clone)]
pub struct CompiledNest {
    terms: Vec<NestTerm>,
}

#[derive(Debug, Clone)]
enum NestTerm {
    /// A flushed straight-line assignment run: its one-pass block latency.
    Block(f64),
    /// A sequential loop. The header is kept so the [`TripFn`] can be asked
    /// for its trip count at evaluation time.
    Loop {
        header: Loop,
        throughput: Throughput,
        startup: f64,
    },
}

#[derive(Debug, Clone)]
enum Throughput {
    /// Innermost loop: precomputed steady-state cycles per iteration.
    Const(f64),
    /// Mixed body: per-iteration cost is the nested replay plus the fixed
    /// non-overlap penalty, evaluated lazily because it depends on trips of
    /// inner loops.
    Nested(CompiledNest),
}

impl CompiledNest {
    fn evaluate(&self, trip: &TripFn) -> f64 {
        let mut total = 0.0;
        for term in &self.terms {
            match term {
                NestTerm::Block(cycles) => total += cycles,
                NestTerm::Loop {
                    header,
                    throughput,
                    startup,
                } => {
                    let trips = trip(header).max(0.0);
                    let per_iter = match throughput {
                        Throughput::Const(c) => *c,
                        Throughput::Nested(inner) => inner.evaluate(trip) + 3.0,
                    };
                    total += trips * per_iter + startup;
                }
            }
        }
        total
    }

    fn evaluate_slots(&self, slots: &TripSlots) -> f64 {
        let mut total = 0.0;
        for term in &self.terms {
            match term {
                NestTerm::Block(cycles) => total += cycles,
                NestTerm::Loop {
                    header,
                    throughput,
                    startup,
                } => {
                    let trips = slots.of(header).max(0.0);
                    let per_iter = match throughput {
                        Throughput::Const(c) => *c,
                        Throughput::Nested(inner) => inner.evaluate_slots(slots) + 3.0,
                    };
                    total += trips * per_iter + startup;
                }
            }
        }
        total
    }
}

/// Compiles the `Machine_cycles_per_iter` analysis of `kernel` on `core`:
/// runs every lowering and scheduling simulation now, so that
/// [`CompiledCycles::evaluate`] needs only trip-count arithmetic.
pub fn compile_parallel_iter_cycles(
    kernel: &Kernel,
    core: &CoreDescriptor,
    load_latency: Option<f64>,
    carry: bool,
) -> CompiledCycles {
    let _timer = hetsel_obs::static_histogram!("hetsel.mca.compile.cycles.ns").start_timer();
    let _span = hetsel_obs::span_with("hetsel.mca.compile.cycles", || {
        vec![
            hetsel_obs::trace::field("kernel", kernel.name.as_str()),
            hetsel_obs::trace::field("carry", carry),
        ]
    });
    let body = kernel.parallel_body();
    if body.iter().all(|s| matches!(s, Stmt::Assign(_))) {
        let assigns: Vec<&Assign> = body
            .iter()
            .map(|s| match s {
                Stmt::Assign(a) => a,
                _ => unreachable!(),
            })
            .collect();
        let lowered = lower_assigns_opts(&assigns, true, carry);
        let r = simulate(
            &lowered,
            core,
            SimOptions {
                iterations: 16,
                load_latency,
            },
        );
        return CompiledCycles::StraightLine(r.cycles_per_iter);
    }
    CompiledCycles::Nest(compile_nest(body, core, load_latency, carry))
}

fn compile_nest(
    stmts: &[Stmt],
    core: &CoreDescriptor,
    load_latency: Option<f64>,
    carry: bool,
) -> CompiledNest {
    let mut terms = Vec::new();
    let mut run: Vec<&Assign> = Vec::new();
    let flush = |run: &mut Vec<&Assign>, terms: &mut Vec<NestTerm>| {
        if run.is_empty() {
            return;
        }
        let body = lower_assigns_opts(run, false, carry);
        let r = simulate(
            &body,
            core,
            SimOptions {
                iterations: 1,
                load_latency,
            },
        );
        terms.push(NestTerm::Block(r.total_cycles));
        run.clear();
    };
    for s in stmts {
        match s {
            Stmt::Assign(a) => run.push(a),
            Stmt::For(l, body) => {
                flush(&mut run, &mut terms);
                let has_inner_loop = body.iter().any(|s| matches!(s, Stmt::For(..)));
                let (throughput, startup) = if has_inner_loop {
                    (
                        Throughput::Nested(compile_nest(body, core, load_latency, carry)),
                        0.0,
                    )
                } else {
                    let all_assigns: Vec<&Assign> = body
                        .iter()
                        .filter_map(|s| match s {
                            Stmt::Assign(a) => Some(a),
                            Stmt::For(..) => None,
                        })
                        .collect();
                    let lowered = lower_assigns_opts(&all_assigns, true, carry);
                    let r = simulate(
                        &lowered,
                        core,
                        SimOptions {
                            iterations: 16,
                            load_latency,
                        },
                    );
                    (Throughput::Const(r.cycles_per_iter), r.total_cycles / 16.0)
                };
                terms.push(NestTerm::Loop {
                    header: l.clone(),
                    throughput,
                    startup,
                });
            }
        }
    }
    flush(&mut run, &mut terms);
    CompiledNest { terms }
}

/// Partially evaluated [`loadout`](crate::loadout::loadout): dynamic
/// instruction counts with trip counts left symbolic.
#[derive(Debug, Clone)]
pub struct CompiledLoadout {
    terms: Vec<LoadTerm>,
}

#[derive(Debug, Clone)]
enum LoadTerm {
    /// Per-execution instruction counts of a straight-line assignment run.
    Block(Loadout),
    /// A sequential loop and the compiled counts of its body.
    Loop { header: Loop, body: CompiledLoadout },
}

impl CompiledLoadout {
    /// Evaluates the compiled counts under `trip`, reproducing
    /// `loadout(kernel, trip)` exactly.
    pub fn evaluate(&self, trip: &TripFn) -> Loadout {
        let mut out = Loadout::default();
        self.accumulate(trip, 1.0, &mut out);
        out
    }

    /// [`CompiledLoadout::evaluate`] against a dense [`TripSlots`] view;
    /// bit-for-bit identical when `trips.of(l)` agrees with `trip(l)`.
    pub fn evaluate_slots(&self, trips: &TripSlots) -> Loadout {
        let mut out = Loadout::default();
        self.accumulate_slots(trips, 1.0, &mut out);
        out
    }

    fn accumulate_slots(&self, slots: &TripSlots, weight: f64, out: &mut Loadout) {
        for term in &self.terms {
            match term {
                LoadTerm::Block(block) => out.add_scaled(block, weight),
                LoadTerm::Loop { header, body } => {
                    let trips = slots.of(header).max(0.0);
                    out.counts[OpKind::IntAlu.index()] += 2.0 * trips * weight;
                    out.counts[OpKind::Branch.index()] += trips * weight;
                    body.accumulate_slots(slots, weight * trips, out);
                }
            }
        }
    }

    fn accumulate(&self, trip: &TripFn, weight: f64, out: &mut Loadout) {
        for term in &self.terms {
            match term {
                LoadTerm::Block(block) => out.add_scaled(block, weight),
                LoadTerm::Loop { header, body } => {
                    let trips = trip(header).max(0.0);
                    // Per-iteration loop overhead, as in the direct count.
                    out.counts[OpKind::IntAlu.index()] += 2.0 * trips * weight;
                    out.counts[OpKind::Branch.index()] += trips * weight;
                    body.accumulate(trip, weight * trips, out);
                }
            }
        }
    }
}

/// Compiles the instruction-loadout analysis of `kernel`: all lowering
/// happens now, [`CompiledLoadout::evaluate`] is pure arithmetic.
pub fn compile_loadout(kernel: &Kernel) -> CompiledLoadout {
    let _timer = hetsel_obs::static_histogram!("hetsel.mca.compile.loadout.ns").start_timer();
    let _span = hetsel_obs::span_with("hetsel.mca.compile.loadout", || {
        vec![hetsel_obs::trace::field("kernel", kernel.name.as_str())]
    });
    compile_counts(kernel.parallel_body())
}

fn compile_counts(stmts: &[Stmt]) -> CompiledLoadout {
    let mut terms = Vec::new();
    let mut run: Vec<&Assign> = Vec::new();
    let flush = |run: &mut Vec<&Assign>, terms: &mut Vec<LoadTerm>| {
        if run.is_empty() {
            return;
        }
        let body = lower_assigns(run, false);
        let mut block = Loadout::default();
        for k in ALL_KINDS {
            block.counts[k.index()] = body.count(k) as f64;
        }
        terms.push(LoadTerm::Block(block));
        run.clear();
    };
    for s in stmts {
        match s {
            Stmt::Assign(a) => run.push(a),
            Stmt::For(l, body) => {
                flush(&mut run, &mut terms);
                terms.push(LoadTerm::Loop {
                    header: l.clone(),
                    body: compile_counts(body),
                });
            }
        }
    }
    flush(&mut run, &mut terms);
    CompiledLoadout { terms }
}

impl hetsel_ir::Snap for CompiledCycles {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            CompiledCycles::StraightLine(c) => {
                w.put_u8(0);
                w.put_f64(*c);
            }
            CompiledCycles::Nest(n) => {
                w.put_u8(1);
                n.snap(w);
            }
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => CompiledCycles::StraightLine(r.get_f64()?),
            1 => CompiledCycles::Nest(CompiledNest::unsnap(r)?),
            _ => return Err(hetsel_ir::SnapError::Malformed("bad CompiledCycles tag")),
        })
    }
}

impl hetsel_ir::Snap for Throughput {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            Throughput::Const(c) => {
                w.put_u8(0);
                w.put_f64(*c);
            }
            Throughput::Nested(n) => {
                w.put_u8(1);
                n.snap(w);
            }
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => Throughput::Const(r.get_f64()?),
            1 => Throughput::Nested(CompiledNest::unsnap(r)?),
            _ => return Err(hetsel_ir::SnapError::Malformed("bad Throughput tag")),
        })
    }
}

impl hetsel_ir::Snap for NestTerm {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            NestTerm::Block(c) => {
                w.put_u8(0);
                w.put_f64(*c);
            }
            NestTerm::Loop {
                header,
                throughput,
                startup,
            } => {
                w.put_u8(1);
                header.snap(w);
                throughput.snap(w);
                w.put_f64(*startup);
            }
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => NestTerm::Block(r.get_f64()?),
            1 => NestTerm::Loop {
                header: Loop::unsnap(r)?,
                throughput: Throughput::unsnap(r)?,
                startup: r.get_f64()?,
            },
            _ => return Err(hetsel_ir::SnapError::Malformed("bad NestTerm tag")),
        })
    }
}

hetsel_ir::snap_struct!(CompiledNest { terms });

impl hetsel_ir::Snap for LoadTerm {
    fn snap(&self, w: &mut hetsel_ir::SnapWriter) {
        match self {
            LoadTerm::Block(l) => {
                w.put_u8(0);
                l.snap(w);
            }
            LoadTerm::Loop { header, body } => {
                w.put_u8(1);
                header.snap(w);
                body.snap(w);
            }
        }
    }
    fn unsnap(r: &mut hetsel_ir::SnapReader<'_>) -> Result<Self, hetsel_ir::SnapError> {
        Ok(match r.get_u8()? {
            0 => LoadTerm::Block(Loadout::unsnap(r)?),
            1 => LoadTerm::Loop {
                header: Loop::unsnap(r)?,
                body: CompiledLoadout::unsnap(r)?,
            },
            _ => return Err(hetsel_ir::SnapError::Malformed("bad LoadTerm tag")),
        })
    }
}

hetsel_ir::snap_struct!(CompiledLoadout { terms });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::power9;
    use crate::loadout::{assume_128, loadout};
    use crate::lower::parallel_iter_cycles_opts;
    use hetsel_polybench::suite;

    /// Every kernel in the Polybench suite, both carry settings, several
    /// trip-count regimes: the compiled replay must match the direct
    /// analysis bit for bit.
    #[test]
    fn compiled_cycles_match_direct_bit_for_bit() {
        let core = power9();
        for bench in suite() {
            for kernel in &bench.kernels {
                for carry in [false, true] {
                    let compiled = compile_parallel_iter_cycles(kernel, &core, None, carry);
                    for trips in [0.0, 1.0, 7.0, 128.0, 4000.0] {
                        let trip = move |_: &Loop| trips;
                        let direct = parallel_iter_cycles_opts(kernel, &core, &trip, None, carry);
                        let replayed = compiled.evaluate(&trip);
                        assert_eq!(
                            direct.to_bits(),
                            replayed.to_bits(),
                            "{} carry={carry} trips={trips}: direct {direct} != compiled {replayed}",
                            kernel.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_loadout_matches_direct_bit_for_bit() {
        for bench in suite() {
            for kernel in &bench.kernels {
                let compiled = compile_loadout(kernel);
                let direct = loadout(kernel, &assume_128);
                let replayed = compiled.evaluate(&assume_128);
                assert_eq!(direct, replayed, "{}", kernel.name);
                for (d, r) in direct.counts.iter().zip(replayed.counts.iter()) {
                    assert_eq!(d.to_bits(), r.to_bits(), "{}", kernel.name);
                }
            }
        }
    }

    /// The dense-slot evaluation path must agree bit-for-bit with the
    /// closure path whenever the slots report the same per-loop trips.
    #[test]
    fn slot_evaluation_matches_closure_evaluation() {
        let core = power9();
        for bench in suite() {
            for kernel in &bench.kernels {
                let mut table = hetsel_ir::SymbolTable::new();
                let ct = hetsel_ir::CompiledTrips::compile(kernel, &mut table);
                let n_vars = ct.n_vars();
                let compiled = compile_parallel_iter_cycles(kernel, &core, None, true);
                let counts = compile_loadout(kernel);
                // Uniform regime (the paper's assume-128 abstraction).
                let uniform = TripSlots::uniform(n_vars, 128.0);
                let trip128 = |_: &Loop| 128.0;
                assert_eq!(
                    compiled.evaluate(&trip128).to_bits(),
                    compiled.evaluate_slots(&uniform).to_bits(),
                    "{}",
                    kernel.name
                );
                assert_eq!(
                    counts.evaluate(&trip128),
                    counts.evaluate_slots(&uniform),
                    "{}",
                    kernel.name
                );
                // Per-variable regime.
                let tc = hetsel_ir::trips::resolve(
                    kernel,
                    &hetsel_ir::Binding::new().with("n", 37).with("m", 12),
                );
                let slots = tc.dense(n_vars);
                let trip = |l: &Loop| tc.of(l);
                assert_eq!(
                    compiled.evaluate(&trip).to_bits(),
                    compiled.evaluate_slots(&slots).to_bits(),
                    "{}",
                    kernel.name
                );
                assert_eq!(
                    counts.evaluate(&trip),
                    counts.evaluate_slots(&slots),
                    "{}",
                    kernel.name
                );
            }
        }
    }

    /// Trip counts that vary per loop variable (triangular regimes) must
    /// also replay exactly — the header clone, not just a global constant,
    /// is what the evaluator consults.
    #[test]
    fn compiled_cycles_respect_per_loop_trips() {
        let core = power9();
        for bench in suite() {
            for kernel in &bench.kernels {
                let compiled = compile_parallel_iter_cycles(kernel, &core, None, true);
                let trip = |l: &Loop| (l.var.0 as f64) * 17.0 + 3.0;
                let direct = parallel_iter_cycles_opts(kernel, &core, &trip, None, true);
                assert_eq!(
                    direct.to_bits(),
                    compiled.evaluate(&trip).to_bits(),
                    "{}",
                    kernel.name
                );
            }
        }
    }
}
