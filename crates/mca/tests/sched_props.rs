//! Property tests for the scheduler engine: throughput must respect the
//! structural lower bounds (dispatch width, unit occupancy) and behave
//! monotonically in latency and iteration count.

use hetsel_mca::{power8, power9, simulate, LoopBody, MachineOp, OpKind, Reg, SimOptions};
use proptest::prelude::*;

const KINDS: [OpKind; 8] = [
    OpKind::IntAlu,
    OpKind::IntMul,
    OpKind::Load,
    OpKind::Store,
    OpKind::FAdd,
    OpKind::FMul,
    OpKind::Fma,
    OpKind::Branch,
];

/// A random independent-op body (no dependencies): pure throughput test.
fn independent_body() -> impl Strategy<Value = LoopBody> {
    prop::collection::vec(0usize..KINDS.len(), 1..24).prop_map(|kinds| {
        let ops: Vec<MachineOp> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| MachineOp::new(KINDS[*k], vec![], Some(Reg(i as u32))))
            .collect();
        LoopBody {
            num_regs: ops.len() as u32,
            ops,
        }
    })
}

/// A serial chain body: op i reads op i-1's result.
fn chain_body() -> impl Strategy<Value = LoopBody> {
    prop::collection::vec(0usize..KINDS.len(), 1..12).prop_map(|kinds| {
        let ops: Vec<MachineOp> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let srcs = if i == 0 {
                    vec![]
                } else {
                    vec![Reg(i as u32 - 1)]
                };
                MachineOp::new(KINDS[*k], srcs, Some(Reg(i as u32)))
            })
            .collect();
        LoopBody {
            num_regs: ops.len() as u32,
            ops,
        }
    })
}

proptest! {
    /// Steady-state cycles/iteration can never beat the front-end dispatch
    /// bound or the busiest pipeline's occupancy.
    #[test]
    fn throughput_respects_structural_bounds(body in independent_body()) {
        for core in [power9(), power8()] {
            // Asymptotic bounds; the steady-state measurement (completion
            // deltas over a finite window) carries a small edge jitter.
            let r = simulate(&body, &core, SimOptions { iterations: 32, load_latency: None });
            let slack = 0.95;
            prop_assert!(
                r.cycles_per_iter + 0.51 >= r.dispatch_cycles_per_iter * slack,
                "cpi {} < dispatch bound {}",
                r.cycles_per_iter,
                r.dispatch_cycles_per_iter
            );
            let max_busy = r.unit_busy_per_iter.iter().cloned().fold(0.0, f64::max);
            prop_assert!(
                r.cycles_per_iter + 0.51 >= max_busy * slack,
                "cpi {} < busy bound {}",
                r.cycles_per_iter,
                max_busy
            );
        }
    }

    /// A serial chain's *first completion* can come no earlier than the sum
    /// of its latencies (iterations may still overlap: the chain is not
    /// loop-carried).
    #[test]
    fn chains_are_latency_bound(body in chain_body()) {
        let core = power9();
        let r = simulate(&body, &core, SimOptions { iterations: 1, load_latency: None });
        let chain: f64 = body.ops.iter().map(|o| core.latency(o.kind)).sum();
        prop_assert!(
            r.total_cycles + 1e-6 >= chain,
            "one-pass latency {} < chain latency {}",
            r.total_cycles,
            chain
        );
    }

    /// Raising the load latency never speeds anything up.
    #[test]
    fn monotone_in_load_latency(body in chain_body(), lat in 5.0f64..300.0) {
        let core = power9();
        let base = simulate(&body, &core, SimOptions { iterations: 16, load_latency: None });
        let slow = simulate(&body, &core, SimOptions { iterations: 16, load_latency: Some(lat.max(core.l1_load_latency)) });
        prop_assert!(slow.cycles_per_iter + 1e-6 >= base.cycles_per_iter);
    }

    /// Total cycles grow monotonically with iteration count.
    #[test]
    fn monotone_in_iterations(body in independent_body(), k in 2u32..6) {
        let core = power9();
        let a = simulate(&body, &core, SimOptions { iterations: k, load_latency: None });
        let b = simulate(&body, &core, SimOptions { iterations: k * 2, load_latency: None });
        prop_assert!(b.total_cycles + 1e-9 >= a.total_cycles);
    }
}
