//! Property tests for the transport framing contract: **one reply line
//! per request line, in order, whatever the line contains**. A malformed
//! line must produce a typed `"status":"error"` reply — never a panic,
//! never a dropped connection, never a skipped slot that would desync the
//! client's reply correlation.

use std::io::Cursor;
use std::sync::OnceLock;
use std::time::Duration;

use hetsel_core::{
    DecisionEngine, DecisionRequest, Dispatcher, DispatcherConfig, Platform, Selector,
};
use hetsel_polybench::{find_kernel, Dataset};
use hetsel_serve::{
    parse_request_line, serve_lines, DecisionServer, ServeConfig, ServeReply, ServeRequest,
    ServerHandle,
};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

/// One server shared by every proptest case: starting threads per case
/// would dominate the test, and the framing contract is per-line, not
/// per-server. The server is leaked so its worker threads survive the
/// whole test binary.
fn handle() -> &'static ServerHandle {
    static HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    HANDLE.get_or_init(|| {
        let (kernel, _) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(
            Selector::new(Platform::power9_v100()),
            std::slice::from_ref(&kernel),
        );
        let server = DecisionServer::start(
            Dispatcher::new(engine, DispatcherConfig::default()),
            ServeConfig::default(),
        );
        let handle = server.handle();
        std::mem::forget(server);
        handle
    })
}

/// A line of the session script and the reply it must produce.
#[derive(Debug, Clone)]
enum Line {
    /// Well-formed request; expects `"ok"` echoing the id.
    Valid { id: u64 },
    /// Well-formed request with a zero deadline; the timer and the
    /// batcher race, so either `"shed"` or `"ok"` is legal — but exactly
    /// one reply, echoing the id, must arrive either way.
    ZeroDeadline { id: u64 },
    /// Not a request; expects `"error"`.
    Garbage(String),
    /// Whitespace only; the transport skips it without a reply.
    Blank(String),
}

fn garbage() -> BoxedStrategy<String> {
    let corpus = select(
        vec![
            "not json",
            "{",
            "}",
            "{}",
            "[1,2,3]",
            "nulltrue",
            "{\"id\":}",
            "{\"id\":3}",
            "{\"request\":42}",
            "{\"id\":\"seven\",\"request\":{\"region\":\"gemm\",\"binding\":{}}}",
            "{\"request\":{\"region\":7,\"binding\":{}}}",
            "{\"request\":{\"region\":\"gemm\",\"binding\":{\"n\":\"x\"}}}",
            "{\"request\":{\"region\":\"gemm\",\"binding\":{},\"policy_override\":\"turbo\"}}",
            "{\"id\":1,\"request\":{\"region\":\"gemm\",\"binding\":{\"n\":1}}",
            "\u{1}\u{2}\u{3}",
            "🦀🦀🦀",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    prop_oneof![
        corpus.boxed(),
        // A bare JSON number: parses as a value, but not as a request.
        (0u64..u64::MAX).prop_map(|n| n.to_string()).boxed(),
    ]
    .boxed()
}

fn line() -> BoxedStrategy<Line> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|id| Line::Valid { id }).boxed(),
        (0u64..1_000_000)
            .prop_map(|id| Line::ZeroDeadline { id })
            .boxed(),
        garbage().prop_map(Line::Garbage).boxed(),
        select(
            vec!["", "   ", "\t"]
                .into_iter()
                .map(String::from)
                .collect()
        )
        .prop_map(Line::Blank)
        .boxed(),
    ]
    .boxed()
}

fn render(line: &Line) -> String {
    let (_, binding) = find_kernel("gemm").unwrap();
    match line {
        Line::Valid { id } => {
            let req = ServeRequest::new(DecisionRequest::new("gemm", binding(Dataset::Benchmark)))
                .with_id(*id);
            serde_json::to_string(&req).unwrap()
        }
        Line::ZeroDeadline { id } => {
            let req = ServeRequest::new(
                DecisionRequest::new("gemm", binding(Dataset::Benchmark))
                    .with_deadline(Duration::ZERO),
            )
            .with_id(*id);
            serde_json::to_string(&req).unwrap()
        }
        Line::Garbage(s) | Line::Blank(s) => s.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_single_line_parses_or_yields_a_typed_error(line in garbage()) {
        // The parser must never panic; when it refuses a line, the refusal
        // is a typed error reply a transport can write back.
        match parse_request_line(&line) {
            Ok(_) => {}
            Err(reply) => prop_assert_eq!(reply.status(), "error"),
        }
    }

    #[test]
    fn every_session_gets_one_reply_per_line_in_order(script in vec(line(), 0..12)) {
        let input: String = script.iter().map(|l| format!("{}\n", render(l))).collect();
        let mut out = Vec::new();
        let stats = serve_lines(handle(), Cursor::new(input), &mut out)
            .expect("in-memory transport cannot fail");

        let expected: Vec<&Line> = script
            .iter()
            .filter(|l| !matches!(l, Line::Blank(_)))
            .collect();
        prop_assert_eq!(stats.lines, expected.len() as u64);
        prop_assert_eq!(stats.replies, expected.len() as u64, "a line was dropped");

        let replies: Vec<ServeReply> = std::str::from_utf8(&out)
            .expect("replies are UTF-8")
            .lines()
            .map(|l| serde_json::from_str::<ServeReply>(l).expect("reply line parses"))
            .collect();
        prop_assert_eq!(replies.len(), expected.len());
        for (line, reply) in expected.iter().zip(&replies) {
            match line {
                Line::Valid { id } => {
                    prop_assert_eq!(reply.status(), "ok", "{:?} → {:?}", line, reply);
                    prop_assert_eq!(reply.id(), Some(*id));
                }
                Line::ZeroDeadline { id } => {
                    // The timer (shed) and the batcher (ok) legitimately
                    // race at a zero budget; framing only demands exactly
                    // one correlated reply.
                    prop_assert!(
                        reply.status() == "shed" || reply.status() == "ok",
                        "{:?} → {:?}",
                        line,
                        reply
                    );
                    prop_assert_eq!(reply.id(), Some(*id));
                }
                Line::Garbage(_) => {
                    prop_assert_eq!(reply.status(), "error", "{:?} → {:?}", line, reply);
                }
                Line::Blank(_) => unreachable!("blanks were filtered"),
            }
        }
    }
}
