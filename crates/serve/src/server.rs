//! The decision server: admission control → coalescing window → batch
//! decide → (optional) dispatch → reply.
//!
//! One batcher thread owns the engine-facing side. It drains coalescing
//! windows from the [`AdmissionQueue`] and evaluates each window with a
//! single [`DecisionEngine::decide_batch`](hetsel_core::DecisionEngine::decide_batch)
//! call, so the per-request cost of shard locking and the rayon
//! cold-miss pass is paid once per *window*, not once per request. A
//! separate [`DeadlineTimer`] thread answers deadline-carrying requests
//! the moment their budget expires — requests handed to the engine have
//! their deadlines stripped
//! ([`DecisionRequest::without_deadline`](hetsel_core::DecisionRequest::without_deadline)),
//! so the engine never second-guesses the timer with its own post-hoc
//! elapsed check.
//!
//! Admission control has two modes, mirroring the dispatcher's
//! breaker/fallback vocabulary one layer up:
//!
//! * [`ServerHandle::submit`] **load-sheds**: a full queue turns into an
//!   immediate [`ShedReason::QueueFull`] reply carrying the degraded
//!   compiler-default decision.
//! * [`ServerHandle::submit_wait`] **backpressures**: the caller blocks
//!   until the queue has room (or the server shuts down).
//!
//! Either way every admitted or refused request gets exactly one reply —
//! the serve-layer analogue of the dispatcher's "the host is never fully
//! load-shed" rule: admission may refuse to spend evaluation budget, but
//! it always answers, and a shed reply's degraded decision is always
//! runnable.

use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use hetsel_core::{DecisionRequest, Dispatcher};
use hetsel_obs::{DecisionEvent, EventKind};

use crate::pending::PendingRequest;
use crate::proto::{ServeReply, ServeRequest, ShedReason};
use crate::queue::{Admission, AdmissionQueue};
use crate::timer::DeadlineTimer;

/// Server tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Queued requests admitted before `submit` starts shedding
    /// (`submit_wait` blocks instead).
    pub queue_capacity: usize,
    /// Most requests one coalescing window evaluates together.
    pub max_batch: usize,
    /// How long a window stays open for stragglers after its first
    /// request. Zero degenerates to "drain whatever is queued right now"
    /// — still batched under load, minimal added latency when idle.
    pub window: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4096,
            max_batch: 512,
            window: Duration::from_micros(100),
        }
    }
}

impl ServeConfig {
    /// Builder: admission queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Builder: max requests per coalescing window.
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch;
        self
    }

    /// Builder: coalescing window length.
    pub fn with_window(mut self, window: Duration) -> ServeConfig {
        self.window = window;
        self
    }
}

/// Shared server state. The timer's expiry callback holds a `Weak` back
/// to this (not an `Arc`) so the `Inner → timer → callback` chain is not
/// a reference cycle.
struct Inner {
    dispatcher: Dispatcher,
    queue: AdmissionQueue<Arc<PendingRequest>>,
    timer: OnceLock<DeadlineTimer>,
}

impl Inner {
    fn publish_depth(&self) {
        hetsel_obs::static_gauge!("hetsel.serve.queue.depth").set(self.queue.depth() as i64);
    }

    /// The degraded compiler-default decision a shed reply carries,
    /// obtained through the engine's zero-budget path (no model
    /// evaluation, the deadline reason recorded on both model sides).
    /// Unknown regions shed as typed errors instead.
    fn shed_reply(&self, pending: &PendingRequest, reason: ShedReason) -> ServeReply {
        let request = &pending.serve.request;
        let reply = match self
            .dispatcher
            .engine()
            .decide_within(request, Duration::ZERO)
        {
            Some(degraded) => ServeReply::shed(pending.serve.id, reason, &degraded),
            None => ServeReply::error(
                pending.serve.id,
                format!("unknown region {:?}", request.region()),
            ),
        };
        hetsel_obs::registry()
            .counter(&format!("hetsel.serve.shed.{}", reason.metric_key()))
            .inc();
        hetsel_obs::record_event(|| {
            let mut ev = DecisionEvent::new(EventKind::Shed, request.region());
            ev.detail = reason.code();
            ev
        });
        reply
    }

    fn shed(&self, pending: &PendingRequest, reason: ShedReason) {
        let reply = self.shed_reply(pending, reason);
        pending.done.complete(reply);
    }
}

/// Cloneable submission handle; every transport thread holds one.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Admits `serve` (or refuses it), returning the pending request to
    /// wait on. Admission arms the deadline timer for deadline-carrying
    /// requests. The reply slot is *already completed* when admission
    /// refused the request — a full queue sheds with
    /// [`ShedReason::QueueFull`], a stopped server with
    /// [`ShedReason::ShuttingDown`], an unknown region errors — so
    /// callers can unconditionally `wait()`.
    pub fn submit(&self, serve: ServeRequest) -> Arc<PendingRequest> {
        self.admit(serve, false)
    }

    /// As [`ServerHandle::submit`], but blocks for queue space instead of
    /// shedding (backpressure). Still sheds with
    /// [`ShedReason::ShuttingDown`] if the server stops while waiting.
    pub fn submit_wait(&self, serve: ServeRequest) -> Arc<PendingRequest> {
        self.admit(serve, true)
    }

    fn admit(&self, serve: ServeRequest, wait: bool) -> Arc<PendingRequest> {
        let inner = &self.inner;
        let pending = Arc::new(PendingRequest::new(serve));
        // Refuse unknown regions before they consume queue space: the
        // typed error reply is the transport's "bad request", not a shed.
        if inner
            .dispatcher
            .engine()
            .database()
            .region(pending.serve.request.region())
            .is_none()
        {
            hetsel_obs::static_counter!("hetsel.serve.bad_request").inc();
            pending.done.complete(ServeReply::error(
                pending.serve.id,
                format!("unknown region {:?}", pending.serve.request.region()),
            ));
            return pending;
        }
        let admission = if wait {
            inner.queue.push_wait(Arc::clone(&pending))
        } else {
            inner.queue.try_push(Arc::clone(&pending))
        };
        match admission {
            Admission::Admitted => {
                hetsel_obs::static_counter!("hetsel.serve.admitted").inc();
                inner.publish_depth();
                if let Some(timer) = inner.timer.get() {
                    timer.schedule(&pending);
                }
            }
            Admission::QueueFull => inner.shed(&pending, ShedReason::QueueFull),
            Admission::Closed => inner.shed(&pending, ShedReason::ShuttingDown),
        }
        pending
    }

    /// Convenience: submit (load-shedding admission) and block for the
    /// reply.
    pub fn call(&self, serve: ServeRequest) -> ServeReply {
        self.submit(serve).done.wait()
    }

    /// Convenience: submit with backpressure admission and block for the
    /// reply.
    pub fn call_wait(&self, serve: ServeRequest) -> ServeReply {
        self.submit_wait(serve).done.wait()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }
}

/// The running server: batcher thread + deadline-timer thread around a
/// [`Dispatcher`].
pub struct DecisionServer {
    inner: Arc<Inner>,
    batcher: Option<JoinHandle<()>>,
}

impl DecisionServer {
    /// Starts the batcher and timer threads over `dispatcher`.
    pub fn start(dispatcher: Dispatcher, config: ServeConfig) -> DecisionServer {
        let inner = Arc::new(Inner {
            dispatcher,
            queue: AdmissionQueue::new(config.queue_capacity),
            timer: OnceLock::new(),
        });
        let timer_inner: Weak<Inner> = Arc::downgrade(&inner);
        let timer = DeadlineTimer::start(move |pending| {
            // The server outlives its timer thread except during the
            // final teardown, where expiries no longer matter.
            if let Some(inner) = timer_inner.upgrade() {
                inner.shed(pending, ShedReason::DeadlineExpired);
            }
        });
        inner.timer.set(timer).ok().expect("timer set once");
        let batch_inner = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("hetsel-serve-batcher".to_string())
            .spawn(move || run_batcher(&batch_inner, config))
            .expect("spawn batcher thread");
        DecisionServer {
            inner,
            batcher: Some(batcher),
        }
    }

    /// A cloneable submission handle for transport threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The dispatcher the server evaluates through.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.inner.dispatcher
    }

    /// Stops accepting requests, sheds everything still queued with
    /// [`ShedReason::ShuttingDown`], and joins both threads. Every
    /// admitted request has been answered when this returns.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        let orphans = self.inner.queue.close();
        for pending in &orphans {
            self.inner.shed(pending, ShedReason::ShuttingDown);
        }
        self.inner.publish_depth();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(timer) = self.inner.timer.get() {
            timer.shutdown();
        }
    }
}

impl Drop for DecisionServer {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// The batcher loop: drain a window, evaluate it with one `decide_batch`
/// call, answer (and optionally dispatch) every request in it.
fn run_batcher(inner: &Arc<Inner>, config: ServeConfig) {
    while let Some(window) = inner.queue.next_batch(config.max_batch, config.window) {
        inner.publish_depth();
        // Deadline-expired (or shutdown-shed) requests are already
        // answered; spend no evaluation budget on them.
        let live: Vec<&Arc<PendingRequest>> = window.iter().filter(|p| !p.done.is_done()).collect();
        hetsel_obs::static_histogram!("hetsel.serve.window.batch").record(live.len() as u64);
        if live.is_empty() {
            continue;
        }
        // Strip deadlines: the timer owns them. Cloning here is fine —
        // the batcher amortises it over the window, far off the engine's
        // zero-alloc hot path.
        let requests: Vec<DecisionRequest> = live
            .iter()
            .map(|p| p.serve.request.clone().without_deadline())
            .collect();
        let decisions = inner.dispatcher.engine().decide_batch(&requests);
        for ((pending, request), decision) in live.iter().zip(&requests).zip(decisions) {
            let reply = match decision {
                None => ServeReply::error(
                    pending.serve.id,
                    format!("unknown region {:?}", request.region()),
                ),
                Some(decision) => {
                    if pending.serve.dispatch {
                        // Dispatch re-enters the engine with the stripped
                        // request: a warm cache hit (the batch pass above
                        // just inserted it), then the fault-tolerant
                        // execution path.
                        match inner.dispatcher.dispatch(request) {
                            Ok(outcome) => {
                                ServeReply::ok(pending.serve.id, &decision, false, Some(&outcome))
                            }
                            Err(e) => {
                                ServeReply::error(pending.serve.id, format!("dispatch failed: {e}"))
                            }
                        }
                    } else {
                        ServeReply::ok(pending.serve.id, &decision, false, None)
                    }
                }
            };
            if pending.done.complete(reply) {
                hetsel_obs::static_counter!("hetsel.serve.replies").inc();
            } else {
                // The timer answered while we were evaluating; the work
                // is not wasted — the decision is in the cache for the
                // retry.
                hetsel_obs::static_counter!("hetsel.serve.late_result").inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_core::{DecisionEngine, DispatcherConfig, Platform, Selector};
    use hetsel_polybench::{find_kernel, Dataset};

    fn server(config: ServeConfig) -> DecisionServer {
        let (kernel, _) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(
            Selector::new(Platform::power9_v100()),
            std::slice::from_ref(&kernel),
        );
        DecisionServer::start(Dispatcher::new(engine, DispatcherConfig::default()), config)
    }

    /// A gemm request whose cache key varies with `n` (the extra binding
    /// slot perturbs the key without touching the model inputs).
    fn gemm(n: i64) -> ServeRequest {
        let (_, binding) = find_kernel("gemm").unwrap();
        ServeRequest::new(DecisionRequest::new(
            "gemm",
            binding(Dataset::Benchmark).with("n", n),
        ))
    }

    #[test]
    fn serves_decisions_end_to_end() {
        let server = server(ServeConfig::default());
        let handle = server.handle();
        let reply = handle.call(gemm(1024).with_id(11));
        match reply {
            ServeReply::Ok {
                id,
                decision,
                degraded,
                dispatched,
            } => {
                assert_eq!(id, Some(11));
                assert_eq!(decision.region, "gemm");
                assert!(!degraded);
                assert!(dispatched.is_none());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn dispatch_flag_returns_execution_evidence() {
        let server = server(ServeConfig::default());
        let reply = server.handle().call(gemm(512).with_dispatch());
        match reply {
            ServeReply::Ok { dispatched, .. } => {
                let d = dispatched.expect("dispatch evidence");
                assert!(d.attempts >= 1);
                assert!(d.simulated_s >= 0.0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_region_is_a_typed_error_not_a_shed() {
        let server = server(ServeConfig::default());
        let reply = server.handle().call(ServeRequest::new(DecisionRequest::new(
            "definitely-not-a-kernel",
            hetsel_ir::Binding::new(),
        )));
        assert_eq!(reply.status(), "error");
        server.shutdown();
    }

    #[test]
    fn expired_deadline_sheds_with_a_runnable_default() {
        // A window long enough that the 1 ns deadline always fires first.
        let server = server(ServeConfig::default().with_window(Duration::from_millis(200)));
        let mut serve = gemm(64);
        serve.request = serve.request.with_deadline(Duration::from_nanos(1));
        let reply = server.handle().call(serve);
        match reply {
            ServeReply::Shed {
                reason, decision, ..
            } => {
                assert_eq!(reason, ShedReason::DeadlineExpired);
                // The degraded default is still a runnable decision.
                assert!(!decision.device.is_empty());
                assert_eq!(decision.policy, "always_offload");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_sheds_queued_requests_with_typed_reason() {
        let server = server(ServeConfig::default());
        let handle = server.handle();
        server.shutdown();
        let reply = handle.call(gemm(128));
        match reply {
            ServeReply::Shed { reason, .. } => {
                assert_eq!(reason, ShedReason::ShuttingDown)
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn concurrent_submitters_coalesce_and_all_get_replies() {
        let server = server(ServeConfig::default().with_window(Duration::from_millis(2)));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = server.handle();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|i| handle.call(gemm(64 + (t * 50 + i)).with_id(t as u64)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for reply in t.join().unwrap() {
                assert_eq!(reply.status(), "ok");
            }
        }
        server.shutdown();
    }
}
