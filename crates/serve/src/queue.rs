//! The admission queue: a bounded MPSC queue with a coalescing consumer.
//!
//! Producers are transport threads admitting requests; the single
//! consumer is the batcher, which drains *windows* of requests so one
//! `decide_batch` call amortises the shard locking and the rayon
//! cold-miss pass over every request that arrived close together.
//!
//! The queue is deliberately built on `std::sync::{Mutex, Condvar}`, not
//! the vendored `parking_lot` (which exposes no condvar): the consumer
//! must *sleep* between windows, and a condvar is the only primitive in
//! the tree that can wake it without spinning. Every lock acquisition
//! recovers from poisoning with `PoisonError::into_inner` — a panicking
//! producer must not wedge the batcher (the same discipline `hetsel-obs`
//! applies to its registries; the queue's state is a `VecDeque` plus two
//! flags, both valid after any partial mutation).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Admission verdict for one push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is in the queue.
    Admitted,
    /// The queue was full; the request was not enqueued (shed it).
    QueueFull,
    /// The queue is closed; the request was not enqueued (shed it).
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue whose consumer drains coalescing windows.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signals the consumer: items arrived or the queue closed.
    arrived: Condvar,
    /// Signals blocked `push_wait` producers: space freed or closed.
    vacated: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` queued requests (minimum 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            arrived: Condvar::new(),
            vacated: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking admission: load-shedding callers use this and turn
    /// [`Admission::QueueFull`] into a typed shed reply.
    pub fn try_push(&self, item: T) -> Admission {
        let mut state = self.lock();
        if state.closed {
            return Admission::Closed;
        }
        if state.items.len() >= self.capacity {
            return Admission::QueueFull;
        }
        state.items.push_back(item);
        drop(state);
        self.arrived.notify_one();
        Admission::Admitted
    }

    /// Blocking admission: backpressure callers (the load bench, a
    /// cooperating client) wait for space instead of being shed. Returns
    /// [`Admission::Closed`] if the queue closes while waiting.
    pub fn push_wait(&self, item: T) -> Admission {
        let mut state = self.lock();
        while !state.closed && state.items.len() >= self.capacity {
            state = self
                .vacated
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Admission::Closed;
        }
        state.items.push_back(item);
        drop(state);
        self.arrived.notify_one();
        Admission::Admitted
    }

    /// Consumer side: blocks until at least one request is queued, then
    /// keeps the window open up to `window` longer (bounded by
    /// `max_batch`) so closely-spaced requests coalesce into one batch.
    /// Returns `None` only when the queue is closed *and* drained.
    pub fn next_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut state = self.lock();
        // Phase 1: wait for the first request (or close).
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = self
                .arrived
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        // Phase 2: hold the window open for stragglers.
        let window_end = Instant::now() + window;
        while state.items.len() < max_batch && !state.closed {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            let (next, timeout) = self
                .arrived
                .wait_timeout(state, window_end - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.items.len().min(max_batch);
        let batch: Vec<T> = state.items.drain(..take).collect();
        drop(state);
        // Space freed: wake every blocked producer (each re-checks).
        self.vacated.notify_all();
        Some(batch)
    }

    /// Closes the queue: producers are refused from now on, the consumer
    /// drains what is left and then sees `None`. Returns the requests
    /// still queued so the caller can shed them with a typed reason
    /// instead of dropping them silently.
    pub fn close(&self) -> Vec<T> {
        let mut state = self.lock();
        state.closed = true;
        let orphans: Vec<T> = state.items.drain(..).collect();
        drop(state);
        self.arrived.notify_all();
        self.vacated.notify_all();
        orphans
    }

    /// Current queue depth (point-in-time; the queue-depth gauge).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// True once [`AdmissionQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), Admission::Admitted);
        assert_eq!(q.try_push(2), Admission::Admitted);
        assert_eq!(q.try_push(3), Admission::QueueFull);
        assert_eq!(q.depth(), 2);
        let batch = q.next_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(q.try_push(3), Admission::Admitted);
    }

    #[test]
    fn window_coalesces_closely_spaced_requests() {
        let q = Arc::new(AdmissionQueue::new(64));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..10 {
                    assert_eq!(q.try_push(i), Admission::Admitted);
                    thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let mut got = Vec::new();
        let mut batches = 0usize;
        while got.len() < 10 {
            let batch = q.next_batch(64, Duration::from_millis(50)).unwrap();
            batches += 1;
            got.extend(batch);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // A 50 ms window over 1 ms arrivals must have merged requests —
        // strictly fewer batches than requests.
        assert!(batches < 10, "no coalescing happened ({batches} batches)");
    }

    #[test]
    fn max_batch_bounds_a_window() {
        let q = AdmissionQueue::new(64);
        for i in 0..10 {
            q.try_push(i);
        }
        let batch = q.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn close_returns_orphans_and_unblocks_consumer() {
        let q = Arc::new(AdmissionQueue::new(8));
        q.try_push(1);
        q.try_push(2);
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(batch) = q.next_batch(8, Duration::from_millis(1)) {
                    seen.extend(batch);
                }
                seen
            })
        };
        thread::sleep(Duration::from_millis(20));
        let orphans = q.close();
        assert_eq!(q.try_push(3), Admission::Closed);
        let seen = consumer.join().unwrap();
        // Everything queued went to exactly one side.
        let mut all = seen;
        all.extend(orphans);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    }

    #[test]
    fn push_wait_applies_backpressure() {
        let q = Arc::new(AdmissionQueue::new(1));
        assert_eq!(q.push_wait(1), Admission::Admitted);
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_wait(2))
        };
        thread::sleep(Duration::from_millis(20));
        // Producer is blocked; draining frees space and admits it.
        assert_eq!(q.next_batch(1, Duration::ZERO).unwrap(), vec![1]);
        assert_eq!(producer.join().unwrap(), Admission::Admitted);
        assert_eq!(q.next_batch(1, Duration::ZERO).unwrap(), vec![2]);
    }

    #[test]
    fn poisoned_queue_still_serves() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let _ = thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert!(q.state.is_poisoned());
        assert_eq!(q.try_push(7), Admission::Admitted);
        assert_eq!(q.next_batch(4, Duration::ZERO).unwrap(), vec![7]);
        q.close();
    }
}
