//! The in-flight request: one admitted [`ServeRequest`] plus its
//! single-assignment reply slot.
//!
//! Three parties race to complete a pending request — the batcher (with
//! the evaluated decision), the deadline timer (with a
//! [`ShedReason::DeadlineExpired`](crate::ShedReason::DeadlineExpired)
//! shed), and shutdown (with a
//! [`ShedReason::ShuttingDown`](crate::ShedReason::ShuttingDown) shed).
//! [`Completion`] makes the race safe: the first completer wins, later
//! completers get `false` back and drop their reply. The waiting
//! transport thread always observes exactly one reply.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use crate::proto::{ServeReply, ServeRequest};

/// Single-assignment reply slot with a blocking reader.
pub struct Completion {
    slot: Mutex<Option<ServeReply>>,
    ready: Condvar,
}

impl Default for Completion {
    fn default() -> Completion {
        Completion {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

impl Completion {
    /// Stores `reply` if the slot is still empty. Returns true when this
    /// call won the race (the reply will be delivered), false when an
    /// earlier completer already answered.
    pub fn complete(&self, reply: ServeReply) -> bool {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() {
            return false;
        }
        *slot = Some(reply);
        drop(slot);
        self.ready.notify_all();
        true
    }

    /// True once a reply landed.
    pub fn is_done(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the reply lands and returns a clone of it.
    pub fn wait(&self) -> ServeReply {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(reply) = slot.as_ref() {
                return reply.clone();
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One admitted request travelling through the server.
pub struct PendingRequest {
    /// The parsed envelope.
    pub serve: ServeRequest,
    /// When admission accepted it (latency measurement anchor).
    pub admitted: Instant,
    /// Absolute expiry instant, when the request carried a deadline.
    /// Serve enforces this with the timer thread — a *real* timer that
    /// answers the moment the budget runs out, not a post-hoc elapsed
    /// check after evaluation already happened.
    pub expires: Option<Instant>,
    /// The reply slot.
    pub done: Completion,
}

impl PendingRequest {
    /// Wraps an admitted envelope; `deadline_ns` (from the request) is
    /// converted to an absolute expiry against `admitted`.
    pub fn new(serve: ServeRequest) -> PendingRequest {
        let admitted = Instant::now();
        let expires = serve
            .request
            .deadline()
            .map(|d| admitted.checked_add(d).unwrap_or_else(far_future));
        PendingRequest {
            serve,
            admitted,
            expires,
            done: Completion::default(),
        }
    }
}

/// An effectively-unreachable expiry for deadlines so large that
/// `Instant + Duration` overflows (e.g. `u64::MAX` nanoseconds): ~30
/// years out, identical in behaviour to "no deadline" for any real run.
fn far_future() -> Instant {
    Instant::now() + std::time::Duration::from_secs(60 * 60 * 24 * 365 * 30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_core::DecisionRequest;
    use hetsel_ir::Binding;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn pending(deadline: Option<Duration>) -> PendingRequest {
        let mut req = DecisionRequest::new("gemm", Binding::new());
        if let Some(d) = deadline {
            req = req.with_deadline(d);
        }
        PendingRequest::new(ServeRequest::new(req))
    }

    #[test]
    fn first_completer_wins() {
        let p = pending(None);
        assert!(p.done.complete(ServeReply::error(None, "first")));
        assert!(!p.done.complete(ServeReply::error(None, "second")));
        match p.done.wait() {
            ServeReply::Error { message, .. } => assert_eq!(message, "first"),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn wait_blocks_until_completed() {
        let p = Arc::new(pending(None));
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.done.wait())
        };
        thread::sleep(Duration::from_millis(10));
        assert!(!p.done.is_done());
        assert!(p.done.complete(ServeReply::error(Some(4), "late")));
        assert_eq!(waiter.join().unwrap().id(), Some(4));
    }

    #[test]
    fn huge_deadlines_do_not_overflow() {
        let p = pending(Some(Duration::from_nanos(u64::MAX)));
        let expires = p.expires.expect("deadline recorded");
        assert!(expires > Instant::now() + Duration::from_secs(60));
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let p = pending(Some(Duration::ZERO));
        assert!(p.expires.expect("deadline recorded") <= Instant::now());
    }
}
