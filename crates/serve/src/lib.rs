//! hetsel-serve: the decision engine as a long-running service.
//!
//! Everything below `hetsel-core` answers one synchronous question:
//! *should this region offload, right now?* This crate wraps that
//! question in a request loop so other processes can ask it over a
//! line-oriented JSON transport (stdin/stdout or TCP), with the three
//! properties a shared decision service needs that a library call does
//! not:
//!
//! 1. **Admission control.** A bounded queue stands between transports
//!    and the engine. Under overload, [`ServerHandle::submit`] sheds with
//!    a typed [`ShedReason`] instead of queueing unboundedly, and
//!    [`ServerHandle::submit_wait`] backpressures instead of shedding —
//!    the caller picks the failure mode. Every shed reply still carries
//!    the degraded compiler-default decision, so a refused caller always
//!    has something runnable: the serve-layer analogue of the
//!    dispatcher's "the host is never fully load-shed" rule.
//! 2. **Request coalescing.** Concurrent requests are drained in
//!    *windows* and evaluated with one
//!    [`decide_batch`](hetsel_core::DecisionEngine::decide_batch) call,
//!    amortising cache-shard locking and the rayon cold-miss pass across
//!    every request that arrived close together.
//! 3. **Real deadline timers.** A dedicated timer thread answers a
//!    deadline-carrying request the moment its budget expires — not
//!    after evaluation happens to finish, which is all a synchronous
//!    post-hoc elapsed check can do. Requests handed to the engine have
//!    their deadlines stripped so the two mechanisms never fight.
//!
//! The crate is instrumented through `hetsel-obs` end to end: a
//! queue-depth gauge (`hetsel.serve.queue.depth`), admission and shed
//! counters (`hetsel.serve.admitted`, `hetsel.serve.shed.<reason>`), a
//! per-window batch-size histogram (`hetsel.serve.window.batch`), and a
//! flight-recorder [`EventKind::Shed`](hetsel_obs::EventKind::Shed)
//! event for every shed request.
//!
//! ```text
//!  transports (stdin / tcp)          server threads
//!  ───────────────────────          ────────────────────────────
//!  parse line → submit ──┐
//!  parse line → submit ──┤ admission  ┌─ batcher: window → decide_batch
//!  parse line → submit ──┴─► queue ───┤         → (dispatch) → reply
//!                                     └─ timer: deadline → shed reply
//! ```

#![warn(missing_docs)]

mod pending;
mod proto;
mod queue;
mod server;
mod timer;
mod transport;
mod warmup;

pub use pending::{Completion, PendingRequest};
pub use proto::{
    parse_request_line, ReplyDecision, ReplyDispatch, ServeReply, ServeRequest, ShedReason,
};
pub use queue::{Admission, AdmissionQueue};
pub use server::{DecisionServer, ServeConfig, ServerHandle};
pub use timer::DeadlineTimer;
pub use transport::{serve_lines, serve_tcp, TransportStats};
pub use warmup::{warm_engine, WarmupReport, WarmupSource};

/// Shared helpers for in-crate unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use hetsel_core::{Decision, Device, DeviceId, Policy};
    use std::sync::Arc;

    /// A hand-built compiler-default decision for tests that need *a*
    /// decision without standing up an engine.
    pub fn degraded_decision() -> Decision {
        Decision {
            region: Arc::from("gemm"),
            device: Device::Host,
            device_id: DeviceId::HOST,
            device_name: Arc::from("host"),
            policy: Policy::AlwaysOffload,
            predicted_cpu_s: None,
            predicted_gpu_s: None,
            cpu_error: None,
            gpu_error: None,
            calibration: None,
        }
    }
}
