//! The wire protocol: newline-delimited JSON, one request and one reply
//! per line.
//!
//! A request line is an envelope around the engine's own
//! [`DecisionRequest`] serialization:
//!
//! ```json
//! {"id":7,"request":{"region":"gemm","binding":{"n":1024},"policy_override":null,"deadline_ns":50000},"dispatch":false}
//! ```
//!
//! `id` is an opaque caller correlation token echoed back verbatim
//! (optional; replies to id-less requests carry `"id":null`). `dispatch`
//! asks the server to execute the decision through the fault-tolerant
//! [`Dispatcher`](hetsel_core::Dispatcher) after deciding, and defaults
//! to false.
//!
//! Every request line gets exactly one reply line — including malformed
//! ones, which get a typed `"status":"error"` reply instead of a dropped
//! connection, and shed ones, which get `"status":"shed"` with a typed
//! reason and the degraded compiler-default decision so a caller always
//! has *something* to run with. That is the serve-layer face of the
//! dispatcher's "the host is never fully load-shed" rule: admission
//! control may refuse to spend model-evaluation budget on a request, but
//! it never refuses to answer it.

use hetsel_core::{Decision, DecisionRequest, DispatchOutcome};
use serde::{Deserialize, Serialize, Value};

/// Why the server refused to evaluate a request. The ordinal doubles as
/// the flight-recorder `detail` byte on
/// [`EventKind::Shed`](hetsel_obs::EventKind::Shed) events, mirroring how
/// dispatch encodes `FallbackReason`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity when the request arrived.
    QueueFull,
    /// The request's deadline expired (real timer, not a post-hoc check)
    /// before a coalescing window evaluated it.
    DeadlineExpired,
    /// The server was shutting down when the request was admitted or
    /// still queued.
    ShuttingDown,
}

impl ShedReason {
    /// Stable snake_case name: the JSON wire spelling and the metric leaf
    /// under `hetsel.serve.shed.<name>`.
    pub fn metric_key(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpired => "deadline_expired",
            ShedReason::ShuttingDown => "shutting_down",
        }
    }

    /// The flight-recorder detail byte (non-zero, mirroring
    /// `fallback_code` in hetsel-core).
    pub fn code(self) -> u8 {
        match self {
            ShedReason::QueueFull => 1,
            ShedReason::DeadlineExpired => 2,
            ShedReason::ShuttingDown => 3,
        }
    }

    /// Parses a [`ShedReason::metric_key`] spelling.
    pub fn parse(s: &str) -> Option<ShedReason> {
        match s {
            "queue_full" => Some(ShedReason::QueueFull),
            "deadline_expired" => Some(ShedReason::DeadlineExpired),
            "shutting_down" => Some(ShedReason::ShuttingDown),
            _ => None,
        }
    }
}

/// One parsed request line: the engine request plus the envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Caller correlation token, echoed back verbatim in the reply.
    pub id: Option<u64>,
    /// The decision request proper.
    pub request: DecisionRequest,
    /// Execute the decision through the dispatcher after deciding.
    pub dispatch: bool,
}

impl ServeRequest {
    /// A plain envelope around `request` with no id and no dispatch.
    pub fn new(request: DecisionRequest) -> ServeRequest {
        ServeRequest {
            id: None,
            request,
            dispatch: false,
        }
    }

    /// Builder: attach a correlation id.
    pub fn with_id(mut self, id: u64) -> ServeRequest {
        self.id = Some(id);
        self
    }

    /// Builder: ask for dispatch, not just a decision.
    pub fn with_dispatch(mut self) -> ServeRequest {
        self.dispatch = true;
        self
    }
}

impl Serialize for ServeRequest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), self.id.to_value()),
            ("request".to_string(), self.request.to_value()),
            ("dispatch".to_string(), Value::Bool(self.dispatch)),
        ])
    }
}

impl Deserialize for ServeRequest {
    fn from_value(v: &Value) -> Result<ServeRequest, serde::Error> {
        if !matches!(v, Value::Object(_)) {
            return Err(serde::Error::msg(format!(
                "expected a request object, found {v:?}"
            )));
        }
        let id = match v.get("id") {
            None | Some(Value::Null) => None,
            Some(other) => Some(<u64 as Deserialize>::from_value(other)?),
        };
        let request = match v.get("request") {
            Some(req) => DecisionRequest::from_value(req)?,
            None => return Err(serde::Error::msg("missing field: request")),
        };
        let dispatch = match v.get("dispatch") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(other) => return Err(serde::Error::msg(format!("bad dispatch flag: {other:?}"))),
        };
        Ok(ServeRequest {
            id,
            request,
            dispatch,
        })
    }
}

/// One reply line. Exactly one is written per request line, whatever
/// happened to the request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The request was evaluated. `degraded` is true when the engine's
    /// own deadline accounting degraded the decision (e.g. a zero-budget
    /// request); `dispatched` carries execution evidence when the
    /// envelope asked for dispatch.
    Ok {
        /// Echoed correlation id.
        id: Option<u64>,
        /// The decision taken.
        decision: ReplyDecision,
        /// True when the decision is a deadline-degraded compiler default.
        degraded: bool,
        /// Dispatch evidence, when the request asked for execution.
        dispatched: Option<ReplyDispatch>,
    },
    /// The request was refused by admission control; the carried decision
    /// is the degraded compiler default so the caller can still act.
    Shed {
        /// Echoed correlation id.
        id: Option<u64>,
        /// Why admission control refused the request.
        reason: ShedReason,
        /// The degraded compiler-default decision.
        decision: ReplyDecision,
    },
    /// The line could not be parsed into a request (or named an unknown
    /// region). The connection stays open; `message` says what was wrong.
    Error {
        /// Echoed correlation id, when one could be parsed.
        id: Option<u64>,
        /// Human-readable parse/validation failure.
        message: String,
    },
}

/// Wire form of a decision inside a reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyDecision {
    /// Region name.
    pub region: String,
    /// Kind-level device (`host` / `gpu`).
    pub device: String,
    /// Fleet label of the chosen device.
    pub device_name: String,
    /// Policy that made the choice ([`Policy::name`](hetsel_core::Policy::name) spelling).
    pub policy: String,
    /// Predicted host seconds, when the policy consulted the model.
    pub predicted_cpu_s: Option<f64>,
    /// Predicted accelerator seconds, when consulted.
    pub predicted_gpu_s: Option<f64>,
    /// True when online calibration *applied* corrections to the predicted
    /// times this verdict was taken over (Active mode, warm cells). Always
    /// serialized; absent in an incoming document means `false`, so
    /// pre-calibration peers interoperate unchanged.
    pub calibrated: bool,
}

impl ReplyDecision {
    /// Projects the engine's decision into its wire form.
    pub fn from_decision(d: &Decision) -> ReplyDecision {
        ReplyDecision {
            region: d.region.to_string(),
            device: d.device.name().to_string(),
            device_name: d.device_name.to_string(),
            policy: d.policy.name().to_string(),
            predicted_cpu_s: d.predicted_cpu_s,
            predicted_gpu_s: d.predicted_gpu_s,
            calibrated: d.calibration.is_some_and(|t| t.applied),
        }
    }
}

/// Wire form of a dispatch outcome inside an `ok` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyDispatch {
    /// Fleet label of the device the request finally ran on.
    pub device_name: String,
    /// Execution attempts across all devices.
    pub attempts: u32,
    /// First fallback reason, when the request left the decided path.
    pub fallback: Option<String>,
    /// Simulated execution seconds.
    pub simulated_s: f64,
}

impl ReplyDispatch {
    /// Projects the dispatcher's outcome into its wire form.
    pub fn from_outcome(o: &DispatchOutcome) -> ReplyDispatch {
        ReplyDispatch {
            device_name: o.device_name.to_string(),
            attempts: o.attempts,
            fallback: o.fallback.map(|f| f.metric_key().to_string()),
            simulated_s: o.simulated_s,
        }
    }
}

impl Serialize for ReplyDecision {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("region".to_string(), Value::Str(self.region.clone())),
            ("device".to_string(), Value::Str(self.device.clone())),
            (
                "device_name".to_string(),
                Value::Str(self.device_name.clone()),
            ),
            ("policy".to_string(), Value::Str(self.policy.clone())),
            (
                "predicted_cpu_s".to_string(),
                self.predicted_cpu_s.to_value(),
            ),
            (
                "predicted_gpu_s".to_string(),
                self.predicted_gpu_s.to_value(),
            ),
            ("calibrated".to_string(), Value::Bool(self.calibrated)),
        ])
    }
}

impl Deserialize for ReplyDecision {
    fn from_value(v: &Value) -> Result<ReplyDecision, serde::Error> {
        let field = |k: &str| -> Result<String, serde::Error> {
            match v.get(k) {
                Some(Value::Str(s)) => Ok(s.clone()),
                other => Err(serde::Error::msg(format!("bad {k}: {other:?}"))),
            }
        };
        let opt_f64 = |k: &str| -> Result<Option<f64>, serde::Error> {
            match v.get(k) {
                None | Some(Value::Null) => Ok(None),
                Some(other) => <f64 as Deserialize>::from_value(other).map(Some),
            }
        };
        Ok(ReplyDecision {
            region: field("region")?,
            device: field("device")?,
            device_name: field("device_name")?,
            policy: field("policy")?,
            predicted_cpu_s: opt_f64("predicted_cpu_s")?,
            predicted_gpu_s: opt_f64("predicted_gpu_s")?,
            calibrated: match v.get("calibrated") {
                None | Some(Value::Null) => false,
                Some(Value::Bool(b)) => *b,
                other => return Err(serde::Error::msg(format!("bad calibrated: {other:?}"))),
            },
        })
    }
}

impl Serialize for ReplyDispatch {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "device_name".to_string(),
                Value::Str(self.device_name.clone()),
            ),
            (
                "attempts".to_string(),
                Value::UInt(u64::from(self.attempts)),
            ),
            (
                "fallback".to_string(),
                match &self.fallback {
                    Some(f) => Value::Str(f.clone()),
                    None => Value::Null,
                },
            ),
            ("simulated_s".to_string(), Value::Float(self.simulated_s)),
        ])
    }
}

impl Deserialize for ReplyDispatch {
    fn from_value(v: &Value) -> Result<ReplyDispatch, serde::Error> {
        let device_name = match v.get("device_name") {
            Some(Value::Str(s)) => s.clone(),
            other => return Err(serde::Error::msg(format!("bad device_name: {other:?}"))),
        };
        let attempts = match v.get("attempts") {
            Some(n) => <u32 as Deserialize>::from_value(n)?,
            None => return Err(serde::Error::msg("missing field: attempts")),
        };
        let fallback = match v.get("fallback") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(s.clone()),
            other => return Err(serde::Error::msg(format!("bad fallback: {other:?}"))),
        };
        let simulated_s = match v.get("simulated_s") {
            Some(n) => <f64 as Deserialize>::from_value(n)?,
            None => return Err(serde::Error::msg("missing field: simulated_s")),
        };
        Ok(ReplyDispatch {
            device_name,
            attempts,
            fallback,
            simulated_s,
        })
    }
}

impl ServeReply {
    /// The echoed correlation id, whatever the status.
    pub fn id(&self) -> Option<u64> {
        match self {
            ServeReply::Ok { id, .. }
            | ServeReply::Shed { id, .. }
            | ServeReply::Error { id, .. } => *id,
        }
    }

    /// Wire status string: `ok` / `shed` / `error`.
    pub fn status(&self) -> &'static str {
        match self {
            ServeReply::Ok { .. } => "ok",
            ServeReply::Shed { .. } => "shed",
            ServeReply::Error { .. } => "error",
        }
    }

    /// An `ok` reply for a freshly evaluated request.
    pub fn ok(
        id: Option<u64>,
        decision: &Decision,
        degraded: bool,
        dispatched: Option<&DispatchOutcome>,
    ) -> ServeReply {
        ServeReply::Ok {
            id,
            decision: ReplyDecision::from_decision(decision),
            degraded,
            dispatched: dispatched.map(ReplyDispatch::from_outcome),
        }
    }

    /// A `shed` reply carrying the degraded compiler default.
    pub fn shed(id: Option<u64>, reason: ShedReason, decision: &Decision) -> ServeReply {
        ServeReply::Shed {
            id,
            reason,
            decision: ReplyDecision::from_decision(decision),
        }
    }

    /// An `error` reply.
    pub fn error(id: Option<u64>, message: impl Into<String>) -> ServeReply {
        ServeReply::Error {
            id,
            message: message.into(),
        }
    }
}

impl Serialize for ServeReply {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), self.id().to_value()),
            ("status".to_string(), Value::Str(self.status().to_string())),
        ];
        match self {
            ServeReply::Ok {
                decision,
                degraded,
                dispatched,
                ..
            } => {
                fields.push(("decision".to_string(), decision.to_value()));
                fields.push(("degraded".to_string(), Value::Bool(*degraded)));
                fields.push((
                    "dispatched".to_string(),
                    match dispatched {
                        Some(d) => d.to_value(),
                        None => Value::Null,
                    },
                ));
            }
            ServeReply::Shed {
                reason, decision, ..
            } => {
                fields.push((
                    "reason".to_string(),
                    Value::Str(reason.metric_key().to_string()),
                ));
                fields.push(("decision".to_string(), decision.to_value()));
            }
            ServeReply::Error { message, .. } => {
                fields.push(("message".to_string(), Value::Str(message.clone())));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServeReply {
    fn from_value(v: &Value) -> Result<ServeReply, serde::Error> {
        let id = match v.get("id") {
            None | Some(Value::Null) => None,
            Some(other) => Some(<u64 as Deserialize>::from_value(other)?),
        };
        let status = match v.get("status") {
            Some(Value::Str(s)) => s.clone(),
            other => return Err(serde::Error::msg(format!("bad status: {other:?}"))),
        };
        match status.as_str() {
            "ok" => {
                let decision = match v.get("decision") {
                    Some(d) => ReplyDecision::from_value(d)?,
                    None => return Err(serde::Error::msg("missing field: decision")),
                };
                let degraded = match v.get("degraded") {
                    Some(Value::Bool(b)) => *b,
                    other => return Err(serde::Error::msg(format!("bad degraded: {other:?}"))),
                };
                let dispatched = match v.get("dispatched") {
                    None | Some(Value::Null) => None,
                    Some(d) => Some(ReplyDispatch::from_value(d)?),
                };
                Ok(ServeReply::Ok {
                    id,
                    decision,
                    degraded,
                    dispatched,
                })
            }
            "shed" => {
                let reason = match v.get("reason") {
                    Some(Value::Str(s)) => ShedReason::parse(s)
                        .ok_or_else(|| serde::Error::msg(format!("unknown shed reason {s:?}")))?,
                    other => return Err(serde::Error::msg(format!("bad reason: {other:?}"))),
                };
                let decision = match v.get("decision") {
                    Some(d) => ReplyDecision::from_value(d)?,
                    None => return Err(serde::Error::msg("missing field: decision")),
                };
                Ok(ServeReply::Shed {
                    id,
                    reason,
                    decision,
                })
            }
            "error" => {
                let message = match v.get("message") {
                    Some(Value::Str(s)) => s.clone(),
                    other => return Err(serde::Error::msg(format!("bad message: {other:?}"))),
                };
                Ok(ServeReply::Error { id, message })
            }
            other => Err(serde::Error::msg(format!("unknown status {other:?}"))),
        }
    }
}

/// Parses one request line. Returns the typed error reply (never panics)
/// when the line is not a valid request; blank lines are the caller's
/// business (transports skip them). The error side is boxed: replies are
/// wide (they carry a whole degraded decision in the shed arm) and the
/// refusal path is cold.
pub fn parse_request_line(line: &str) -> Result<ServeRequest, Box<ServeReply>> {
    match serde_json::from_str::<ServeRequest>(line) {
        Ok(req) => Ok(req),
        Err(e) => {
            // Best-effort id recovery so even a reply to a half-broken
            // line correlates, when the envelope's id did parse.
            let id = serde_json::from_str::<Value>(line)
                .ok()
                .and_then(|v| match v.get("id") {
                    Some(Value::UInt(n)) => Some(*n),
                    Some(Value::Int(n)) => u64::try_from(*n).ok(),
                    _ => None,
                });
            Err(Box::new(ServeReply::error(id, format!("bad request: {e}"))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_ir::Binding;

    #[test]
    fn request_envelope_round_trips() {
        let req = ServeRequest::new(DecisionRequest::new(
            "gemm",
            Binding::new().with("ni", 1024),
        ))
        .with_id(7)
        .with_dispatch();
        let json = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        // id and dispatch are optional on the wire.
        let min = r#"{"request":{"region":"atax","binding":{}}}"#;
        let back: ServeRequest = serde_json::from_str(min).unwrap();
        assert_eq!(back.id, None);
        assert!(!back.dispatch);
        assert_eq!(back.request.region(), "atax");
    }

    #[test]
    fn malformed_lines_become_typed_error_replies() {
        for line in [
            "",
            "not json",
            "{}",
            "[1,2,3]",
            r#"{"id":3}"#,
            r#"{"request":{"region":42,"binding":{}}}"#,
            r#"{"id":"x","request":{"region":"gemm","binding":{}}}"#,
        ] {
            let reply = parse_request_line(line).expect_err("must not parse");
            assert_eq!(reply.status(), "error");
        }
        // A parsable id survives into the error reply.
        let reply = parse_request_line(r#"{"id":3}"#).expect_err("no request field");
        assert_eq!(reply.id(), Some(3));
    }

    #[test]
    fn shed_reasons_have_stable_spellings() {
        for r in [
            ShedReason::QueueFull,
            ShedReason::DeadlineExpired,
            ShedReason::ShuttingDown,
        ] {
            assert_eq!(ShedReason::parse(r.metric_key()), Some(r));
            assert_ne!(r.code(), 0, "0 is the no-shed detail byte");
        }
        assert_eq!(ShedReason::parse("nonsense"), None);
    }
}
