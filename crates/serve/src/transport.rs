//! Line transports: newline-delimited JSON over any `BufRead`/`Write`
//! pair, plus a thread-per-connection TCP front-end.
//!
//! The transport contract is strict: **one reply line per request line,
//! in order, whatever happens**. A malformed line produces a typed
//! `"status":"error"` reply — it never panics the serving thread and
//! never drops the connection, because a client that interleaves a
//! corrupt line between good ones must still be able to correlate the
//! replies to its remaining requests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use crate::proto::parse_request_line;
use crate::server::ServerHandle;

/// What one transport session processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Non-blank request lines read.
    pub lines: u64,
    /// Reply lines written (equals `lines` unless the writer failed).
    pub replies: u64,
    /// Replies that were typed errors (malformed lines, unknown regions).
    pub errors: u64,
}

/// Serves one line session: reads request lines from `reader` until EOF,
/// writes exactly one reply line each to `writer`. Returns the session's
/// counts; an `Err` is an I/O failure on the transport itself (the
/// protocol never errors the stream).
pub fn serve_lines(
    handle: &ServerHandle,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<TransportStats> {
    let mut stats = TransportStats::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        stats.lines += 1;
        let reply = match parse_request_line(&line) {
            Ok(request) => handle.call(request),
            Err(error_reply) => {
                hetsel_obs::static_counter!("hetsel.serve.bad_request").inc();
                *error_reply
            }
        };
        if reply.status() == "error" {
            stats.errors += 1;
        }
        let rendered = serde_json::to_string(&reply).expect("replies always serialize");
        writer.write_all(rendered.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        stats.replies += 1;
    }
    Ok(stats)
}

/// Accept loop: serves every connection on `listener` in its own thread
/// until the listener errors (each connection runs [`serve_lines`] over
/// the socket). Never returns under normal operation.
pub fn serve_tcp(listener: TcpListener, handle: ServerHandle) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let handle = handle.clone();
        std::thread::Builder::new()
            .name("hetsel-serve-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(&handle, stream);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

fn serve_connection(handle: &ServerHandle, stream: TcpStream) -> io::Result<TransportStats> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(handle, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ServeReply, ServeRequest};
    use crate::server::{DecisionServer, ServeConfig};
    use hetsel_core::{
        DecisionEngine, DecisionRequest, Dispatcher, DispatcherConfig, Platform, Selector,
    };
    use hetsel_polybench::{find_kernel, Dataset};
    use std::io::Cursor;

    fn server() -> DecisionServer {
        let (kernel, _) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(
            Selector::new(Platform::power9_v100()),
            std::slice::from_ref(&kernel),
        );
        DecisionServer::start(
            Dispatcher::new(engine, DispatcherConfig::default()),
            ServeConfig::default(),
        )
    }

    fn request_line(id: u64) -> String {
        let (_, binding) = find_kernel("gemm").unwrap();
        let req = ServeRequest::new(DecisionRequest::new("gemm", binding(Dataset::Benchmark)))
            .with_id(id);
        serde_json::to_string(&req).unwrap()
    }

    fn replies(output: &[u8]) -> Vec<ServeReply> {
        std::str::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str::<ServeReply>(l).expect("well-formed reply line"))
            .collect()
    }

    #[test]
    fn one_reply_per_line_in_order() {
        let server = server();
        let input = format!(
            "{}\n{}\n\n{}\n",
            request_line(1),
            request_line(2),
            request_line(3)
        );
        let mut out = Vec::new();
        let stats = serve_lines(&server.handle(), Cursor::new(input), &mut out).unwrap();
        assert_eq!((stats.lines, stats.replies, stats.errors), (3, 3, 0));
        let replies = replies(&out);
        assert_eq!(replies.len(), 3);
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.status(), "ok");
            assert_eq!(reply.id(), Some(i as u64 + 1));
        }
        server.shutdown();
    }

    #[test]
    fn malformed_line_gets_error_reply_and_session_continues() {
        let server = server();
        let input = format!(
            "{}\nthis is not json\n{{\"id\":9}}\n{}\n",
            request_line(1),
            request_line(2)
        );
        let mut out = Vec::new();
        let stats = serve_lines(&server.handle(), Cursor::new(input), &mut out).unwrap();
        assert_eq!((stats.lines, stats.replies, stats.errors), (4, 4, 2));
        let replies = replies(&out);
        assert_eq!(replies[0].status(), "ok");
        assert_eq!(replies[1].status(), "error");
        // The parsable id survives into the error reply.
        assert_eq!(replies[2].status(), "error");
        assert_eq!(replies[2].id(), Some(9));
        // The session kept serving after the garbage.
        assert_eq!(replies[3].status(), "ok");
        assert_eq!(replies[3].id(), Some(2));
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        let server = server();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = server.handle();
        std::thread::spawn(move || {
            let _ = serve_tcp(listener, handle);
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for id in [5u64, 6] {
            writer
                .write_all(format!("{}\n", request_line(id)).as_bytes())
                .unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let reply: ServeReply = serde_json::from_str(&line).unwrap();
            assert_eq!(reply.status(), "ok");
            assert_eq!(reply.id(), Some(id));
        }
        drop(writer);
        server.shutdown();
    }
}
