//! The `hetsel-serve` binary: the decision service over the full
//! Polybench attribute database.
//!
//! ```text
//! # stdin/stdout, one JSON request per line, one JSON reply per line:
//! echo '{"id":1,"request":{"region":"gemm","binding":{"n":1024}}}' \
//!     | cargo run --release -p hetsel-serve
//!
//! # TCP front-end:
//! cargo run --release -p hetsel-serve -- --tcp 127.0.0.1:7878
//! ```
//!
//! Options: `--tcp ADDR` (default: stdin/stdout), `--queue N`,
//! `--batch N`, `--window-us N` (admission/coalescing tuning),
//! `--snapshot PATH` (warm the engine from a compiled-model snapshot —
//! written back on first run, reused for near-zero-cost reload after).

use std::io::{self, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use hetsel_core::{Dispatcher, DispatcherConfig, Platform, Selector};
use hetsel_ir::Kernel;
use hetsel_serve::{
    serve_lines, serve_tcp, warm_engine, DecisionServer, ServeConfig, WarmupSource,
};

fn main() {
    let mut tcp: Option<String> = None;
    let mut snapshot: Option<PathBuf> = None;
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--tcp" => tcp = Some(value("--tcp")),
            "--snapshot" => snapshot = Some(PathBuf::from(value("--snapshot"))),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().expect("--queue takes a count")
            }
            "--batch" => {
                config.max_batch = value("--batch").parse().expect("--batch takes a count")
            }
            "--window-us" => {
                config.window = Duration::from_micros(
                    value("--window-us").parse().expect("--window-us takes µs"),
                )
            }
            other => {
                eprintln!("unknown argument {other:?} (options: --tcp ADDR, --snapshot PATH, --queue N, --batch N, --window-us N)");
                std::process::exit(2);
            }
        }
    }

    let kernels: Vec<Kernel> = hetsel_polybench::all_kernels()
        .into_iter()
        .map(|(_, kernel, _)| kernel)
        .collect();
    // Warm the engine fully — snapshot restore or compile — before any
    // transport accepts a request, so the first caller is never shed or
    // slowed by model compilation.
    let (engine, warmup) = warm_engine(
        Selector::new(Platform::power9_v100()),
        &kernels,
        snapshot.as_deref(),
    );
    match &warmup.source {
        WarmupSource::Snapshot => eprintln!(
            "[hetsel-serve] warmed from snapshot in {:.2} ms ({} regions)",
            warmup.warmup_ns as f64 / 1e6,
            warmup.regions
        ),
        WarmupSource::Compiled => eprintln!(
            "[hetsel-serve] compiled models in {:.2} ms ({} regions)",
            warmup.warmup_ns as f64 / 1e6,
            warmup.regions
        ),
        WarmupSource::Fallback(err) => eprintln!(
            "[hetsel-serve] snapshot unusable ({err}); compiled models in {:.2} ms and refreshed the snapshot",
            warmup.warmup_ns as f64 / 1e6
        ),
    }
    let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
    let server = DecisionServer::start(dispatcher, config);
    let handle = server.handle();

    match tcp {
        Some(addr) => {
            let listener = TcpListener::bind(&addr).expect("bind --tcp address");
            eprintln!(
                "[hetsel-serve] listening on {} ({} regions)",
                listener.local_addr().expect("bound address"),
                kernels.len()
            );
            serve_tcp(listener, handle).expect("accept loop");
        }
        None => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            let stats = serve_lines(&handle, BufReader::new(stdin.lock()), stdout.lock())
                .expect("stdio transport");
            let mut err = io::stderr();
            let _ = writeln!(
                err,
                "[hetsel-serve] served {} requests ({} errors)",
                stats.replies, stats.errors
            );
        }
    }
    server.shutdown();
}
