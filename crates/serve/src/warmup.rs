//! Snapshot-backed engine warm-up.
//!
//! A serve process must not shed (or slow-walk) its first real request
//! because it is still compiling models. This module builds the
//! [`DecisionEngine`] *before* any transport starts accepting traffic,
//! preferring a compiled-model snapshot (`--snapshot PATH` on the binary)
//! over the full static-analysis cold path, and reports how long the whole
//! warm-up took through the `hetsel.serve.warmup_ns` gauge.

use hetsel_core::{
    AttributeDatabase, DecisionEngine, Selector, SnapshotError, DEFAULT_DECISION_CACHE,
};
use hetsel_ir::Kernel;
use std::path::Path;
use std::time::Instant;

/// Where the warmed engine's database came from.
#[derive(Debug, Clone, PartialEq)]
pub enum WarmupSource {
    /// Restored from a valid snapshot — no compilation ran.
    Snapshot,
    /// No snapshot path was given; compiled from IR.
    Compiled,
    /// A snapshot path was given but unusable (the typed reason is
    /// attached); compiled from IR and, best-effort, a fresh snapshot was
    /// written back to the path for the next process.
    Fallback(SnapshotError),
}

/// What [`warm_engine`] did, for the startup log line and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupReport {
    /// End-to-end warm-up time (database + engine construction), ns.
    pub warmup_ns: u64,
    /// How the database was obtained.
    pub source: WarmupSource,
    /// Regions the engine can decide for.
    pub regions: usize,
}

/// Builds a ready-to-serve [`DecisionEngine`], from `snapshot` when one is
/// given and valid for `selector`'s configuration, from a full compile
/// otherwise. Sets the `hetsel.serve.warmup_ns` gauge to the elapsed
/// warm-up time either way, so operators can see exactly what the cold
/// path cost this process.
pub fn warm_engine(
    selector: Selector,
    kernels: &[Kernel],
    snapshot: Option<&Path>,
) -> (DecisionEngine, WarmupReport) {
    let start = Instant::now();
    let (database, source) = match snapshot {
        Some(path) => {
            let (db, fallback) = AttributeDatabase::load_or_compile(path, kernels, &selector);
            let source = match fallback {
                None => WarmupSource::Snapshot,
                Some(err) => WarmupSource::Fallback(err),
            };
            (db, source)
        }
        None => (
            AttributeDatabase::compile(kernels, &selector),
            WarmupSource::Compiled,
        ),
    };
    let regions = database.len();
    let engine = DecisionEngine::from_database(selector, database, DEFAULT_DECISION_CACHE);
    let warmup_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hetsel_obs::static_gauge!("hetsel.serve.warmup_ns").set(warmup_ns.min(i64::MAX as u64) as i64);
    (
        engine,
        WarmupReport {
            warmup_ns,
            source,
            regions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_core::Platform;
    use hetsel_ir::Binding;

    fn kernels() -> Vec<Kernel> {
        hetsel_polybench::atax::kernels()
    }

    fn selector() -> Selector {
        Selector::new(Platform::power9_v100())
    }

    #[test]
    fn warm_without_snapshot_compiles() {
        let (engine, report) = warm_engine(selector(), &kernels(), None);
        assert_eq!(report.source, WarmupSource::Compiled);
        assert_eq!(report.regions, 2);
        assert!(report.warmup_ns > 0);
        assert!(hetsel_obs::static_gauge!("hetsel.serve.warmup_ns").get() > 0);
        let d = engine
            .decide("atax.k1", &Binding::new().with("n", 4000))
            .unwrap();
        assert!(d.predicted_cpu_s.unwrap() > 0.0);
    }

    #[test]
    fn warm_from_snapshot_answers_first_request_identically() {
        let dir = std::env::temp_dir().join(format!("hetsel-warmup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atax.hsnp");
        let _ = std::fs::remove_file(&path);

        // First warm-up: path missing → typed fallback, snapshot written.
        let (cold_engine, cold) = warm_engine(selector(), &kernels(), Some(&path));
        assert!(matches!(
            cold.source,
            WarmupSource::Fallback(SnapshotError::Io(_))
        ));
        assert!(path.exists());

        // Second warm-up: snapshot path — no compile, same decisions.
        let (snap_engine, warm) = warm_engine(selector(), &kernels(), Some(&path));
        assert_eq!(warm.source, WarmupSource::Snapshot);
        assert_eq!(warm.regions, cold.regions);
        let binding = Binding::new().with("n", 4000);
        let a = cold_engine.decide("atax.k1", &binding).unwrap();
        let b = snap_engine.decide("atax.k1", &binding).unwrap();
        assert_eq!(a.device, b.device);
        assert_eq!(
            a.predicted_cpu_s.unwrap().to_bits(),
            b.predicted_cpu_s.unwrap().to_bits()
        );
        assert_eq!(
            a.predicted_gpu_s.unwrap().to_bits(),
            b.predicted_gpu_s.unwrap().to_bits()
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
