//! The deadline timer: a dedicated thread over a min-heap of expiries.
//!
//! The engine's own deadline handling is a *post-hoc* elapsed check — it
//! evaluates, then notices the budget is gone. That is the right shape
//! inside a synchronous call (there is nobody else to answer), but a
//! server can do better: this timer fires the moment a queued request's
//! budget expires, completing it with a typed shed *while it is still
//! waiting*, so the caller gets its degraded answer exactly on deadline
//! instead of whenever a batch window happens to reach the request.
//!
//! One thread, one `BinaryHeap<Reverse<expiry>>`, one condvar: the
//! thread sleeps until the earliest expiry (or indefinitely when the
//! heap is empty), pops everything due, and hands each still-unanswered
//! request to the expiry callback supplied by the server. Requests the
//! batcher already answered are skipped — the [`Completion`]
//! first-completer-wins rule makes the race benign.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::pending::PendingRequest;

/// Heap entry: ordered by expiry (earliest first under `Reverse`), with
/// an insertion tick to keep the ordering total and deterministic when
/// expiries tie.
struct Entry {
    expires: Instant,
    tick: u64,
    request: Arc<PendingRequest>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.expires == other.expires && self.tick == other.tick
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        (self.expires, self.tick).cmp(&(other.expires, other.tick))
    }
}

struct TimerState {
    heap: BinaryHeap<Reverse<Entry>>,
    next_tick: u64,
    closed: bool,
}

struct TimerShared {
    state: Mutex<TimerState>,
    wake: Condvar,
}

impl TimerShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, TimerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Handle to the running timer thread.
pub struct DeadlineTimer {
    shared: Arc<TimerShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl DeadlineTimer {
    /// Spawns the timer thread. `on_expire` runs *on the timer thread*
    /// for every scheduled request whose expiry passes before anything
    /// else completed it; it must complete the request (the server's
    /// callback sheds it with
    /// [`ShedReason::DeadlineExpired`](crate::ShedReason::DeadlineExpired)).
    pub fn start(on_expire: impl Fn(&Arc<PendingRequest>) + Send + 'static) -> DeadlineTimer {
        let shared = Arc::new(TimerShared {
            state: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                next_tick: 0,
                closed: false,
            }),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("hetsel-serve-timer".to_string())
            .spawn(move || run(&thread_shared, &on_expire))
            .expect("spawn timer thread");
        DeadlineTimer {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Arms the timer for `request` (no-op for deadline-less requests).
    pub fn schedule(&self, request: &Arc<PendingRequest>) {
        let Some(expires) = request.expires else {
            return;
        };
        let mut state = self.shared.lock();
        if state.closed {
            return;
        }
        let tick = state.next_tick;
        state.next_tick += 1;
        state.heap.push(Reverse(Entry {
            expires,
            tick,
            request: Arc::clone(request),
        }));
        drop(state);
        // The new entry may be the new earliest expiry.
        self.shared.wake.notify_one();
    }

    /// Number of armed (not yet fired) deadlines.
    pub fn armed(&self) -> usize {
        self.shared.lock().heap.len()
    }

    /// Stops the thread. Entries still armed are dropped without firing —
    /// shutdown sheds queued requests through its own path, and answered
    /// requests need nothing from the timer. Idempotent.
    pub fn shutdown(&self) {
        self.shared.lock().closed = true;
        self.shared.wake.notify_all();
        let thread = self
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}

impl Drop for DeadlineTimer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(shared: &TimerShared, on_expire: &(impl Fn(&Arc<PendingRequest>) + Send + 'static)) {
    let mut state = shared.lock();
    loop {
        if state.closed {
            return;
        }
        // Fire everything due; collect first so the callback runs without
        // the heap lock held (it completes requests and touches metrics).
        let now = Instant::now();
        let mut due: Vec<Arc<PendingRequest>> = Vec::new();
        while state.heap.peek().is_some_and(|Reverse(e)| e.expires <= now) {
            let Reverse(entry) = state.heap.pop().expect("peeked entry pops");
            // Skip requests the batcher (or shutdown) already answered.
            if !entry.request.done.is_done() {
                due.push(entry.request);
            }
        }
        if !due.is_empty() {
            drop(state);
            for request in &due {
                on_expire(request);
            }
            state = shared.lock();
            continue;
        }
        // Sleep until the earliest expiry, or until armed/closed.
        state = match state.heap.peek() {
            Some(Reverse(e)) => {
                let timeout = e.expires.saturating_duration_since(now);
                shared
                    .wake
                    .wait_timeout(state, timeout)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shared
                .wake
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ServeReply, ServeRequest, ShedReason};
    use hetsel_core::DecisionRequest;
    use hetsel_ir::Binding;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn pending(deadline: Duration) -> Arc<PendingRequest> {
        Arc::new(PendingRequest::new(ServeRequest::new(
            DecisionRequest::new("gemm", Binding::new()).with_deadline(deadline),
        )))
    }

    #[test]
    fn expired_requests_fire_in_deadline_order() {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let fired2 = Arc::clone(&fired);
        let timer = DeadlineTimer::start(move |req| {
            fired2
                .lock()
                .unwrap()
                .push(req.serve.request.deadline().unwrap());
            req.done.complete(ServeReply::error(None, "expired (test)"));
        });
        let late = pending(Duration::from_millis(40));
        let soon = pending(Duration::from_millis(5));
        timer.schedule(&late);
        timer.schedule(&soon);
        let start = Instant::now();
        let soon_reply = soon.done.wait();
        assert!(
            start.elapsed() < Duration::from_millis(35),
            "short deadline waited for the long one"
        );
        assert_eq!(soon_reply.status(), "error");
        late.done.wait();
        let order = fired.lock().unwrap().clone();
        assert_eq!(
            order,
            vec![Duration::from_millis(5), Duration::from_millis(40)]
        );
    }

    #[test]
    fn answered_requests_do_not_fire() {
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let timer = DeadlineTimer::start(move |req| {
            count2.fetch_add(1, Ordering::SeqCst);
            req.done.complete(ServeReply::error(None, "expired (test)"));
        });
        let req = pending(Duration::from_millis(20));
        timer.schedule(&req);
        // The "batcher" answers first.
        assert!(req.done.complete(ServeReply::shed(
            None,
            ShedReason::ShuttingDown,
            &crate::tests_support::degraded_decision(),
        )));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            count.load(Ordering::SeqCst),
            0,
            "timer fired on an answered request"
        );
    }

    #[test]
    fn shutdown_joins_and_drops_armed_entries() {
        let timer = DeadlineTimer::start(|req| {
            req.done.complete(ServeReply::error(None, "expired (test)"));
        });
        let req = pending(Duration::from_secs(3600));
        timer.schedule(&req);
        assert_eq!(timer.armed(), 1);
        timer.shutdown();
        assert!(!req.done.is_done(), "shutdown must not fire deadlines");
        // Scheduling after shutdown is a no-op.
        timer.schedule(&pending(Duration::from_millis(1)));
        assert_eq!(timer.armed(), 1);
    }
}
