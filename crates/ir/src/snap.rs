//! Binary snapshot codec for compiled model artifacts.
//!
//! The decide path's cold cliff is compilation: lowering a [`crate::Kernel`]
//! through IPDA, MCA and the analytical models costs tens of microseconds per
//! region, while a warm decision costs ~110 ns. This module is the foundation
//! of the snapshot subsystem that removes the cliff — every compiled artifact
//! (postfix bytecode, interned symbol tables, loadouts, memo tables) can be
//! written once as a flat little-endian byte stream and reloaded with nothing
//! but a linear decode pass.
//!
//! Design rules, in order of importance:
//!
//! 1. **Never a silently wrong model.** A sealed container carries a magic,
//!    a format version, a payload kind, the model-parameter fingerprint of
//!    the fleet it was built for, and an FNV-1a/fmix64 checksum over the
//!    payload — the same hash family as the decision cache key in
//!    `hetsel-core`. [`open`] verifies all of them, in an order that maps
//!    each corruption class to a distinct [`SnapError`] variant.
//! 2. **Never a panic.** Decoding is total: every length is bounds-checked
//!    against the remaining bytes before allocation, every enum tag and every
//!    invariant (postfix stack discipline, UTF-8, bool bytes) is validated,
//!    and failure is always a typed error the caller can turn into a
//!    recompile.
//! 3. **Bit-for-bit round trips.** `f64` travels as raw IEEE bits, `i64` as
//!    two's-complement `u64`, so a reloaded model reproduces the original's
//!    arithmetic exactly — including NaN payloads and wrapping behaviour.
//!
//! The encoding itself is deliberately boring: fixed-width little-endian
//! integers, `u64` length prefixes, structs as field sequences, enums as a
//! `u8` tag plus payload. There is no back-compat machinery *within* a
//! version — any format change bumps [`SNAP_VERSION`] and old files recompile.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

/// Snapshot container magic: identifies a hetsel snapshot file.
pub const SNAP_MAGIC: [u8; 4] = *b"HSNP";

/// Snapshot format version. Bump on any encoding change; readers reject
/// every other version and fall back to recompilation.
///
/// * v1 — initial format: byte-serial FNV checksum, attribute payload as one
///   `Vec<RegionAttributes>` with each compiled model embedding its own copy
///   of the kernel.
/// * v2 — word-folded checksum; attribute payload is a region *index*
///   (names + blob lengths) followed by independently decodable per-region
///   blobs, each storing its kernel once and sharing it across the region's
///   models. Blobs decode lazily, so a load touches only the regions it is
///   asked about.
pub const SNAP_VERSION: u16 = 2;

/// Payload kind: a compiled `AttributeDatabase` (regions + models).
pub const PAYLOAD_ATTRIBUTE_DB: u8 = 1;

/// Payload kind: calibration state (`CalibRow` table).
pub const PAYLOAD_CALIBRATION: u8 = 2;

/// Bytes of container header preceding the payload:
/// magic (4) + version (2) + kind (1) + fingerprint (8) + payload length (8)
/// + payload checksum (8).
pub const HEADER_LEN: usize = 4 + 2 + 1 + 8 + 8 + 8;

/// A typed decode/validation failure. Every variant is a *recoverable*
/// signal: the caller recompiles from source IR instead of trusting the
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the decoder got the bytes it needed.
    Truncated,
    /// The container does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The container was written by a different format version.
    UnsupportedVersion {
        /// Version stored in the container.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The container holds a different payload kind than requested.
    WrongPayloadKind {
        /// Kind stored in the container.
        found: u8,
        /// Kind the caller asked for.
        expected: u8,
    },
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the container header.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The snapshot was built for a different model-parameter fingerprint.
    FingerprintMismatch {
        /// Fingerprint stored in the container header.
        stored: u64,
        /// Fingerprint of the models the caller is running.
        expected: u64,
    },
    /// Bytes decoded but violated an invariant (bad enum tag, invalid
    /// UTF-8, malformed postfix program, ...).
    Malformed(&'static str),
    /// Well-formed payload followed by unexpected extra bytes.
    TrailingBytes,
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a hetsel snapshot (bad magic)"),
            SnapError::UnsupportedVersion { found, expected } => {
                write!(f, "snapshot format v{found} (this build reads v{expected})")
            }
            SnapError::WrongPayloadKind { found, expected } => {
                write!(f, "snapshot holds payload kind {found}, expected {expected}")
            }
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapError::FingerprintMismatch { stored, expected } => write!(
                f,
                "snapshot fleet fingerprint {stored:#018x} does not match running models {expected:#018x}"
            ),
            SnapError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
            SnapError::TrailingBytes => write!(f, "snapshot has trailing bytes after payload"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over `bytes`, finalized with the MurmurHash3 `fmix64` avalanche —
/// the same hash family the decision cache key uses in `hetsel-core`.
///
/// Folds whole little-endian `u64` words through the FNV multiply instead of
/// single bytes: the container checksum runs over every snapshot load, and
/// the byte-serial loop was the single largest cost of validating a
/// ~100 KiB container (~8× slower than this). The word-folded variant is a
/// different (but equally well-mixed) function than byte-serial FNV-1a;
/// that is fine because the checksum only ever compares against values this
/// same function produced — compatibility is owned by [`SNAP_VERSION`].
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // Fold the length in so payloads that differ only by trailing zero bytes
    // cannot collide (word-folding XORs zeros through unchanged).
    h ^= bytes.len() as u64;
    h = h.wrapping_mul(PRIME);
    fmix64(h)
}

/// MurmurHash3's 64-bit finalizer: full avalanche so near-identical payloads
/// land on unrelated checksums.
pub fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Wraps an encoded payload in the versioned container: header (magic,
/// version, kind, fingerprint, length, checksum) followed by the payload.
pub fn seal(kind: u8, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a sealed container and returns a view of its payload.
///
/// Checks run in a fixed order so each corruption class reports its own
/// error: truncation → magic → version → payload kind → payload length →
/// checksum → fleet fingerprint (skipped when `expected_fingerprint` is
/// `None`). The fingerprint runs last: it only means anything once the
/// container has proven internally consistent.
pub fn open(
    bytes: &[u8],
    expected_kind: u8,
    expected_fingerprint: Option<u64>,
) -> Result<&[u8], SnapError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapError::Truncated);
    }
    if bytes[0..4] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SNAP_VERSION {
        return Err(SnapError::UnsupportedVersion {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    let kind = bytes[6];
    if kind != expected_kind {
        return Err(SnapError::WrongPayloadKind {
            found: kind,
            expected: expected_kind,
        });
    }
    let fingerprint = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[15..23].try_into().unwrap());
    let stored_sum = u64::from_le_bytes(bytes[23..31].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    let payload_len = usize::try_from(payload_len).map_err(|_| SnapError::Truncated)?;
    if payload.len() < payload_len {
        return Err(SnapError::Truncated);
    }
    if payload.len() > payload_len {
        return Err(SnapError::TrailingBytes);
    }
    let computed = checksum(payload);
    if computed != stored_sum {
        return Err(SnapError::ChecksumMismatch {
            stored: stored_sum,
            computed,
        });
    }
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(SnapError::FingerprintMismatch {
                stored: fingerprint,
                expected,
            });
        }
    }
    Ok(payload)
}

/// The fingerprint stored in a sealed container's header, without
/// validating the payload. Used for diagnostics only.
pub fn peek_fingerprint(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != SNAP_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(bytes[7..15].try_into().unwrap()))
}

/// Interns a string into the process-wide static-string registry, leaking
/// at most one allocation per distinct name.
///
/// Compiled models carry `&'static str` names (platform, core and bus
/// descriptors are built from `const` data). Deserialization has no `'static`
/// source for those bytes, so reloaded names are leaked once and reused: the
/// set of distinct descriptor names is tiny and fixed, making the leak
/// bounded for the life of the process.
pub fn intern_static(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = registry.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&interned) = set.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Encoder: an append-only byte buffer with fixed-width little-endian
/// primitive writers.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// The bytes encoded so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` as its two's-complement bits.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-for-bit round trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one strict byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix. For container layouts whose
    /// lengths are recorded elsewhere (e.g. a region index followed by
    /// concatenated blobs).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Decoder: a cursor over an encoded byte slice. Every read is
/// bounds-checked; running past the end is [`SnapError::Truncated`], never
/// a panic.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64` from its two's-complement bits.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a `usize`, rejecting values that do not fit this platform.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::Malformed("usize overflow"))
    }

    /// Reads an element count and sanity-checks it against the remaining
    /// bytes: every element of every [`Snap`] type encodes to at least one
    /// byte, so a count exceeding `remaining()` is corrupt. This bounds
    /// allocation before it happens — a flipped length byte cannot make the
    /// decoder reserve gigabytes.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a strict `bool` byte (anything but 0/1 is malformed).
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte not 0/1")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        let n = self.get_len()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| SnapError::Malformed("invalid UTF-8"))
    }

    /// Succeeds only if every byte has been consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// Flat binary serialization for one compiled-artifact type.
///
/// Implementations live next to the type they encode (same module, so
/// private fields stay private); most structs use
/// [`snap_struct!`](crate::snap_struct). The
/// contract is exact inversion: `unsnap(snap(x)) == x` bit-for-bit, and
/// `unsnap` of arbitrary bytes returns `Err`, never panics.
pub trait Snap: Sized {
    /// Encodes `self` onto the writer.
    fn snap(&self, w: &mut SnapWriter);
    /// Decodes one value from the reader, validating every invariant.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_primitive {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snap for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

snap_primitive!(u8, put_u8, get_u8);
snap_primitive!(u16, put_u16, get_u16);
snap_primitive!(u32, put_u32, get_u32);
snap_primitive!(u64, put_u64, get_u64);
snap_primitive!(i64, put_i64, get_i64);
snap_primitive!(usize, put_usize, get_usize);
snap_primitive!(f64, put_f64, get_f64);
snap_primitive!(bool, put_bool, get_bool);

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Snap for std::sync::Arc<str> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(std::sync::Arc::from(r.get_str()?))
    }
}

impl Snap for &'static str {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(intern_static(r.get_str()?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            _ => Err(SnapError::Malformed("Option tag not 0/1")),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn snap(&self, w: &mut SnapWriter) {
        (**self).snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::unsnap(r)?))
    }
}

impl<T: Snap> Snap for std::sync::Arc<T> {
    fn snap(&self, w: &mut SnapWriter) {
        (**self).snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(std::sync::Arc::new(T::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<const N: usize> Snap for [f64; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            w.put_f64(*v);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [0.0; N];
        for slot in &mut out {
            *slot = r.get_f64()?;
        }
        Ok(out)
    }
}

/// Implements [`Snap`] for a struct as the plain sequence of its fields.
/// Expand inside the struct's defining module so private fields resolve.
#[macro_export]
macro_rules! snap_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn snap(&self, w: &mut $crate::snap::SnapWriter) {
                $( $crate::snap::Snap::snap(&self.$field, w); )+
            }
            fn unsnap(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                Ok($ty {
                    $( $field: $crate::snap::Snap::unsnap(r)?, )+
                })
            }
        }
    };
}

/// Implements [`Snap`] for a tuple struct wrapping one snap-able value.
#[macro_export]
macro_rules! snap_newtype {
    ($ty:ident) => {
        impl $crate::snap::Snap for $ty {
            fn snap(&self, w: &mut $crate::snap::SnapWriter) {
                $crate::snap::Snap::snap(&self.0, w);
            }
            fn unsnap(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                Ok($ty($crate::snap::Snap::unsnap(r)?))
            }
        }
    };
}

/// Implements [`Snap`] for a field-less enum as a strict `u8` tag.
#[macro_export]
macro_rules! snap_unit_enum {
    ($ty:ident { $($tag:literal => $variant:ident),+ $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn snap(&self, w: &mut $crate::snap::SnapWriter) {
                w.put_u8(match self {
                    $( $ty::$variant => $tag, )+
                });
            }
            fn unsnap(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                match r.get_u8()? {
                    $( $tag => Ok($ty::$variant), )+
                    _ => Err($crate::snap::SnapError::Malformed(concat!(
                        "bad ",
                        stringify!($ty),
                        " tag"
                    ))),
                }
            }
        }
    };
}

/// Encodes one value to a standalone byte vector (no container framing).
pub fn to_bytes<T: Snap>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.snap(&mut w);
    w.into_bytes()
}

/// Decodes one value from a standalone byte vector, requiring the bytes to
/// be fully consumed.
pub fn from_bytes<T: Snap>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = SnapReader::new(bytes);
    let v = T::unsnap(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_for_bit() {
        let mut w = SnapWriter::new();
        w.put_u8(0xab);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN with payload
        w.put_bool(true);
        w.put_str("héllo");
        let mut r = SnapReader::new(w.bytes());
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(String, Option<i64>)> = vec![
            ("a".into(), Some(-1)),
            ("b".into(), None),
            ("c".into(), Some(i64::MAX)),
        ];
        assert_eq!(
            from_bytes::<Vec<(String, Option<i64>)>>(&to_bytes(&v)).unwrap(),
            v
        );
        let m: BTreeMap<String, u32> = [("x".to_string(), 1u32), ("y".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(
            from_bytes::<BTreeMap<String, u32>>(&to_bytes(&m)).unwrap(),
            m
        );
        let arr = [
            1.5f64,
            -0.0,
            f64::INFINITY,
            4.0,
            5.0,
            6.0,
            7.0,
            8.0,
            9.0,
            10.0,
        ];
        let back: [f64; 10] = from_bytes(&to_bytes(&arr)).unwrap();
        assert_eq!(
            back.map(f64::to_bits),
            arr.map(f64::to_bits),
            "-0.0 and infinities must survive"
        );
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert_eq!(err, SnapError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_is_bounded_before_allocation() {
        // A length prefix claiming 2^60 elements must fail the remaining-
        // bytes sanity check, not attempt the allocation.
        let mut w = SnapWriter::new();
        w.put_usize(1 << 60);
        let err = from_bytes::<Vec<u64>>(w.bytes()).unwrap_err();
        assert_eq!(err, SnapError::Truncated);
    }

    #[test]
    fn strict_byte_validation() {
        assert_eq!(
            from_bytes::<bool>(&[7]).unwrap_err(),
            SnapError::Malformed("bool byte not 0/1")
        );
        assert_eq!(
            from_bytes::<Option<u8>>(&[9, 0]).unwrap_err(),
            SnapError::Malformed("Option tag not 0/1")
        );
        let mut w = SnapWriter::new();
        w.put_usize(2);
        w.buf.extend_from_slice(&[0xff, 0xfe]); // invalid UTF-8
        assert_eq!(
            from_bytes::<String>(w.bytes()).unwrap_err(),
            SnapError::Malformed("invalid UTF-8")
        );
    }

    #[test]
    fn container_seal_open_round_trip() {
        let payload = b"compiled models".to_vec();
        let sealed = seal(PAYLOAD_ATTRIBUTE_DB, 0x1234, &payload);
        let opened = open(&sealed, PAYLOAD_ATTRIBUTE_DB, Some(0x1234)).unwrap();
        assert_eq!(opened, &payload[..]);
        assert_eq!(peek_fingerprint(&sealed), Some(0x1234));
        // Fingerprint skipped when not requested.
        assert!(open(&sealed, PAYLOAD_ATTRIBUTE_DB, None).is_ok());
    }

    #[test]
    fn each_corruption_class_maps_to_its_own_error() {
        let sealed = seal(PAYLOAD_ATTRIBUTE_DB, 7, b"payload");

        // Truncation, anywhere.
        for cut in [0, HEADER_LEN - 1, sealed.len() - 1] {
            assert_eq!(
                open(&sealed[..cut], PAYLOAD_ATTRIBUTE_DB, Some(7)).unwrap_err(),
                SnapError::Truncated,
                "cut at {cut}"
            );
        }

        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            open(&bad, PAYLOAD_ATTRIBUTE_DB, Some(7)).unwrap_err(),
            SnapError::BadMagic
        );

        // Stale version.
        let mut bad = sealed.clone();
        bad[4] = 99;
        assert_eq!(
            open(&bad, PAYLOAD_ATTRIBUTE_DB, Some(7)).unwrap_err(),
            SnapError::UnsupportedVersion {
                found: 99,
                expected: SNAP_VERSION
            }
        );

        // Wrong payload kind.
        assert_eq!(
            open(&sealed, PAYLOAD_CALIBRATION, Some(7)).unwrap_err(),
            SnapError::WrongPayloadKind {
                found: PAYLOAD_ATTRIBUTE_DB,
                expected: PAYLOAD_CALIBRATION
            }
        );

        // Flipped payload byte.
        let mut bad = sealed.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            open(&bad, PAYLOAD_ATTRIBUTE_DB, Some(7)).unwrap_err(),
            SnapError::ChecksumMismatch { .. }
        ));

        // Wrong fleet fingerprint, on an otherwise pristine container.
        assert_eq!(
            open(&sealed, PAYLOAD_ATTRIBUTE_DB, Some(8)).unwrap_err(),
            SnapError::FingerprintMismatch {
                stored: 7,
                expected: 8
            }
        );

        // Trailing garbage after the payload.
        let mut bad = sealed.clone();
        bad.push(0);
        assert_eq!(
            open(&bad, PAYLOAD_ATTRIBUTE_DB, Some(7)).unwrap_err(),
            SnapError::TrailingBytes
        );
    }

    #[test]
    fn checksum_matches_reference_fnv_fmix_family() {
        // Word-folded FNV with the length mixed in, fmix64-finalized: the
        // empty input is the offset basis with only the length fold applied.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        assert_eq!(checksum(b""), fmix64(OFFSET.wrapping_mul(PRIME)));
        // One-byte avalanche: nearby inputs land far apart.
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"a") >> 32, checksum(b"b") >> 32);
        // The length fold distinguishes payloads that differ only by
        // trailing zero bytes (a pure word fold would XOR zeros through).
        assert_ne!(checksum(&[0u8; 8]), checksum(&[0u8; 16]));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefgh\0\0\0\0\0\0\0\0"));
        // Word and tail paths agree with a straightforward definition: a
        // 9-byte input exercises both.
        let bytes = *b"123456789";
        let mut h = OFFSET;
        h ^= u64::from_le_bytes(bytes[..8].try_into().unwrap());
        h = h.wrapping_mul(PRIME);
        h ^= u64::from(bytes[8]);
        h = h.wrapping_mul(PRIME);
        h ^= 9;
        h = h.wrapping_mul(PRIME);
        assert_eq!(checksum(&bytes), fmix64(h));
    }

    #[test]
    fn intern_static_dedupes() {
        let a = intern_static("hetsel-test-intern");
        let b = intern_static("hetsel-test-intern");
        assert!(
            std::ptr::eq(a, b),
            "same name must share one leaked allocation"
        );
    }
}
