//! Multivariate integer polynomials over symbolic parameters.
//!
//! [`Poly`] is the closed symbolic value domain of the IPDA analysis: an
//! inter-thread access-stride expression is, for the affine programs the
//! analysis targets, a polynomial in the program's runtime parameters
//! (e.g. `[max]`, `2*[n] + 1`, `[n]*[m]`). Polynomials support exact
//! addition, subtraction and multiplication, canonical normal form (so
//! structural equality is semantic equality), and evaluation under a
//! runtime [`Binding`].

use crate::binding::Binding;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: a product of parameters raised to positive powers, in
/// canonical (sorted) order. The empty monomial is the constant term.
type Monomial = BTreeMap<String, u32>;

/// A multivariate polynomial with `i64` coefficients over named parameters.
///
/// Stored in canonical form: no zero coefficients, monomials sorted by the
/// `BTreeMap` order. Two polynomials are semantically equal iff they are
/// structurally equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Poly {
        let mut p = Poly::zero();
        if c != 0 {
            p.terms.insert(Monomial::new(), c);
        }
        p
    }

    /// The polynomial consisting of a single parameter.
    pub fn param(name: impl Into<String>) -> Poly {
        let mut m = Monomial::new();
        m.insert(name.into(), 1);
        let mut p = Poly::zero();
        p.terms.insert(m, 1);
        p
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the polynomial is a constant, returns it.
    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                if m.is_empty() {
                    Some(*c)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// True if the polynomial references no parameters.
    pub fn is_const(&self) -> bool {
        self.as_const().is_some()
    }

    /// The set of parameters appearing in the polynomial.
    pub fn params(&self) -> Vec<String> {
        let mut out: Vec<String> = self.terms.keys().flat_map(|m| m.keys().cloned()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates the polynomial under a runtime binding. Returns `None` if a
    /// referenced parameter is unbound.
    pub fn eval(&self, binding: &Binding) -> Option<i64> {
        let mut total: i64 = 0;
        for (m, c) in &self.terms {
            let mut term = *c;
            for (p, pow) in m {
                let v = binding.get(p)?;
                for _ in 0..*pow {
                    term = term.wrapping_mul(v);
                }
            }
            total = total.wrapping_add(term);
        }
        Some(total)
    }

    /// Iterates `(monomial, coefficient)` in canonical term order — the
    /// exact order [`Poly::eval`] accumulates in, which compilation to
    /// bytecode must reproduce for bit-for-bit equality.
    pub fn terms(&self) -> impl Iterator<Item = (&BTreeMap<String, u32>, i64)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// Degree of the polynomial (0 for constants; 0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.values().sum::<u32>())
            .max()
            .unwrap_or(0)
    }

    fn add_term(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let entry = self.terms.entry(m).or_insert(0);
        *entry = entry.wrapping_add(c);
        if *entry == 0 {
            // Re-borrow to remove; find key by recomputing entry is awkward,
            // so retain instead.
            self.terms.retain(|_, v| *v != 0);
        }
    }

    /// Multiplies by an integer scalar.
    pub fn scale(&self, k: i64) -> Poly {
        if k == 0 {
            return Poly::zero();
        }
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            out.terms.insert(m.clone(), c.wrapping_mul(k));
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        self.scale(-1)
    }
}

impl std::ops::Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }
}

impl std::ops::Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), c.wrapping_neg());
        }
        out
    }
}

impl std::ops::Mul for &Poly {
    type Output = Poly;
    #[allow(clippy::suspicious_arithmetic_impl)] // exponents add when monomials multiply
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                let mut m = ma.clone();
                for (p, pow) in mb {
                    *m.entry(p.clone()).or_insert(0) += pow;
                }
                out.add_term(m, ca.wrapping_mul(*cb));
            }
        }
        out
    }
}

impl std::ops::Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl std::ops::Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl std::ops::Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl From<i64> for Poly {
    fn from(c: i64) -> Poly {
        Poly::constant(c)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if m.is_empty() {
                write!(f, "{c}")?;
            } else {
                if *c != 1 {
                    write!(f, "{c}*")?;
                }
                for (j, (p, pow)) in m.iter().enumerate() {
                    if j > 0 {
                        write!(f, "*")?;
                    }
                    if *pow == 1 {
                        write!(f, "[{p}]")?;
                    } else {
                        write!(f, "[{p}]^{pow}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

crate::snap_struct!(Poly { terms });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_arithmetic() {
        let a = Poly::constant(3);
        let b = Poly::constant(4);
        assert_eq!((&a + &b).as_const(), Some(7));
        assert_eq!((&a - &b).as_const(), Some(-1));
        assert_eq!((&a * &b).as_const(), Some(12));
    }

    #[test]
    fn zero_is_canonical() {
        let n = Poly::param("n");
        let z = &n - &n;
        assert!(z.is_zero());
        assert_eq!(z, Poly::zero());
        assert_eq!(z.as_const(), Some(0));
    }

    #[test]
    fn param_evaluation() {
        // 2*n*m + 3*n + 1
        let n = Poly::param("n");
        let m = Poly::param("m");
        let p = &(&(&n * &m).scale(2) + &n.scale(3)) + &Poly::constant(1);
        let b = Binding::new().with("n", 5).with("m", 7);
        assert_eq!(p.eval(&b), Some(2 * 35 + 15 + 1));
        assert_eq!(p.degree(), 2);
        assert_eq!(p.params(), vec!["m".to_string(), "n".to_string()]);
    }

    #[test]
    fn unbound_param_evaluates_to_none() {
        let p = Poly::param("n");
        assert_eq!(p.eval(&Binding::new()), None);
    }

    #[test]
    fn paper_ipda_example_display() {
        // IPD of A[max * a] over thread dimension a is [max].
        let stride = Poly::param("max");
        assert_eq!(format!("{stride}"), "[max]");
    }

    #[test]
    fn mul_collects_like_terms() {
        // (n + 1)(n - 1) = n^2 - 1
        let n = Poly::param("n");
        let a = &n + &Poly::constant(1);
        let b = &n - &Poly::constant(1);
        let p = &a * &b;
        let bdg = Binding::new().with("n", 9);
        assert_eq!(p.eval(&bdg), Some(80));
        assert_eq!(p.degree(), 2);
        assert_eq!(format!("{p}"), "-1 + [n]^2");
    }

    #[test]
    fn scale_by_zero_is_zero() {
        assert!(Poly::param("n").scale(0).is_zero());
    }
}
