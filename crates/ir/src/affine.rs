//! Affine normal form of index expressions.
//!
//! An [`Affine`] value represents `Σ coeff_v · v + offset`, where the sum is
//! over loop variables `v` and each coefficient (and the offset) is a
//! symbolic polynomial over runtime parameters ([`Poly`]). This is the input
//! domain of the Iteration Point Difference Analysis: the inter-thread
//! difference of an affine index with respect to the thread dimension `t` is
//! simply its coefficient on `t`.

use crate::binding::Binding;
use crate::expr::Expr;
use crate::kernel::{ArrayRef, Kernel, LoopVarId};
use crate::poly::Poly;
use std::collections::BTreeMap;
use std::fmt;

/// An affine function of loop variables with symbolic coefficients.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Affine {
    /// Coefficient of each loop variable (absent = zero).
    coeffs: BTreeMap<LoopVarId, Poly>,
    /// Constant (loop-invariant) part.
    offset: Poly,
}

impl Affine {
    /// The zero function.
    pub fn zero() -> Affine {
        Affine::default()
    }

    /// A loop-invariant value.
    pub fn from_poly(p: Poly) -> Affine {
        Affine {
            coeffs: BTreeMap::new(),
            offset: p,
        }
    }

    /// The identity function on a loop variable.
    pub fn var(v: LoopVarId) -> Affine {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Poly::constant(1));
        Affine {
            coeffs,
            offset: Poly::zero(),
        }
    }

    /// Coefficient of a loop variable (zero if absent).
    pub fn coeff(&self, v: LoopVarId) -> Poly {
        self.coeffs.get(&v).cloned().unwrap_or_else(Poly::zero)
    }

    /// The loop-invariant part.
    pub fn offset(&self) -> &Poly {
        &self.offset
    }

    /// Loop variables with non-zero coefficient.
    pub fn loop_vars(&self) -> impl Iterator<Item = LoopVarId> + '_ {
        self.coeffs.keys().copied()
    }

    /// True if the function does not depend on any loop variable.
    pub fn is_invariant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// If loop-invariant, the underlying polynomial.
    pub fn as_poly(&self) -> Option<&Poly> {
        if self.is_invariant() {
            Some(&self.offset)
        } else {
            None
        }
    }

    /// Evaluates under a runtime binding and loop-variable values.
    pub fn eval(&self, binding: &Binding, vars: &dyn Fn(LoopVarId) -> Option<i64>) -> Option<i64> {
        let mut total = self.offset.eval(binding)?;
        for (v, c) in &self.coeffs {
            total = total.wrapping_add(c.eval(binding)?.wrapping_mul(vars(*v)?));
        }
        Some(total)
    }

    fn add_assign(&mut self, rhs: &Affine) {
        for (v, c) in &rhs.coeffs {
            let e = self.coeffs.entry(*v).or_insert_with(Poly::zero);
            *e = &*e + c;
        }
        self.coeffs.retain(|_, c| !c.is_zero());
        self.offset = &self.offset + &rhs.offset;
    }

    /// Multiplies by a loop-invariant polynomial.
    pub fn scale_poly(&self, p: &Poly) -> Affine {
        let mut out = Affine::zero();
        for (v, c) in &self.coeffs {
            let s = c * p;
            if !s.is_zero() {
                out.coeffs.insert(*v, s);
            }
        }
        out.offset = &self.offset * p;
        out
    }

    /// Builds the affine normal form of an expression, or `None` if the
    /// expression is not affine in the loop variables (e.g. `i*j`, division,
    /// min/max).
    pub fn from_expr(e: &Expr) -> Option<Affine> {
        match e {
            Expr::Const(c) => Some(Affine::from_poly(Poly::constant(*c))),
            Expr::Param(p) => Some(Affine::from_poly(Poly::param(p.clone()))),
            Expr::Var(v) => Some(Affine::var(*v)),
            Expr::Add(a, b) => {
                let mut a = Affine::from_expr(a)?;
                a.add_assign(&Affine::from_expr(b)?);
                Some(a)
            }
            Expr::Sub(a, b) => {
                let mut a = Affine::from_expr(a)?;
                a.add_assign(&Affine::from_expr(b)?.scale_poly(&Poly::constant(-1)));
                Some(a)
            }
            Expr::Mul(a, b) => {
                let a = Affine::from_expr(a)?;
                let b = Affine::from_expr(b)?;
                // One side must be loop-invariant for the product to stay affine.
                if let Some(p) = a.as_poly() {
                    Some(b.scale_poly(p))
                } else {
                    b.as_poly().map(|p| a.scale_poly(p))
                }
            }
            Expr::Div(_, _) | Expr::Min(_, _) | Expr::Max(_, _) => None,
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "({c})*{v}")?;
        }
        if !self.offset.is_zero() || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.offset)?;
        }
        Ok(())
    }
}

/// Converts a loop-invariant expression to a polynomial, or `None` if it
/// references loop variables or uses non-polynomial operators.
pub fn expr_to_poly(e: &Expr) -> Option<Poly> {
    Affine::from_expr(e)?.as_poly().cloned()
}

/// The row-major linearised element index of an array access, as an affine
/// function of the loop variables: `((i0*e1 + i1)*e2 + i2)…`.
///
/// Returns `None` if any index expression is non-affine or any extent
/// references loop variables.
pub fn linearize(kernel: &Kernel, r: &ArrayRef) -> Option<Affine> {
    let decl = kernel.array(r.array);
    let mut lin = Affine::zero();
    for (dim, idx) in r.index.iter().enumerate() {
        if dim > 0 {
            let extent = expr_to_poly(&decl.extents[dim])?;
            lin = lin.scale_poly(&extent);
        }
        lin.add_assign(&Affine::from_expr(idx)?);
    }
    Some(lin)
}

crate::snap_struct!(Affine { coeffs, offset });

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> LoopVarId {
        LoopVarId(i)
    }

    #[test]
    fn linear_combination() {
        // 2*i + n*j + 3
        let e =
            Expr::Const(2) * Expr::var(v(0)) + Expr::param("n") * Expr::var(v(1)) + Expr::Const(3);
        let a = Affine::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)).as_const(), Some(2));
        assert_eq!(a.coeff(v(1)), Poly::param("n"));
        assert_eq!(a.offset().as_const(), Some(3));
    }

    #[test]
    fn var_times_var_is_not_affine() {
        let e = Expr::var(v(0)) * Expr::var(v(1));
        assert!(Affine::from_expr(&e).is_none());
    }

    #[test]
    fn subtraction_cancels() {
        // (i + n) - i = n
        let e = (Expr::var(v(0)) + Expr::param("n")) - Expr::var(v(0));
        let a = Affine::from_expr(&e).unwrap();
        assert!(a.is_invariant());
        assert_eq!(a.as_poly().unwrap(), &Poly::param("n"));
    }

    #[test]
    fn eval_matches_expr_eval() {
        let e =
            Expr::param("n") * Expr::var(v(0)) + Expr::var(v(1)) * Expr::Const(4) - Expr::Const(7);
        let a = Affine::from_expr(&e).unwrap();
        let b = Binding::new().with("n", 50);
        let vals = |id: LoopVarId| Some(if id == v(0) { 3 } else { 11 });
        assert_eq!(a.eval(&b, &vals), e.eval(&b, &vals));
    }

    #[test]
    fn paper_example_ipd() {
        // A[max * a]: coefficient of the thread var `a` is [max].
        let e = Expr::param("max") * Expr::var(v(0));
        let a = Affine::from_expr(&e).unwrap();
        assert_eq!(a.coeff(v(0)), Poly::param("max"));
        assert_eq!(format!("{}", a.coeff(v(0))), "[max]");
    }

    #[test]
    fn linearize_row_major() {
        use crate::builder::KernelBuilder;
        use crate::kernel::{CExpr, Transfer};
        let mut kb = KernelBuilder::new("t");
        let arr = kb.array("A", 8, &["n".into(), "m".into()], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "m");
        let ld = kb.load(arr, &[i.into(), j.into()]);
        kb.acc_init("s", ld);
        kb.acc_init("t", CExpr::Acc);
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();

        let mut lins = Vec::new();
        k.walk_assigns(|_, a| {
            a.rhs.for_each_load(&mut |r| {
                lins.push(linearize(&k, r).unwrap());
            });
        });
        // A[i][j] -> i*m + j
        let lin = &lins[0];
        assert_eq!(lin.coeff(i), Poly::param("m"));
        assert_eq!(lin.coeff(j).as_const(), Some(1));
        let b = Binding::new().with("n", 4).with("m", 10);
        assert_eq!(
            lin.eval(&b, &|lv| Some(if lv == i { 2 } else { 7 })),
            Some(27)
        );
    }
}
