//! Concrete memory layout of a kernel's arrays.
//!
//! The timing simulators need real byte addresses to model caches and
//! coalescing. [`MemoryLayout`] resolves every array's extents under a
//! runtime binding and assigns base addresses in a single contiguous address
//! space, mirroring how a device runtime would place the mapped buffers.

use crate::binding::Binding;
use crate::kernel::{ArrayId, Kernel};

/// Alignment of each array's base address, matching typical device allocator
/// guarantees (and ensuring the coalescing behaviour of aligned accesses).
pub const ARRAY_ALIGN: u64 = 256;

/// A single array with resolved extents and a concrete base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedArray {
    /// Base byte address.
    pub base: u64,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Resolved extent of each dimension, outermost first.
    pub extents: Vec<i64>,
    /// Row-major stride of each dimension, in elements.
    pub strides: Vec<i64>,
}

impl ResolvedArray {
    /// Byte address of `array[idx...]`. Indices out of range still produce an
    /// address (the simulators sample fringe iterations); callers that need
    /// bounds checking use [`ResolvedArray::in_bounds`].
    pub fn addr(&self, idx: &[i64]) -> u64 {
        debug_assert_eq!(idx.len(), self.extents.len());
        let mut lin: i64 = 0;
        for (i, s) in idx.iter().zip(&self.strides) {
            lin += i * s;
        }
        self.base
            .wrapping_add((lin * i64::from(self.elem_bytes)) as u64)
    }

    /// True if every index is within the declared extents.
    pub fn in_bounds(&self, idx: &[i64]) -> bool {
        idx.iter().zip(&self.extents).all(|(i, e)| *i >= 0 && i < e)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.extents.iter().product::<i64>() as u64 * u64::from(self.elem_bytes)
    }
}

/// Resolved layout for all arrays of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    arrays: Vec<ResolvedArray>,
    total_bytes: u64,
}

impl MemoryLayout {
    /// Resolves extents under `binding` and packs arrays sequentially with
    /// [`ARRAY_ALIGN`] alignment. Returns `None` if any extent is unbound or
    /// negative.
    pub fn resolve(kernel: &Kernel, binding: &Binding) -> Option<MemoryLayout> {
        let mut arrays = Vec::with_capacity(kernel.arrays.len());
        let mut cursor: u64 = ARRAY_ALIGN;
        for decl in &kernel.arrays {
            let mut extents = Vec::with_capacity(decl.extents.len());
            for e in &decl.extents {
                let v = e.eval_closed(binding)?;
                if v < 0 {
                    return None;
                }
                extents.push(v);
            }
            // Row-major strides: stride of dim d is the product of all inner
            // extents.
            let mut strides = vec![1i64; extents.len()];
            for d in (0..extents.len().saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * extents[d + 1];
            }
            let ra = ResolvedArray {
                base: cursor,
                elem_bytes: decl.elem_bytes,
                extents,
                strides,
            };
            cursor += ra.bytes().div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
            arrays.push(ra);
        }
        Some(MemoryLayout {
            arrays,
            total_bytes: cursor,
        })
    }

    /// The resolved form of one array.
    pub fn array(&self, id: ArrayId) -> &ResolvedArray {
        &self.arrays[id.0]
    }

    /// Total footprint of all arrays in bytes (including alignment padding).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterates over all resolved arrays.
    pub fn iter(&self) -> impl Iterator<Item = &ResolvedArray> {
        self.arrays.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{cexpr, KernelBuilder};
    use crate::kernel::Transfer;

    fn two_array_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("t");
        let a = kb.array("A", 8, &["n".into(), "m".into()], Transfer::In);
        let b = kb.array("b", 4, &["m".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[i.into(), i.into()]);
        kb.store(b, &[i.into()], ld);
        kb.end_loop();
        let _ = cexpr::lit(0.0);
        kb.finish()
    }

    #[test]
    fn resolve_assigns_aligned_disjoint_ranges() {
        let k = two_array_kernel();
        let b = Binding::new().with("n", 10).with("m", 6);
        let l = MemoryLayout::resolve(&k, &b).unwrap();
        let a0 = l.array(ArrayId(0));
        let a1 = l.array(ArrayId(1));
        assert_eq!(a0.bytes(), 10 * 6 * 8);
        assert_eq!(a1.bytes(), 6 * 4);
        assert_eq!(a0.base % ARRAY_ALIGN, 0);
        assert_eq!(a1.base % ARRAY_ALIGN, 0);
        assert!(a1.base >= a0.base + a0.bytes());
    }

    #[test]
    fn row_major_addressing() {
        let k = two_array_kernel();
        let b = Binding::new().with("n", 10).with("m", 6);
        let l = MemoryLayout::resolve(&k, &b).unwrap();
        let a0 = l.array(ArrayId(0));
        // A[2][3] = base + (2*6 + 3) * 8
        assert_eq!(a0.addr(&[2, 3]), a0.base + 15 * 8);
        assert!(a0.in_bounds(&[9, 5]));
        assert!(!a0.in_bounds(&[10, 0]));
        assert!(!a0.in_bounds(&[-1, 0]));
    }

    #[test]
    fn unbound_extent_fails() {
        let k = two_array_kernel();
        assert!(MemoryLayout::resolve(&k, &Binding::new().with("n", 10)).is_none());
    }

    #[test]
    fn adjacent_elements_are_contiguous() {
        let k = two_array_kernel();
        let b = Binding::new().with("n", 10).with("m", 6);
        let l = MemoryLayout::resolve(&k, &b).unwrap();
        let a0 = l.array(ArrayId(0));
        assert_eq!(a0.addr(&[0, 1]) - a0.addr(&[0, 0]), 8);
        assert_eq!(a0.addr(&[1, 0]) - a0.addr(&[0, 0]), 48);
    }
}
