//! Runtime parameter bindings.
//!
//! A [`Binding`] is the runtime half of the hybrid analysis: it maps the
//! symbolic parameters left unresolved at compile time (array extents, loop
//! trip counts, scalar values that determine access strides) to the concrete
//! values observed immediately before a target region launches.

use std::collections::BTreeMap;
use std::fmt;

/// A map from parameter name to concrete integer value.
///
/// Uses a `BTreeMap` so that iteration order (and thus any derived output)
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    values: BTreeMap<String, i64>,
}

impl Binding {
    /// An empty binding (everything still symbolic).
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: impl Into<String>, value: i64) -> Binding {
        self.values.insert(name.into(), value);
        self
    }

    /// Inserts or overwrites a value.
    pub fn set(&mut self, name: impl Into<String>, value: i64) {
        self.values.insert(name.into(), value);
    }

    /// Looks up a parameter value.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// True if every name in `names` is bound.
    pub fn binds_all<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> bool {
        names.into_iter().all(|n| self.values.contains_key(n))
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another binding into this one; values in `other` win.
    pub fn merge(&mut self, other: &Binding) {
        for (k, v) in other.iter() {
            self.values.insert(k.to_string(), v);
        }
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, i64)> for Binding {
    fn from_iter<T: IntoIterator<Item = (String, i64)>>(iter: T) -> Binding {
        Binding {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Binding::new();
        b.set("n", 1100);
        assert_eq!(b.get("n"), Some(1100));
        assert_eq!(b.get("m"), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn with_chains() {
        let b = Binding::new().with("n", 1).with("m", 2);
        assert!(b.binds_all(["n", "m"]));
        assert!(!b.binds_all(["n", "k"]));
    }

    #[test]
    fn merge_overwrites() {
        let mut a = Binding::new().with("n", 1);
        let b = Binding::new().with("n", 2).with("m", 3);
        a.merge(&b);
        assert_eq!(a.get("n"), Some(2));
        assert_eq!(a.get("m"), Some(3));
    }

    #[test]
    fn display_is_deterministic() {
        let b = Binding::new().with("z", 1).with("a", 2);
        assert_eq!(format!("{b}"), "{a=2, z=1}");
    }
}
