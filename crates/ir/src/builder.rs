//! Ergonomic construction of kernels.
//!
//! [`KernelBuilder`] mirrors the textual structure of an OpenMP target
//! region: open loops (parallel or sequential), emit assignments, close
//! loops. It allocates loop-variable ids and keeps the nesting honest so the
//! resulting [`Kernel`] always passes [`Kernel::validate`].

use crate::expr::Expr;
use crate::kernel::{
    ArrayDecl, ArrayId, ArrayRef, Assign, CExpr, Kernel, Lhs, Loop, LoopVarId, Stmt, Transfer,
};

/// Incremental builder for a [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    /// Stack of open loops with the statements accumulated so far.
    open: Vec<(Loop, Vec<Stmt>)>,
    /// Statements at the (closed) top level.
    top: Vec<Stmt>,
    next_var: usize,
    seen_parallel: bool,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            arrays: Vec::new(),
            open: Vec::new(),
            top: Vec::new(),
            next_var: 0,
            seen_parallel: false,
        }
    }

    /// Declares a mapped array and returns its id.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        elem_bytes: u32,
        extents: &[Expr],
        transfer: Transfer,
    ) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem_bytes,
            extents: extents.to_vec(),
            transfer,
        });
        ArrayId(self.arrays.len() - 1)
    }

    fn open_loop(&mut self, lower: Expr, upper: Expr, parallel: bool) -> LoopVarId {
        let var = LoopVarId(self.next_var);
        self.next_var += 1;
        self.open.push((
            Loop {
                var,
                lower,
                upper,
                parallel,
            },
            Vec::new(),
        ));
        var
    }

    /// Opens a parallel (`teams distribute parallel for`) loop.
    ///
    /// Parallel loops must be opened before any sequential loop or statement
    /// (they model the outermost `collapse` nest).
    pub fn parallel_loop(&mut self, lower: impl Into<Expr>, upper: impl Into<Expr>) -> LoopVarId {
        assert!(
            self.open
                .iter()
                .all(|(l, body)| l.parallel && body.is_empty())
                && self.top.is_empty(),
            "parallel loops must form the outermost perfect nest"
        );
        self.seen_parallel = true;
        self.open_loop(lower.into(), upper.into(), true)
    }

    /// Opens a sequential inner loop.
    pub fn seq_loop(&mut self, lower: impl Into<Expr>, upper: impl Into<Expr>) -> LoopVarId {
        self.open_loop(lower.into(), upper.into(), false)
    }

    /// Closes the innermost open loop.
    pub fn end_loop(&mut self) {
        let (l, body) = self.open.pop().expect("end_loop with no open loop");
        let stmt = Stmt::For(l, body);
        match self.open.last_mut() {
            Some((_, parent)) => parent.push(stmt),
            None => self.top.push(stmt),
        }
    }

    fn push(&mut self, a: Assign) {
        let stmt = Stmt::Assign(a);
        match self.open.last_mut() {
            Some((_, body)) => body.push(stmt),
            None => self.top.push(stmt),
        }
    }

    /// A load expression from `array[index...]`.
    pub fn load(&self, array: ArrayId, index: &[Expr]) -> CExpr {
        CExpr::Load(ArrayRef {
            array,
            index: index.to_vec(),
        })
    }

    /// Initialises a named scalar accumulator.
    pub fn acc_init(&mut self, name: impl Into<String>, value: CExpr) {
        self.push(Assign {
            lhs: Lhs::Acc(name.into()),
            rhs: value,
        });
    }

    /// Updates a named scalar accumulator; `CExpr::Acc` inside `value` refers
    /// to the accumulator's previous value.
    pub fn assign_acc(&mut self, name: impl Into<String>, value: CExpr) {
        self.push(Assign {
            lhs: Lhs::Acc(name.into()),
            rhs: value,
        });
    }

    /// Stores an expression to `array[index...]`.
    pub fn store(&mut self, array: ArrayId, index: &[Expr], value: CExpr) {
        self.push(Assign {
            lhs: Lhs::Array(ArrayRef {
                array,
                index: index.to_vec(),
            }),
            rhs: value,
        });
    }

    /// Stores a named scalar accumulator to `array[index...]`.
    pub fn store_acc(&mut self, array: ArrayId, index: &[Expr], acc: impl Into<String>) {
        self.store(array, index, CExpr::Scalar(acc.into()));
    }

    /// Finishes the kernel, closing nothing implicitly.
    ///
    /// Panics if loops are still open or no parallel loop was created.
    pub fn finish(self) -> Kernel {
        assert!(
            self.open.is_empty(),
            "finish with {} open loops",
            self.open.len()
        );
        assert!(self.seen_parallel, "kernel has no parallel loop");
        let k = Kernel {
            name: self.name,
            arrays: self.arrays,
            body: self.top,
        };
        debug_assert_eq!(k.validate(), Ok(()));
        k
    }
}

/// Convenience constructors for common dataflow shapes.
pub mod cexpr {
    use crate::kernel::CExpr;

    /// `a + b`
    pub fn add(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`
    pub fn sub(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`
    pub fn mul(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`
    pub fn div(a: CExpr, b: CExpr) -> CExpr {
        CExpr::Div(Box::new(a), Box::new(b))
    }

    /// `sqrt(a)`
    pub fn sqrt(a: CExpr) -> CExpr {
        CExpr::Sqrt(Box::new(a))
    }

    /// The previous value of the destination.
    pub fn acc() -> CExpr {
        CExpr::Acc
    }

    /// A named scalar (kernel argument or accumulator).
    pub fn scalar(name: &str) -> CExpr {
        CExpr::Scalar(name.to_string())
    }

    /// A literal.
    pub fn lit(v: f64) -> CExpr {
        CExpr::Lit(v)
    }

    /// `acc + a * b` — the ubiquitous fused multiply-add reduction step.
    pub fn fma_acc(a: CExpr, b: CExpr) -> CExpr {
        add(acc(), mul(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::cexpr::*;
    use super::*;
    use crate::binding::Binding;

    #[test]
    fn vector_add_kernel() {
        let mut kb = KernelBuilder::new("vadd");
        let a = kb.array("a", 4, &["n".into()], Transfer::In);
        let b = kb.array("b", 4, &["n".into()], Transfer::In);
        let c = kb.array("c", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        let sum = add(kb.load(a, &[i.into()]), kb.load(b, &[i.into()]));
        kb.store(c, &[i.into()], sum);
        kb.end_loop();
        let k = kb.finish();
        k.validate().unwrap();
        assert_eq!(k.parallel_loops().len(), 1);
        assert_eq!(
            k.parallel_iterations(&Binding::new().with("n", 64)),
            Some(64)
        );
    }

    #[test]
    fn collapse2_nest() {
        let mut kb = KernelBuilder::new("c2");
        let a = kb.array("a", 8, &["n".into(), "n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let j = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into(), j.into()], lit(0.0));
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();
        assert_eq!(k.parallel_loops().len(), 2);
        assert_eq!(k.thread_dim(), Some(j));
        assert_eq!(
            k.parallel_iterations(&Binding::new().with("n", 10)),
            Some(100)
        );
    }

    #[test]
    #[should_panic(expected = "outermost perfect nest")]
    fn parallel_after_statement_panics() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.array("a", 8, &["n".into()], Transfer::In);
        let i = kb.parallel_loop(0, "n");
        let l = kb.load(a, &[i.into()]);
        kb.acc_init("s", l);
        kb.parallel_loop(0, "n");
    }

    #[test]
    #[should_panic(expected = "no open loop")]
    fn unbalanced_end_panics() {
        let mut kb = KernelBuilder::new("bad");
        kb.end_loop();
    }
}
