//! # hetsel-ir — kernel IR for OpenMP-style target regions
//!
//! The intermediate representation shared by every component of the `hetsel`
//! framework. A [`Kernel`] models one outlined OpenMP target region — an
//! outer parallel loop nest over a body of affine array accesses, scalar
//! accumulators and sequential inner loops — carrying exactly the program
//! features the paper's hybrid analysis consumes:
//!
//! * symbolic [`Expr`]essions for loop bounds, array extents and indices,
//!   with runtime parameters resolved late via a [`Binding`];
//! * the affine normal form ([`Affine`]) over which the iteration-point
//!   difference analysis (crate `hetsel-ipda`) computes inter-thread strides;
//! * the floating-point dataflow of each statement ([`CExpr`]), from which
//!   the machine-code analyzer (crate `hetsel-mca`) derives dependency
//!   chains and cycles-per-iteration;
//! * the transfer footprint implied by the region's `map` clauses;
//! * a concrete [`MemoryLayout`] for the address-accurate timing simulators.

#![warn(missing_docs)]

pub mod affine;
pub mod binding;
pub mod builder;
pub mod compiled;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod layout;
pub mod poly;
pub mod render;
pub mod simplify;
pub mod snap;
pub mod sym;
pub mod synth;
pub mod trips;

pub use affine::{expr_to_poly, linearize, Affine};
pub use binding::Binding;
pub use builder::{cexpr, KernelBuilder};
pub use compiled::{CompiledExpr, CompiledKernel};
pub use expr::Expr;
pub use interp::{execute, Env};
pub use kernel::{
    ArrayDecl, ArrayId, ArrayRef, Assign, CExpr, FpOps, Kernel, Lhs, Loop, LoopVarId, Stmt,
    Transfer,
};
pub use layout::{MemoryLayout, ResolvedArray, ARRAY_ALIGN};
pub use poly::Poly;
pub use render::to_openmp_c;
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
pub use sym::{BoundParams, Sym, SymbolTable};
pub use synth::{generate as synth_kernel, SynthKernel};
pub use trips::{CompiledTrips, TripCounts, TripSlots};
