//! A reference interpreter for kernels: executes the IR numerically.
//!
//! The suite exists in two forms — IR (analysed, modelled, simulated) and
//! executable Rust (run on the real host). The interpreter closes the loop
//! between them: executing a kernel's IR over f32 buffers must produce
//! exactly what the hand-written implementation produces, which proves the
//! transcription is faithful and therefore that the models and simulators
//! are reasoning about the right program.
//!
//! The interpreter is a semantic tool, not a fast one: it runs the whole
//! iteration space sequentially.

use crate::binding::Binding;
use crate::expr::Expr;
use crate::kernel::{ArrayRef, CExpr, Kernel, Lhs, LoopVarId, Stmt};
use std::collections::HashMap;

/// Execution environment: named f32 buffers (row-major) and named scalars.
#[derive(Debug, Default)]
pub struct Env {
    /// Array buffers keyed by declared array name.
    pub buffers: HashMap<String, Vec<f32>>,
    /// Scalar kernel arguments keyed by name (e.g. `alpha`).
    pub scalars: HashMap<String, f32>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Inserts a buffer.
    pub fn buffer(mut self, name: &str, data: Vec<f32>) -> Env {
        self.buffers.insert(name.to_string(), data);
        self
    }

    /// Inserts a scalar.
    pub fn scalar(mut self, name: &str, v: f32) -> Env {
        self.scalars.insert(name.to_string(), v);
        self
    }
}

struct Machine<'k> {
    kernel: &'k Kernel,
    binding: &'k Binding,
    extents: Vec<Vec<i64>>,
    vars: Vec<i64>,
    accs: HashMap<String, f32>,
}

impl<'k> Machine<'k> {
    fn var(&self, v: LoopVarId) -> Option<i64> {
        self.vars.get(v.0).copied()
    }

    fn eval_expr(&self, e: &Expr) -> Result<i64, String> {
        e.eval(self.binding, &|v| self.var(v))
            .ok_or_else(|| format!("unresolved expression {e}"))
    }

    fn linear_index(&self, r: &ArrayRef) -> Result<usize, String> {
        let extents = &self.extents[r.array.0];
        let mut lin: i64 = 0;
        for (d, idx) in r.index.iter().enumerate() {
            let i = self.eval_expr(idx)?;
            let name = &self.kernel.array(r.array).name;
            if i < 0 || i >= extents[d] {
                return Err(format!(
                    "{name}: index {i} out of bounds (dim {d}, extent {})",
                    extents[d]
                ));
            }
            lin = lin * extents[d] + i;
        }
        Ok(lin as usize)
    }

    fn load(&self, env: &Env, r: &ArrayRef) -> Result<f32, String> {
        let name = &self.kernel.array(r.array).name;
        let buf = env
            .buffers
            .get(name)
            .ok_or_else(|| format!("missing buffer {name}"))?;
        let i = self.linear_index(r)?;
        buf.get(i)
            .copied()
            .ok_or_else(|| format!("{name}[{i}] out of range"))
    }

    fn eval_cexpr(&self, env: &Env, e: &CExpr, acc: Option<f32>) -> Result<f32, String> {
        Ok(match e {
            CExpr::Load(r) => self.load(env, r)?,
            CExpr::Scalar(name) => {
                if let Some(v) = self.accs.get(name) {
                    *v
                } else {
                    *env.scalars
                        .get(name)
                        .ok_or_else(|| format!("missing scalar {name}"))?
                }
            }
            CExpr::Lit(v) => *v as f32,
            CExpr::Acc => acc.ok_or("CExpr::Acc without destination value")?,
            CExpr::Add(a, b) => self.eval_cexpr(env, a, acc)? + self.eval_cexpr(env, b, acc)?,
            CExpr::Sub(a, b) => self.eval_cexpr(env, a, acc)? - self.eval_cexpr(env, b, acc)?,
            CExpr::Mul(a, b) => self.eval_cexpr(env, a, acc)? * self.eval_cexpr(env, b, acc)?,
            CExpr::Div(a, b) => self.eval_cexpr(env, a, acc)? / self.eval_cexpr(env, b, acc)?,
            CExpr::Sqrt(a) => self.eval_cexpr(env, a, acc)?.sqrt(),
        })
    }

    fn exec(&mut self, env: &mut Env, stmts: &[Stmt]) -> Result<(), String> {
        for s in stmts {
            match s {
                Stmt::For(l, body) => {
                    let lo = self.eval_expr(&l.lower)?;
                    let hi = self.eval_expr(&l.upper)?;
                    for v in lo..hi {
                        if self.vars.len() <= l.var.0 {
                            self.vars.resize(l.var.0 + 1, 0);
                        }
                        self.vars[l.var.0] = v;
                        self.exec(env, body)?;
                    }
                }
                Stmt::Assign(a) => match &a.lhs {
                    Lhs::Acc(name) => {
                        let prev = self.accs.get(name).copied();
                        let v = self.eval_cexpr(env, &a.rhs, prev)?;
                        self.accs.insert(name.clone(), v);
                    }
                    Lhs::Array(r) => {
                        let prev = if a.rhs.uses_acc() {
                            Some(self.load(env, r)?)
                        } else {
                            None
                        };
                        let v = self.eval_cexpr(env, &a.rhs, prev)?;
                        let i = self.linear_index(r)?;
                        let name = &self.kernel.array(r.array).name;
                        env.buffers.get_mut(name).unwrap()[i] = v;
                    }
                },
            }
        }
        Ok(())
    }
}

/// Executes the kernel over the environment's buffers. Buffers must exist
/// for every array the kernel accesses and have (at least) the declared
/// number of elements under `binding`.
pub fn execute(kernel: &Kernel, binding: &Binding, env: &mut Env) -> Result<(), String> {
    let mut extents = Vec::with_capacity(kernel.arrays.len());
    for a in &kernel.arrays {
        let mut dims = Vec::with_capacity(a.extents.len());
        for e in &a.extents {
            dims.push(
                e.eval_closed(binding)
                    .ok_or_else(|| format!("{}: unresolved extent", a.name))?,
            );
        }
        let need: i64 = dims.iter().product();
        let have = env
            .buffers
            .get(&a.name)
            .ok_or_else(|| format!("missing buffer {}", a.name))?
            .len();
        if (have as i64) < need {
            return Err(format!(
                "{}: buffer has {have} elements, kernel needs {need}",
                a.name
            ));
        }
        extents.push(dims);
    }
    let mut m = Machine {
        kernel,
        binding,
        extents,
        vars: Vec::new(),
        accs: HashMap::new(),
    };
    m.exec(env, &kernel.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{cexpr, KernelBuilder};
    use crate::kernel::Transfer;

    #[test]
    fn axpy_executes() {
        let mut kb = KernelBuilder::new("axpy");
        let x = kb.array("x", 4, &["n".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let rhs = cexpr::add(
            cexpr::mul(cexpr::scalar("a"), kb.load(x, &[i.into()])),
            kb.load(y, &[i.into()]),
        );
        kb.store(y, &[i.into()], rhs);
        kb.end_loop();
        let k = kb.finish();

        let n = 8;
        let mut env = Env::new()
            .buffer("x", (0..n).map(|v| v as f32).collect())
            .buffer("y", vec![1.0; n])
            .scalar("a", 2.0);
        execute(&k, &Binding::new().with("n", n as i64), &mut env).unwrap();
        let y = &env.buffers["y"];
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn reduction_executes() {
        let mut kb = KernelBuilder::new("rowsum");
        let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();

        let n = 4i64;
        let mut env = Env::new()
            .buffer("A", (0..16).map(|v| v as f32).collect())
            .buffer("y", vec![0.0; 4]);
        execute(&k, &Binding::new().with("n", n), &mut env).unwrap();
        assert_eq!(env.buffers["y"], vec![6.0, 22.0, 38.0, 54.0]);
    }

    #[test]
    fn missing_buffer_is_an_error() {
        let mut kb = KernelBuilder::new("t");
        let a = kb.array("a", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(0.0));
        kb.end_loop();
        let k = kb.finish();
        let err = execute(&k, &Binding::new().with("n", 4), &mut Env::new()).unwrap_err();
        assert!(err.contains("missing buffer"));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut kb = KernelBuilder::new("oob");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[Expr::var(i) + Expr::Const(1)]);
        kb.store(a, &[i.into()], ld);
        kb.end_loop();
        let k = kb.finish();
        let mut env = Env::new().buffer("a", vec![0.0; 4]);
        let err = execute(&k, &Binding::new().with("n", 4), &mut env).unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
    }

    #[test]
    fn rmw_store_reads_previous_value() {
        // a[i] = acc * 2 where acc is the old a[i].
        let mut kb = KernelBuilder::new("dbl");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::mul(cexpr::acc(), cexpr::lit(2.0)));
        kb.end_loop();
        let k = kb.finish();
        let mut env = Env::new().buffer("a", vec![1.0, 2.0, 3.0]);
        execute(&k, &Binding::new().with("n", 3), &mut env).unwrap();
        assert_eq!(env.buffers["a"], vec![2.0, 4.0, 6.0]);
    }
}
