//! Parameter-symbol interning and dense runtime-value slots.
//!
//! The decision hot path of the paper is dominated not by arithmetic but by
//! *name resolution*: every [`crate::Expr::eval`] walks a string-keyed
//! `BTreeMap` per `Param` node, and every cache key re-materialises parameter
//! names. A [`SymbolTable`] interns each parameter name once, at model
//! compile time, into a dense [`Sym`] slot; a [`BoundParams`] is the
//! runtime-side view — the [`crate::Binding`] resolved *once* per decision
//! into a flat `Option<i64>` slot array that compiled expressions index in
//! O(1) with no hashing and no string comparison.
//!
//! Interning is deterministic: slots are handed out in first-intern order,
//! so two tables built by the same compilation sequence agree bit-for-bit.

use crate::binding::Binding;
use std::collections::BTreeMap;
use std::fmt;

/// An interned parameter symbol: a dense index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The slot index this symbol occupies.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A deterministic interner from parameter names to dense [`Sym`] slots.
///
/// Built once when a region's models are compiled; each distinct name gets
/// exactly one slot, assigned in first-intern order. Lookup by `&str` is
/// allocation-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: BTreeMap<String, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Builds a table by interning `names` in order (duplicates collapse to
    /// their first slot).
    pub fn from_names<I, S>(names: I) -> SymbolTable
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = SymbolTable::new();
        for n in names {
            t.intern(n.as_ref());
        }
        t
    }

    /// Interns a name, returning its slot. Interning the same name twice
    /// returns the same slot.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), s);
        s
    }

    /// Looks up a previously interned name without interning it.
    /// Allocation-free.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The name occupying a slot.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(Sym, name)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    /// Resolves a [`Binding`] against this table into a fresh dense slot
    /// view. Parameters the binding does not cover stay symbolic (`None`).
    pub fn bind(&self, binding: &Binding) -> BoundParams {
        let mut out = BoundParams {
            slots: vec![None; self.names.len()],
        };
        self.bind_into(binding, &mut out);
        out
    }

    /// Like [`SymbolTable::bind`], but reuses an existing [`BoundParams`]
    /// allocation (resizing it if the table grew). Allocation-free once the
    /// slot vector has reached the table's size.
    pub fn bind_into(&self, binding: &Binding, out: &mut BoundParams) {
        out.slots.resize(self.names.len(), None);
        for (slot, name) in out.slots.iter_mut().zip(&self.names) {
            *slot = binding.get(name);
        }
    }
}

/// A runtime [`Binding`] resolved against a [`SymbolTable`] into dense
/// slots: the allocation-free view compiled expressions evaluate against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoundParams {
    slots: Vec<Option<i64>>,
}

impl BoundParams {
    /// An empty view (no slots; every lookup is unbound).
    pub fn new() -> BoundParams {
        BoundParams::default()
    }

    /// The value bound to a slot, or `None` if still symbolic (or the slot
    /// is out of range for this view).
    #[inline]
    pub fn get(&self, sym: Sym) -> Option<i64> {
        self.slots.get(sym.index()).copied().flatten()
    }

    /// The raw slot array, in [`Sym`] order.
    pub fn slots(&self) -> &[Option<i64>] {
        &self.slots
    }

    /// True if every slot is bound.
    pub fn fully_bound(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }
}

crate::snap_newtype!(Sym);

impl crate::snap::Snap for SymbolTable {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        // Names in slot order are the whole state: the index is derived.
        self.names.snap(w);
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let names: Vec<String> = crate::snap::Snap::unsnap(r)?;
        let mut t = SymbolTable::new();
        for n in &names {
            t.intern(n);
        }
        if t.names.len() != names.len() {
            // A duplicate name would silently renumber every later slot.
            return Err(crate::snap::SnapError::Malformed("duplicate symbol names"));
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("n");
        let b = t.intern("m");
        let a2 = t.intern("n");
        assert_eq!(a, a2, "same name interned twice must share one slot");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "n");
        assert_eq!(t.lookup("m"), Some(b));
        assert_eq!(t.lookup("absent"), None);
    }

    #[test]
    fn bind_resolves_once_and_keeps_unbound_symbolic() {
        let t = SymbolTable::from_names(["ni", "nj", "nk"]);
        let b = Binding::new().with("ni", 4).with("nk", 9);
        let p = t.bind(&b);
        assert_eq!(p.get(t.lookup("ni").unwrap()), Some(4));
        assert_eq!(
            p.get(t.lookup("nj").unwrap()),
            None,
            "unbound stays symbolic"
        );
        assert_eq!(p.get(t.lookup("nk").unwrap()), Some(9));
        assert!(!p.fully_bound());
        assert_eq!(p.slots(), &[Some(4), None, Some(9)]);
    }

    #[test]
    fn bind_into_reuses_allocation() {
        let t = SymbolTable::from_names(["a", "b"]);
        let mut p = t.bind(&Binding::new().with("a", 1));
        let cap = p.slots.capacity();
        t.bind_into(&Binding::new().with("b", 2), &mut p);
        assert_eq!(p.slots(), &[None, Some(2)]);
        assert_eq!(p.slots.capacity(), cap);
    }

    #[test]
    fn merged_binding_resolves_with_merge_semantics() {
        // Binding::merge lets `other` win; the dense view must reflect the
        // merged map, and names interned from both sources share one slot.
        let mut t = SymbolTable::new();
        let from_first = t.intern("n");
        let from_second = t.intern("n");
        assert_eq!(from_first, from_second);

        let mut base = Binding::new().with("n", 1).with("m", 7);
        base.merge(&Binding::new().with("n", 2));
        t.intern("m");
        let p = t.bind(&base);
        assert_eq!(p.get(from_first), Some(2), "merge: other wins");
        assert_eq!(p.get(t.lookup("m").unwrap()), Some(7));
    }

    #[test]
    fn from_iterator_binding_matches_table_order_independence() {
        // FromIterator builds the same BTreeMap regardless of pair order;
        // the dense view therefore only depends on the table's slot order.
        let t = SymbolTable::from_names(["x", "y"]);
        let fwd: Binding = vec![("x".to_string(), 1), ("y".to_string(), 2)]
            .into_iter()
            .collect();
        let rev: Binding = vec![("y".to_string(), 2), ("x".to_string(), 1)]
            .into_iter()
            .collect();
        assert_eq!(t.bind(&fwd), t.bind(&rev));
        assert!(t.bind(&fwd).fully_bound());
    }

    #[test]
    fn out_of_range_sym_is_unbound_not_panic() {
        let t = SymbolTable::from_names(["n"]);
        let p = t.bind(&Binding::new().with("n", 3));
        assert_eq!(p.get(Sym(5)), None);
    }
}
