//! Scalar integer expressions over symbolic parameters and loop variables.
//!
//! `Expr` is the general-purpose expression tree used for loop bounds, array
//! extents, and index expressions in the kernel IR. Expressions may reference
//! *parameters* (symbolic unknowns such as the matrix dimension `n`, bound to
//! concrete values only at runtime) and *loop variables* (induction variables
//! of the enclosing loop nest).
//!
//! The hybrid analysis of the paper rests on the distinction between the two:
//! a parameter is an opaque runtime value stored in the program attribute
//! database, while a loop variable is the quantity the Iteration Point
//! Difference Analysis (IPDA) differentiates over.

use crate::binding::Binding;
use crate::kernel::LoopVarId;
use std::fmt;

/// An integer-valued expression over parameters and loop variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A symbolic parameter, bound at runtime (e.g. an array extent).
    Param(String),
    /// A loop induction variable of the enclosing nest.
    Var(LoopVarId),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Floor division (used for triangular/blocked bounds).
    Div(Box<Expr>, Box<Expr>),
    /// Minimum of two expressions.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two expressions.
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A parameter reference by name.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// A loop-variable reference.
    pub fn var(v: LoopVarId) -> Expr {
        Expr::Var(v)
    }

    /// Evaluates the expression with loop variables taken from `vars` and
    /// parameters from the runtime `binding`.
    ///
    /// Returns `None` if a parameter is unbound, a referenced loop variable is
    /// missing from `vars`, or a division by zero occurs.
    pub fn eval(&self, binding: &Binding, vars: &dyn Fn(LoopVarId) -> Option<i64>) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Param(p) => binding.get(p),
            Expr::Var(v) => vars(*v),
            Expr::Add(a, b) => Some(a.eval(binding, vars)?.wrapping_add(b.eval(binding, vars)?)),
            Expr::Sub(a, b) => Some(a.eval(binding, vars)?.wrapping_sub(b.eval(binding, vars)?)),
            Expr::Mul(a, b) => Some(a.eval(binding, vars)?.wrapping_mul(b.eval(binding, vars)?)),
            Expr::Div(a, b) => {
                let d = b.eval(binding, vars)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(binding, vars)?.div_euclid(d))
                }
            }
            Expr::Min(a, b) => Some(a.eval(binding, vars)?.min(b.eval(binding, vars)?)),
            Expr::Max(a, b) => Some(a.eval(binding, vars)?.max(b.eval(binding, vars)?)),
        }
    }

    /// Evaluates a *closed* expression: one that references no loop variables.
    pub fn eval_closed(&self, binding: &Binding) -> Option<i64> {
        self.eval(binding, &|_| None)
    }

    /// True if the expression references no parameters and no loop variables.
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Param(_) | Expr::Var(_) => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.is_const() && b.is_const(),
        }
    }

    /// Collects the names of all parameters referenced by the expression.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Param(p) => out.push(p.clone()),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
        }
    }

    /// Collects the loop variables referenced by the expression.
    pub fn loop_vars(&self) -> Vec<LoopVarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<LoopVarId>) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Expr {
        Expr::Const(c)
    }
}

impl From<&str> for Expr {
    fn from(p: &str) -> Expr {
        Expr::Param(p.to_string())
    }
}

impl From<LoopVarId> for Expr {
    fn from(v: LoopVarId) -> Expr {
        Expr::Var(v)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Param(p) => write!(f, "[{p}]"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

impl crate::snap::Snap for Expr {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            Expr::Const(c) => {
                w.put_u8(0);
                w.put_i64(*c);
            }
            Expr::Param(p) => {
                w.put_u8(1);
                p.snap(w);
            }
            Expr::Var(v) => {
                w.put_u8(2);
                v.snap(w);
            }
            Expr::Add(a, b) => {
                w.put_u8(3);
                a.snap(w);
                b.snap(w);
            }
            Expr::Sub(a, b) => {
                w.put_u8(4);
                a.snap(w);
                b.snap(w);
            }
            Expr::Mul(a, b) => {
                w.put_u8(5);
                a.snap(w);
                b.snap(w);
            }
            Expr::Div(a, b) => {
                w.put_u8(6);
                a.snap(w);
                b.snap(w);
            }
            Expr::Min(a, b) => {
                w.put_u8(7);
                a.snap(w);
                b.snap(w);
            }
            Expr::Max(a, b) => {
                w.put_u8(8);
                a.snap(w);
                b.snap(w);
            }
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => Expr::Const(r.get_i64()?),
            1 => Expr::Param(String::unsnap(r)?),
            2 => Expr::Var(LoopVarId::unsnap(r)?),
            3 => Expr::Add(Box::unsnap(r)?, Box::unsnap(r)?),
            4 => Expr::Sub(Box::unsnap(r)?, Box::unsnap(r)?),
            5 => Expr::Mul(Box::unsnap(r)?, Box::unsnap(r)?),
            6 => Expr::Div(Box::unsnap(r)?, Box::unsnap(r)?),
            7 => Expr::Min(Box::unsnap(r)?, Box::unsnap(r)?),
            8 => Expr::Max(Box::unsnap(r)?, Box::unsnap(r)?),
            _ => return Err(crate::snap::SnapError::Malformed("bad Expr tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> LoopVarId {
        LoopVarId(i)
    }

    #[test]
    fn eval_constant() {
        let e = Expr::Const(7);
        assert_eq!(e.eval_closed(&Binding::new()), Some(7));
        assert!(e.is_const());
    }

    #[test]
    fn eval_param() {
        let e = Expr::param("n") * Expr::Const(2);
        let b = Binding::new().with("n", 21);
        assert_eq!(e.eval_closed(&b), Some(42));
        assert!(!e.is_const());
        assert_eq!(e.params(), vec!["n".to_string()]);
    }

    #[test]
    fn eval_unbound_param_is_none() {
        let e = Expr::param("n");
        assert_eq!(e.eval_closed(&Binding::new()), None);
    }

    #[test]
    fn eval_with_loop_vars() {
        // i * n + j
        let e = Expr::var(v(0)) * Expr::param("n") + Expr::var(v(1));
        let b = Binding::new().with("n", 100);
        let vals = |id: LoopVarId| Some(if id == v(0) { 3 } else { 4 });
        assert_eq!(e.eval(&b, &vals), Some(304));
        assert_eq!(e.loop_vars(), vec![v(0), v(1)]);
    }

    #[test]
    fn div_by_zero_is_none() {
        let e = Expr::Div(Box::new(Expr::Const(4)), Box::new(Expr::Const(0)));
        assert_eq!(e.eval_closed(&Binding::new()), None);
    }

    #[test]
    fn min_max() {
        let e = Expr::Min(Box::new(Expr::Const(4)), Box::new(Expr::Const(9)));
        assert_eq!(e.eval_closed(&Binding::new()), Some(4));
        let e = Expr::Max(Box::new(Expr::Const(4)), Box::new(Expr::Const(9)));
        assert_eq!(e.eval_closed(&Binding::new()), Some(9));
    }

    #[test]
    fn display_matches_paper_notation() {
        // Paper notation: symbolic unknowns are displayed in brackets.
        let e = Expr::param("max") * Expr::var(v(0));
        assert_eq!(format!("{e}"), "([max] * i0)");
    }

    #[test]
    fn floor_division_is_euclidean() {
        let e = Expr::Div(Box::new(Expr::Const(-7)), Box::new(Expr::Const(2)));
        assert_eq!(e.eval_closed(&Binding::new()), Some(-4));
    }
}
