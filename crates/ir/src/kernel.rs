//! The kernel IR: an OpenMP-style `target teams distribute parallel for`
//! loop nest in a form amenable to static analysis.
//!
//! A [`Kernel`] corresponds to one outlined OpenMP target region: a loop nest
//! whose outermost loop (or outermost perfectly-nested loops, mirroring
//! `collapse`) is parallel, with a body of assignments over affine array
//! accesses, scalar accumulators, and sequential inner loops. This captures
//! exactly the program features the paper's models consume: the instruction
//! loadout, the memory accesses with their symbolic index expressions, trip
//! counts, and the data-transfer footprint of the region.

use crate::binding::Binding;
use crate::expr::Expr;
use std::fmt;

/// Identifier of a loop induction variable within a kernel (dense indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopVarId(pub usize);

impl fmt::Display for LoopVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Identifier of an array declared by a kernel (dense indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Direction of the host<->device transfer implied by an OpenMP `map` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transfer {
    /// `map(to:)` — copied host-to-device before launch.
    In,
    /// `map(from:)` — copied device-to-host after completion.
    Out,
    /// `map(tofrom:)` — copied both ways.
    InOut,
    /// `map(alloc:)` — device-resident scratch, never copied.
    Alloc,
}

impl Transfer {
    /// True if the array is copied host-to-device.
    pub fn to_device(self) -> bool {
        matches!(self, Transfer::In | Transfer::InOut)
    }

    /// True if the array is copied device-to-host.
    pub fn from_device(self) -> bool {
        matches!(self, Transfer::Out | Transfer::InOut)
    }
}

/// An array declared by (mapped into) a target region.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name, e.g. `"A"`.
    pub name: String,
    /// Element size in bytes (4 for `float`, 8 for `double`).
    pub elem_bytes: u32,
    /// Extents of each dimension, outermost first (row-major layout).
    pub extents: Vec<Expr>,
    /// Transfer direction.
    pub transfer: Transfer,
}

impl ArrayDecl {
    /// Total size in bytes under a runtime binding.
    pub fn bytes(&self, binding: &Binding) -> Option<u64> {
        let mut n: u64 = u64::from(self.elem_bytes);
        for e in &self.extents {
            let v = e.eval_closed(binding)?;
            if v < 0 {
                return None;
            }
            n = n.checked_mul(v as u64)?;
        }
        Some(n)
    }

    /// Number of elements under a runtime binding.
    pub fn elements(&self, binding: &Binding) -> Option<u64> {
        self.bytes(binding).map(|b| b / u64::from(self.elem_bytes))
    }
}

/// A (possibly multi-dimensional) array access, e.g. `A[i][k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// Which declared array is accessed.
    pub array: ArrayId,
    /// One index expression per dimension, outermost first.
    pub index: Vec<Expr>,
}

/// The floating-point dataflow of an assignment's right-hand side.
///
/// Keeping the real dataflow tree (rather than just operation counts) lets
/// the machine-code analyzer see dependency chains — e.g. the loop-carried
/// accumulator chain of a dot product, which bounds CPU throughput.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Load an array element.
    Load(ArrayRef),
    /// A scalar kernel argument held in a register (e.g. `alpha`).
    Scalar(String),
    /// A floating-point literal.
    Lit(f64),
    /// The current value of the destination (read-modify-write), e.g. the
    /// scalar accumulator of a reduction or `C[i][j]` in `C[i][j] += ...`.
    Acc,
    /// Addition.
    Add(Box<CExpr>, Box<CExpr>),
    /// Subtraction.
    Sub(Box<CExpr>, Box<CExpr>),
    /// Multiplication.
    Mul(Box<CExpr>, Box<CExpr>),
    /// Division.
    Div(Box<CExpr>, Box<CExpr>),
    /// Square root.
    Sqrt(Box<CExpr>),
}

impl CExpr {
    /// Load helper.
    pub fn load(r: ArrayRef) -> CExpr {
        CExpr::Load(r)
    }

    /// Walks all array references in evaluation order.
    pub fn for_each_load(&self, f: &mut impl FnMut(&ArrayRef)) {
        match self {
            CExpr::Load(r) => f(r),
            CExpr::Scalar(_) | CExpr::Lit(_) | CExpr::Acc => {}
            CExpr::Add(a, b) | CExpr::Sub(a, b) | CExpr::Mul(a, b) | CExpr::Div(a, b) => {
                a.for_each_load(f);
                b.for_each_load(f);
            }
            CExpr::Sqrt(a) => a.for_each_load(f),
        }
    }

    /// True if the expression reads the destination's previous value.
    pub fn uses_acc(&self) -> bool {
        match self {
            CExpr::Acc => true,
            CExpr::Load(_) | CExpr::Scalar(_) | CExpr::Lit(_) => false,
            CExpr::Add(a, b) | CExpr::Sub(a, b) | CExpr::Mul(a, b) | CExpr::Div(a, b) => {
                a.uses_acc() || b.uses_acc()
            }
            CExpr::Sqrt(a) => a.uses_acc(),
        }
    }

    /// Counts floating-point operations by kind: `(add_sub, mul, div, sqrt)`.
    pub fn fp_op_counts(&self) -> FpOps {
        let mut ops = FpOps::default();
        self.accumulate_ops(&mut ops);
        ops
    }

    fn accumulate_ops(&self, ops: &mut FpOps) {
        match self {
            CExpr::Load(_) | CExpr::Scalar(_) | CExpr::Lit(_) | CExpr::Acc => {}
            CExpr::Add(a, b) | CExpr::Sub(a, b) => {
                ops.add_sub += 1;
                a.accumulate_ops(ops);
                b.accumulate_ops(ops);
            }
            CExpr::Mul(a, b) => {
                ops.mul += 1;
                a.accumulate_ops(ops);
                b.accumulate_ops(ops);
            }
            CExpr::Div(a, b) => {
                ops.div += 1;
                a.accumulate_ops(ops);
                b.accumulate_ops(ops);
            }
            CExpr::Sqrt(a) => {
                ops.sqrt += 1;
                a.accumulate_ops(ops);
            }
        }
    }
}

/// Floating-point operation counts of an expression or statement body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpOps {
    /// Additions and subtractions.
    pub add_sub: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Square roots.
    pub sqrt: u64,
}

impl FpOps {
    /// Total floating-point operations.
    pub fn total(&self) -> u64 {
        self.add_sub + self.mul + self.div + self.sqrt
    }
}

impl std::ops::Add for FpOps {
    type Output = FpOps;
    fn add(self, r: FpOps) -> FpOps {
        FpOps {
            add_sub: self.add_sub + r.add_sub,
            mul: self.mul + r.mul,
            div: self.div + r.div,
            sqrt: self.sqrt + r.sqrt,
        }
    }
}

/// The destination of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Lhs {
    /// A store to an array element.
    Array(ArrayRef),
    /// A named scalar accumulator held in a register (no memory traffic).
    Acc(String),
}

/// One assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Destination.
    pub lhs: Lhs,
    /// Right-hand side dataflow.
    pub rhs: CExpr,
}

/// A `for` loop header. The iteration domain is `lower <= v < upper`, step 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Induction variable.
    pub var: LoopVarId,
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Exclusive upper bound.
    pub upper: Expr,
    /// True for loops in the parallel (distributed) iteration space.
    pub parallel: bool,
}

impl Loop {
    /// Trip count when the bounds are closed under `binding`; `outer`
    /// supplies values for any outer loop variables the bounds reference
    /// (e.g. triangular nests).
    pub fn trip_count(
        &self,
        binding: &Binding,
        outer: &dyn Fn(LoopVarId) -> Option<i64>,
    ) -> Option<i64> {
        let lo = self.lower.eval(binding, outer)?;
        let hi = self.upper.eval(binding, outer)?;
        Some((hi - lo).max(0))
    }
}

/// A statement: either a nested loop or an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A (possibly sequential) nested loop.
    For(Loop, Vec<Stmt>),
    /// An assignment.
    Assign(Assign),
}

impl Stmt {
    /// Depth-first walk over all assignments, passing the stack of enclosing
    /// loops (outermost first).
    pub fn walk_assigns<'a>(
        &'a self,
        loops: &mut Vec<&'a Loop>,
        f: &mut impl FnMut(&[&Loop], &Assign),
    ) {
        match self {
            Stmt::For(l, body) => {
                loops.push(l);
                for s in body {
                    s.walk_assigns(loops, f);
                }
                loops.pop();
            }
            Stmt::Assign(a) => f(loops, a),
        }
    }
}

/// One outlined OpenMP target region.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Identifier, e.g. `"gemm"` or `"corr.k2"`.
    pub name: String,
    /// Arrays mapped into the region.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements. The outermost loops marked `parallel` form the
    /// distributed iteration space.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Looks up an array declaration.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// The outermost chain of perfectly-nested parallel loops
    /// (the `teams distribute parallel for [collapse]` dimensions),
    /// outermost first.
    pub fn parallel_loops(&self) -> Vec<&Loop> {
        let mut out = Vec::new();
        let mut stmts: &[Stmt] = &self.body;
        loop {
            match stmts {
                [Stmt::For(l, body)] if l.parallel => {
                    out.push(l);
                    stmts = body;
                }
                _ => break,
            }
        }
        out
    }

    /// Statements forming the body of one parallel iteration (the statements
    /// inside the innermost parallel loop).
    pub fn parallel_body(&self) -> &[Stmt] {
        let mut stmts: &[Stmt] = &self.body;
        loop {
            match stmts {
                [Stmt::For(l, body)] if l.parallel => stmts = body,
                _ => return stmts,
            }
        }
    }

    /// The innermost parallel loop variable: the dimension mapped to
    /// consecutive GPU threads (and thus the dimension IPDA differentiates
    /// over).
    pub fn thread_dim(&self) -> Option<LoopVarId> {
        self.parallel_loops().last().map(|l| l.var)
    }

    /// Total number of parallel work items under a runtime binding.
    ///
    /// Parallel loop bounds must be closed expressions (true for all
    /// OpenMP-distributable loops in this IR).
    pub fn parallel_iterations(&self, binding: &Binding) -> Option<u64> {
        let mut total: u64 = 1;
        for l in self.parallel_loops() {
            let t = l.trip_count(binding, &|_| None)?;
            total = total.checked_mul(t.max(0) as u64)?;
        }
        Some(total)
    }

    /// Bytes transferred host-to-device before launch.
    pub fn bytes_to_device(&self, binding: &Binding) -> Option<u64> {
        self.arrays
            .iter()
            .filter(|a| a.transfer.to_device())
            .map(|a| a.bytes(binding))
            .try_fold(0u64, |acc, b| Some(acc + b?))
    }

    /// Bytes transferred device-to-host after completion.
    pub fn bytes_from_device(&self, binding: &Binding) -> Option<u64> {
        self.arrays
            .iter()
            .filter(|a| a.transfer.from_device())
            .map(|a| a.bytes(binding))
            .try_fold(0u64, |acc, b| Some(acc + b?))
    }

    /// All symbolic parameters referenced anywhere in the kernel.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.arrays {
            for e in &a.extents {
                out.extend(e.params());
            }
        }
        fn visit(stmts: &[Stmt], out: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::For(l, body) => {
                        out.extend(l.lower.params());
                        out.extend(l.upper.params());
                        visit(body, out);
                    }
                    Stmt::Assign(a) => {
                        if let Lhs::Array(r) = &a.lhs {
                            for e in &r.index {
                                out.extend(e.params());
                            }
                        }
                        a.rhs.for_each_load(&mut |r| {
                            for e in &r.index {
                                out.extend(e.params());
                            }
                        });
                    }
                }
            }
        }
        visit(&self.body, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Walks every assignment with its enclosing loop stack.
    pub fn walk_assigns(&self, mut f: impl FnMut(&[&Loop], &Assign)) {
        let mut loops = Vec::new();
        for s in &self.body {
            s.walk_assigns(&mut loops, &mut f);
        }
    }

    /// Structural validation: every referenced array exists and every access
    /// has the right dimensionality; parallel loops appear only as the
    /// outermost perfect nest.
    pub fn validate(&self) -> Result<(), String> {
        let check_ref = |r: &ArrayRef| -> Result<(), String> {
            let decl = self
                .arrays
                .get(r.array.0)
                .ok_or_else(|| format!("{}: unknown array id {:?}", self.name, r.array))?;
            if decl.extents.len() != r.index.len() {
                return Err(format!(
                    "{}: access to {} has {} indices, array has {} dims",
                    self.name,
                    decl.name,
                    r.index.len(),
                    decl.extents.len()
                ));
            }
            Ok(())
        };
        let mut err = None;
        self.walk_assigns(|_, a| {
            if err.is_some() {
                return;
            }
            if let Lhs::Array(r) = &a.lhs {
                if let Err(e) = check_ref(r) {
                    err = Some(e);
                }
            }
            a.rhs.for_each_load(&mut |r| {
                if err.is_none() {
                    if let Err(e) = check_ref(r) {
                        err = Some(e);
                    }
                }
            });
        });
        if let Some(e) = err {
            return Err(e);
        }
        // Parallel loops must be the outermost perfect nest only.
        fn check_no_parallel(stmts: &[Stmt], name: &str) -> Result<(), String> {
            for s in stmts {
                if let Stmt::For(l, body) = s {
                    if l.parallel {
                        return Err(format!("{name}: parallel loop {} not outermost", l.var));
                    }
                    check_no_parallel(body, name)?;
                }
            }
            Ok(())
        }
        check_no_parallel(self.parallel_body(), &self.name)?;
        if self.parallel_loops().is_empty() {
            return Err(format!("{}: no parallel loops", self.name));
        }
        Ok(())
    }
}

crate::snap_newtype!(LoopVarId);
crate::snap_newtype!(ArrayId);

crate::snap_unit_enum!(Transfer {
    0 => In,
    1 => Out,
    2 => InOut,
    3 => Alloc,
});

crate::snap_struct!(ArrayDecl {
    name,
    elem_bytes,
    extents,
    transfer,
});

crate::snap_struct!(ArrayRef { array, index });

impl crate::snap::Snap for CExpr {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            CExpr::Load(r) => {
                w.put_u8(0);
                r.snap(w);
            }
            CExpr::Scalar(s) => {
                w.put_u8(1);
                s.snap(w);
            }
            CExpr::Lit(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
            CExpr::Acc => w.put_u8(3),
            CExpr::Add(a, b) => {
                w.put_u8(4);
                a.snap(w);
                b.snap(w);
            }
            CExpr::Sub(a, b) => {
                w.put_u8(5);
                a.snap(w);
                b.snap(w);
            }
            CExpr::Mul(a, b) => {
                w.put_u8(6);
                a.snap(w);
                b.snap(w);
            }
            CExpr::Div(a, b) => {
                w.put_u8(7);
                a.snap(w);
                b.snap(w);
            }
            CExpr::Sqrt(a) => {
                w.put_u8(8);
                a.snap(w);
            }
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => CExpr::Load(ArrayRef::unsnap(r)?),
            1 => CExpr::Scalar(String::unsnap(r)?),
            2 => CExpr::Lit(r.get_f64()?),
            3 => CExpr::Acc,
            4 => CExpr::Add(Box::unsnap(r)?, Box::unsnap(r)?),
            5 => CExpr::Sub(Box::unsnap(r)?, Box::unsnap(r)?),
            6 => CExpr::Mul(Box::unsnap(r)?, Box::unsnap(r)?),
            7 => CExpr::Div(Box::unsnap(r)?, Box::unsnap(r)?),
            8 => CExpr::Sqrt(Box::unsnap(r)?),
            _ => return Err(crate::snap::SnapError::Malformed("bad CExpr tag")),
        })
    }
}

impl crate::snap::Snap for Lhs {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            Lhs::Array(r) => {
                w.put_u8(0);
                r.snap(w);
            }
            Lhs::Acc(s) => {
                w.put_u8(1);
                s.snap(w);
            }
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => Lhs::Array(ArrayRef::unsnap(r)?),
            1 => Lhs::Acc(String::unsnap(r)?),
            _ => return Err(crate::snap::SnapError::Malformed("bad Lhs tag")),
        })
    }
}

crate::snap_struct!(Assign { lhs, rhs });

crate::snap_struct!(Loop {
    var,
    lower,
    upper,
    parallel,
});

impl crate::snap::Snap for Stmt {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            Stmt::For(l, body) => {
                w.put_u8(0);
                l.snap(w);
                body.snap(w);
            }
            Stmt::Assign(a) => {
                w.put_u8(1);
                a.snap(w);
            }
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => Stmt::For(Loop::unsnap(r)?, Vec::unsnap(r)?),
            1 => Stmt::Assign(Assign::unsnap(r)?),
            _ => return Err(crate::snap::SnapError::Malformed("bad Stmt tag")),
        })
    }
}

crate::snap_struct!(Kernel { name, arrays, body });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    /// `#pragma omp target teams distribute parallel for`
    /// `for (i = 0..n) for (j = 0..n) acc += A[i][j] * x[j]; y[i] = acc`
    fn mv_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("mv");
        let a = kb.array("A", 8, &["n".into(), "n".into()], Transfer::In);
        let x = kb.array("x", 8, &["n".into()], Transfer::In);
        let y = kb.array("y", 8, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("sum", CExpr::Lit(0.0));
        let j = kb.seq_loop(0, "n");
        kb.assign_acc(
            "sum",
            CExpr::Add(
                Box::new(CExpr::Acc),
                Box::new(CExpr::Mul(
                    Box::new(kb.load(a, &[i.into(), j.into()])),
                    Box::new(kb.load(x, &[j.into()])),
                )),
            ),
        );
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "sum");
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn mv_validates() {
        let k = mv_kernel();
        k.validate().unwrap();
    }

    #[test]
    fn mv_parallel_structure() {
        let k = mv_kernel();
        let ploops = k.parallel_loops();
        assert_eq!(ploops.len(), 1);
        assert_eq!(k.thread_dim(), Some(ploops[0].var));
        let b = Binding::new().with("n", 1100);
        assert_eq!(k.parallel_iterations(&b), Some(1100));
    }

    #[test]
    fn mv_transfer_footprint() {
        let k = mv_kernel();
        let b = Binding::new().with("n", 100);
        // A (100*100*8) + x (100*8) to device; y (100*8) from device.
        assert_eq!(k.bytes_to_device(&b), Some(80_000 + 800));
        assert_eq!(k.bytes_from_device(&b), Some(800));
    }

    #[test]
    fn mv_params() {
        assert_eq!(mv_kernel().params(), vec!["n".to_string()]);
    }

    #[test]
    fn walk_visits_all_assigns() {
        let k = mv_kernel();
        let mut n = 0;
        k.walk_assigns(|_, _| n += 1);
        assert_eq!(n, 3); // init, fma, store
    }

    #[test]
    fn fp_ops_counted() {
        let k = mv_kernel();
        let mut fma_ops = FpOps::default();
        k.walk_assigns(|loops, a| {
            if loops.len() == 2 {
                fma_ops = a.rhs.fp_op_counts();
            }
        });
        assert_eq!(fma_ops.add_sub, 1);
        assert_eq!(fma_ops.mul, 1);
    }

    #[test]
    fn trip_count_respects_outer_vars() {
        // for j in i..n (triangular)
        let l = Loop {
            var: LoopVarId(1),
            lower: Expr::Var(LoopVarId(0)),
            upper: Expr::param("n"),
            parallel: false,
        };
        let b = Binding::new().with("n", 10);
        assert_eq!(l.trip_count(&b, &|_| Some(4)), Some(6));
    }

    #[test]
    fn unbound_parallel_iterations_is_none() {
        let k = mv_kernel();
        assert_eq!(k.parallel_iterations(&Binding::new()), None);
    }
}
