//! Deterministic synthetic-kernel generation for fuzz-style testing.
//!
//! Generates random-but-valid kernels (bounded affine indices, well-formed
//! nests, in-bounds accesses for any positive binding) from a seed, so the
//! analyses, models and simulators can be exercised far outside the
//! hand-written suite. A simple SplitMix64 keeps generation reproducible
//! without external dependencies.

use crate::builder::{cexpr, KernelBuilder};
use crate::expr::Expr;
use crate::kernel::{Kernel, Transfer};

/// SplitMix64: tiny, deterministic, good-enough stream of pseudo-random
/// values for structural choices.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Biased coin.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A generated kernel together with the parameters it needs bound.
#[derive(Debug, Clone)]
pub struct SynthKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Parameter names the kernel requires (`n`, and `m` when 2-D).
    pub params: Vec<&'static str>,
}

/// Generates a valid kernel from a seed.
///
/// Shape space: 1–2 parallel dimensions over `n` (and `m`); 1–3 input
/// arrays with indices drawn from in-bounds affine patterns (unit-stride,
/// transposed, broadcast, constant-strided via an over-allocated array);
/// an optional sequential reduction loop; a store that is unit-stride or
/// strided over the thread dimension. Every access is provably in bounds
/// for any binding with `n, m ≥ 1`.
pub fn generate(seed: u64) -> SynthKernel {
    let mut rng = Rng::new(seed);
    let two_d = rng.chance(50);
    let with_inner = rng.chance(60);
    let n_inputs = 1 + rng.below(3) as usize;

    let mut kb = KernelBuilder::new(format!("synth{seed:016x}"));

    // Output array: n (1-D space) or n x m (2-D space).
    let out_extents: Vec<Expr> = if two_d {
        vec!["n".into(), "m".into()]
    } else {
        vec!["n".into()]
    };
    let out = kb.array("out", 4, &out_extents, Transfer::Out);

    // Input arrays, each with a chosen access pattern. The array is always
    // allocated large enough for its pattern.
    #[derive(Clone, Copy)]
    enum Pat {
        Unit,         // a[i]        extent n
        Transposed,   // a[j][i]     extent m x n (2-D only)
        Broadcast,    // a[k or 0]   extent max(n, inner)
        Strided(i64), // a[s*i]    extent s*n
    }
    let mut inputs = Vec::new();
    for idx in 0..n_inputs {
        let pat = match rng.below(4) {
            0 => Pat::Unit,
            1 if two_d => Pat::Transposed,
            2 => Pat::Broadcast,
            _ => Pat::Strided(1 + rng.below(16) as i64),
        };
        let extents: Vec<Expr> = match pat {
            Pat::Unit | Pat::Broadcast => vec!["n".into()],
            Pat::Transposed => vec!["m".into(), "n".into()],
            Pat::Strided(s) => vec![Expr::param("n") * Expr::Const(s)],
        };
        let id = kb.array(format!("in{idx}"), 4, &extents, Transfer::In);
        inputs.push((id, pat));
    }

    let i = kb.parallel_loop(0, "n");
    let j = if two_d {
        Some(kb.parallel_loop(0, "m"))
    } else {
        None
    };

    if with_inner {
        kb.acc_init("acc", cexpr::lit(0.0));
    }
    let k = if with_inner {
        Some(kb.seq_loop(0, "n"))
    } else {
        None
    };

    // Body: sum of loads (times a scalar now and then).
    let mut rhs: Option<crate::kernel::CExpr> = None;
    for (id, pat) in &inputs {
        let index: Vec<Expr> = match pat {
            Pat::Unit => vec![i.into()],
            Pat::Transposed => vec![j.expect("2-D").into(), i.into()],
            Pat::Broadcast => vec![k.map(Expr::var).unwrap_or(Expr::Const(0))],
            Pat::Strided(s) => vec![Expr::Const(*s) * Expr::var(i)],
        };
        let mut term = kb.load(*id, &index);
        if rng.chance(40) {
            term = cexpr::mul(cexpr::scalar("alpha"), term);
        }
        rhs = Some(match rhs {
            None => term,
            Some(prev) => cexpr::add(prev, term),
        });
    }
    let rhs = rhs.expect("at least one input");

    let value = if with_inner {
        kb.assign_acc("acc", cexpr::add(cexpr::acc(), rhs));
        kb.end_loop();
        cexpr::scalar("acc")
    } else {
        rhs
    };
    let store_idx: Vec<Expr> = match j {
        Some(j) => vec![i.into(), j.into()],
        None => vec![i.into()],
    };
    kb.store(out, &store_idx, value);
    if j.is_some() {
        kb.end_loop(); // inner parallel loop
    }
    kb.end_loop();

    let params = if two_d { vec!["n", "m"] } else { vec!["n"] };
    SynthKernel {
        kernel: kb.finish(),
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.kernel, b.kernel);
        let c = generate(43);
        assert_ne!(a.kernel, c.kernel);
    }

    #[test]
    fn generated_kernels_validate_and_resolve() {
        for seed in 0..200 {
            let s = generate(seed);
            s.kernel
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut b = Binding::new();
            for p in &s.params {
                b.set(*p, 37);
            }
            b.set("alpha", 0); // alpha is a scalar, not a size parameter
            assert!(
                s.kernel.parallel_iterations(&b).unwrap_or(0) > 0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generated_kernels_interpret_in_bounds() {
        for seed in 0..60 {
            let s = generate(seed);
            let n = 13i64;
            let b = Binding::new().with("n", n).with("m", 7);
            let mut env = crate::interp::Env::new().scalar("alpha", 1.5);
            for a in &s.kernel.arrays {
                let elems = a.elements(&b).unwrap() as usize;
                env.buffers.insert(
                    a.name.clone(),
                    (0..elems).map(|v| (v % 17) as f32).collect(),
                );
            }
            crate::interp::execute(&s.kernel, &b, &mut env)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
