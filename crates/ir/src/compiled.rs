//! Flat compiled expression bytecode.
//!
//! [`CompiledExpr`] is an [`Expr`] (or a [`Poly`]) lowered once, at model
//! compile time, into postfix bytecode in a contiguous arena: parameters are
//! resolved to dense [`Sym`] slots of a [`SymbolTable`], and constant
//! subtrees are folded at emit time. Evaluation is a single linear scan over
//! the opcode slice with a small value stack — no recursion, no pointer
//! chasing, no string lookups, and (for the expression depths the Polybench
//! kernels produce) no heap allocation.
//!
//! Postfix is the natural target here: the tree interpreter's evaluation
//! order *is* a post-order traversal, so emitting post-order preserves the
//! exact `wrapping_*` operation sequence — compiled evaluation is bit-for-bit
//! identical to [`Expr::eval`], including the `None`s of unbound parameters
//! and division by zero. Constant folding follows the same rule as
//! [`Expr::simplified`]: `Const ⊕ Const` folds, except `x / 0`, which must
//! keep evaluating to `None` and therefore stays in the bytecode.

use crate::expr::Expr;
use crate::kernel::{Kernel, LoopVarId};
use crate::poly::Poly;
use crate::sym::{BoundParams, Sym, SymbolTable};

/// One postfix opcode. Leaves push a value; operators pop two and push one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push an integer literal.
    Const(i64),
    /// Push the value bound to a parameter slot (`None` aborts evaluation).
    Param(Sym),
    /// Push a loop-variable value from the evaluation context.
    Var(LoopVarId),
    /// Pop `b`, pop `a`, push `a.wrapping_add(b)`.
    Add,
    /// Pop `b`, pop `a`, push `a.wrapping_sub(b)`.
    Sub,
    /// Pop `b`, pop `a`, push `a.wrapping_mul(b)`.
    Mul,
    /// Pop `b`, pop `a`, push `a.div_euclid(b)`; `b == 0` aborts to `None`.
    Div,
    /// Pop `b`, pop `a`, push `a.min(b)`.
    Min,
    /// Pop `b`, pop `a`, push `a.max(b)`.
    Max,
}

/// Evaluations whose stack stays this shallow run entirely on the stack
/// frame; deeper programs (beyond anything the Polybench kernels produce)
/// fall back to one heap-allocated value stack.
const INLINE_STACK: usize = 16;

/// An expression compiled to flat postfix bytecode over interned symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledExpr {
    code: Box<[Op]>,
    max_stack: usize,
}

impl CompiledExpr {
    /// Lowers an expression tree, interning its parameters into `table`.
    pub fn compile(expr: &Expr, table: &mut SymbolTable) -> CompiledExpr {
        let mut code = Vec::with_capacity(expr.size());
        emit_expr(expr, table, &mut code);
        CompiledExpr::from_code(code)
    }

    /// Lowers a polynomial, interning its parameters into `table`. The
    /// emitted operation sequence mirrors [`Poly::eval`] term by term, so
    /// the result (including wrapping overflow) is bit-for-bit identical.
    pub fn compile_poly(poly: &Poly, table: &mut SymbolTable) -> CompiledExpr {
        let mut code = vec![Op::Const(0)];
        for (monomial, coeff) in poly.terms() {
            code.push(Op::Const(coeff));
            for (name, pow) in monomial {
                let sym = table.intern(name);
                for _ in 0..*pow {
                    code.push(Op::Param(sym));
                    fold_or_push(&mut code, Op::Mul);
                }
            }
            fold_or_push(&mut code, Op::Add);
        }
        CompiledExpr::from_code(code)
    }

    /// A compiled constant.
    pub fn constant(value: i64) -> CompiledExpr {
        CompiledExpr::from_code(vec![Op::Const(value)])
    }

    fn from_code(code: Vec<Op>) -> CompiledExpr {
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &code {
            match op {
                Op::Const(_) | Op::Param(_) | Op::Var(_) => {
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                _ => depth -= 1,
            }
        }
        debug_assert_eq!(depth, 1, "postfix program must leave one value");
        CompiledExpr {
            code: code.into_boxed_slice(),
            max_stack,
        }
    }

    /// The bytecode, in evaluation order.
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Peak value-stack depth of an evaluation.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// If the program folded to a single literal, its value.
    pub fn as_const(&self) -> Option<i64> {
        match *self.code {
            [Op::Const(c)] => Some(c),
            _ => None,
        }
    }

    /// Evaluates with parameters from dense slots and loop variables from
    /// `vars`. Returns `None` exactly when [`Expr::eval`] would: an unbound
    /// parameter, a missing loop variable, or a division by zero.
    pub fn eval(
        &self,
        params: &BoundParams,
        vars: &dyn Fn(LoopVarId) -> Option<i64>,
    ) -> Option<i64> {
        if self.max_stack <= INLINE_STACK {
            self.run(&mut [0i64; INLINE_STACK], params, vars)
        } else {
            self.run(&mut vec![0i64; self.max_stack], params, vars)
        }
    }

    /// Evaluates a *closed* program: one that references no loop variables.
    pub fn eval_closed(&self, params: &BoundParams) -> Option<i64> {
        self.eval(params, &|_| None)
    }

    fn run(
        &self,
        stack: &mut [i64],
        params: &BoundParams,
        vars: &dyn Fn(LoopVarId) -> Option<i64>,
    ) -> Option<i64> {
        let mut sp = 0usize;
        for op in &*self.code {
            match *op {
                Op::Const(c) => {
                    stack[sp] = c;
                    sp += 1;
                }
                Op::Param(s) => {
                    stack[sp] = params.get(s)?;
                    sp += 1;
                }
                Op::Var(v) => {
                    stack[sp] = vars(v)?;
                    sp += 1;
                }
                Op::Add => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_add(stack[sp]);
                }
                Op::Sub => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_sub(stack[sp]);
                }
                Op::Mul => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_mul(stack[sp]);
                }
                Op::Div => {
                    sp -= 1;
                    let d = stack[sp];
                    if d == 0 {
                        return None;
                    }
                    stack[sp - 1] = stack[sp - 1].div_euclid(d);
                }
                Op::Min => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].min(stack[sp]);
                }
                Op::Max => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].max(stack[sp]);
                }
            }
        }
        Some(stack[0])
    }
}

fn emit_expr(expr: &Expr, table: &mut SymbolTable, code: &mut Vec<Op>) {
    match expr {
        Expr::Const(c) => code.push(Op::Const(*c)),
        Expr::Param(p) => code.push(Op::Param(table.intern(p))),
        Expr::Var(v) => code.push(Op::Var(*v)),
        Expr::Add(a, b) => emit_binop(a, b, Op::Add, table, code),
        Expr::Sub(a, b) => emit_binop(a, b, Op::Sub, table, code),
        Expr::Mul(a, b) => emit_binop(a, b, Op::Mul, table, code),
        Expr::Div(a, b) => emit_binop(a, b, Op::Div, table, code),
        Expr::Min(a, b) => emit_binop(a, b, Op::Min, table, code),
        Expr::Max(a, b) => emit_binop(a, b, Op::Max, table, code),
    }
}

fn emit_binop(a: &Expr, b: &Expr, op: Op, table: &mut SymbolTable, code: &mut Vec<Op>) {
    emit_expr(a, table, code);
    emit_expr(b, table, code);
    fold_or_push(code, op);
}

/// Pushes an operator, folding it first when both operands reduced to
/// literals. In postfix a subprogram ends with its root opcode, so the last
/// two opcodes are both `Const` exactly when both operand subtrees folded
/// completely. `x / 0` is never folded: it must keep evaluating to `None`.
fn fold_or_push(code: &mut Vec<Op>, op: Op) {
    if let [.., Op::Const(x), Op::Const(y)] = code[..] {
        let folded = match op {
            Op::Add => Some(x.wrapping_add(y)),
            Op::Sub => Some(x.wrapping_sub(y)),
            Op::Mul => Some(x.wrapping_mul(y)),
            Op::Div if y != 0 => Some(x.div_euclid(y)),
            Op::Div => None,
            Op::Min => Some(x.min(y)),
            Op::Max => Some(x.max(y)),
            Op::Const(_) | Op::Param(_) | Op::Var(_) => unreachable!("not an operator"),
        };
        if let Some(v) = folded {
            code.truncate(code.len() - 2);
            code.push(Op::Const(v));
            return;
        }
    }
    code.push(op);
}

/// Compiles every expression reachable from `exprs` against one shared
/// table; convenience for model compilers.
pub fn compile_all<'a>(
    exprs: impl IntoIterator<Item = &'a Expr>,
    table: &mut SymbolTable,
) -> Vec<CompiledExpr> {
    exprs
        .into_iter()
        .map(|e| CompiledExpr::compile(e, table))
        .collect()
}

/// The binding-dependent *facts* of a kernel — parallel iteration count,
/// per-array footprints, transfer volumes — with every extent and bound
/// lowered to bytecode. Each accessor reproduces its [`Kernel`] counterpart
/// exactly (same arithmetic, same `checked_mul` overflow behaviour, same
/// `None`s), so swapping one in changes nothing but the lookup cost.
#[derive(Debug, Clone, Default)]
pub struct CompiledKernel {
    /// `(lower, upper)` of the parallel loop chain, outermost first.
    par_bounds: Vec<(CompiledExpr, CompiledExpr)>,
    arrays: Vec<CompiledArray>,
}

#[derive(Debug, Clone)]
struct CompiledArray {
    elem_bytes: u32,
    extents: Vec<CompiledExpr>,
    to_device: bool,
    from_device: bool,
}

impl CompiledArray {
    /// Mirrors `ArrayDecl::bytes`.
    fn bytes(&self, params: &BoundParams) -> Option<u64> {
        let mut n: u64 = u64::from(self.elem_bytes);
        for e in &self.extents {
            let v = e.eval_closed(params)?;
            if v < 0 {
                return None;
            }
            n = n.checked_mul(v as u64)?;
        }
        Some(n)
    }
}

impl CompiledKernel {
    /// Lowers the kernel's parallel bounds and array extents, interning
    /// their parameters into `table`.
    pub fn compile(kernel: &Kernel, table: &mut SymbolTable) -> CompiledKernel {
        CompiledKernel {
            par_bounds: kernel
                .parallel_loops()
                .iter()
                .map(|l| {
                    (
                        CompiledExpr::compile(&l.lower, table),
                        CompiledExpr::compile(&l.upper, table),
                    )
                })
                .collect(),
            arrays: kernel
                .arrays
                .iter()
                .map(|a| CompiledArray {
                    elem_bytes: a.elem_bytes,
                    extents: compile_all(&a.extents, table),
                    to_device: a.transfer.to_device(),
                    from_device: a.transfer.from_device(),
                })
                .collect(),
        }
    }

    /// Mirrors [`Kernel::parallel_iterations`].
    pub fn parallel_iterations(&self, params: &BoundParams) -> Option<u64> {
        let mut total: u64 = 1;
        for (lower, upper) in &self.par_bounds {
            let lo = lower.eval_closed(params)?;
            let hi = upper.eval_closed(params)?;
            let t = (hi - lo).max(0);
            total = total.checked_mul(t.max(0) as u64)?;
        }
        Some(total)
    }

    /// Mirrors `ArrayDecl::bytes` for the array at declaration index `idx`.
    pub fn array_bytes(&self, idx: usize, params: &BoundParams) -> Option<u64> {
        self.arrays.get(idx)?.bytes(params)
    }

    /// Mirrors the TLB-reach footprint sum: total bytes over all arrays
    /// whose extents resolve (unresolvable arrays are skipped, as in
    /// `kernel.arrays.iter().filter_map(|a| a.bytes(b)).sum()`).
    pub fn resolved_bytes_total(&self, params: &BoundParams) -> u64 {
        self.arrays.iter().filter_map(|a| a.bytes(params)).sum()
    }

    /// Mirrors [`Kernel::bytes_to_device`].
    pub fn bytes_to_device(&self, params: &BoundParams) -> Option<u64> {
        self.arrays
            .iter()
            .filter(|a| a.to_device)
            .map(|a| a.bytes(params))
            .try_fold(0u64, |acc, b| Some(acc + b?))
    }

    /// Mirrors [`Kernel::bytes_from_device`].
    pub fn bytes_from_device(&self, params: &BoundParams) -> Option<u64> {
        self.arrays
            .iter()
            .filter(|a| a.from_device)
            .map(|a| a.bytes(params))
            .try_fold(0u64, |acc, b| Some(acc + b?))
    }
}

impl crate::snap::Snap for Op {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match *self {
            Op::Const(c) => {
                w.put_u8(0);
                w.put_i64(c);
            }
            Op::Param(s) => {
                w.put_u8(1);
                s.snap(w);
            }
            Op::Var(v) => {
                w.put_u8(2);
                v.snap(w);
            }
            Op::Add => w.put_u8(3),
            Op::Sub => w.put_u8(4),
            Op::Mul => w.put_u8(5),
            Op::Div => w.put_u8(6),
            Op::Min => w.put_u8(7),
            Op::Max => w.put_u8(8),
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => Op::Const(r.get_i64()?),
            1 => Op::Param(Sym::unsnap(r)?),
            2 => Op::Var(LoopVarId::unsnap(r)?),
            3 => Op::Add,
            4 => Op::Sub,
            5 => Op::Mul,
            6 => Op::Div,
            7 => Op::Min,
            8 => Op::Max,
            _ => return Err(crate::snap::SnapError::Malformed("bad Op tag")),
        })
    }
}

impl crate::snap::Snap for CompiledExpr {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        // `max_stack` is derived state: re-derived on decode via `from_code`.
        w.put_usize(self.code.len());
        for op in &*self.code {
            op.snap(w);
        }
    }
    fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let n = r.get_len()?;
        if n == 0 {
            // `CompiledExpr::default()` — no program; only ever evaluated to
            // `None` through higher-level guards.
            return Ok(CompiledExpr::default());
        }
        let mut code = Vec::with_capacity(n);
        for _ in 0..n {
            code.push(Op::unsnap(r)?);
        }
        // Validate postfix stack discipline before trusting the program:
        // `from_code` (and `run`) assume operators always have two operands.
        let mut depth = 0usize;
        for op in &code {
            match op {
                Op::Const(_) | Op::Param(_) | Op::Var(_) => depth += 1,
                _ => {
                    if depth < 2 {
                        return Err(crate::snap::SnapError::Malformed("postfix stack underflow"));
                    }
                    depth -= 1;
                }
            }
        }
        if depth != 1 {
            return Err(crate::snap::SnapError::Malformed(
                "postfix program must leave one value",
            ));
        }
        Ok(CompiledExpr::from_code(code))
    }
}

crate::snap_struct!(CompiledArray {
    elem_bytes,
    extents,
    to_device,
    from_device,
});

crate::snap_struct!(CompiledKernel { par_bounds, arrays });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use proptest::prelude::*;

    fn v(i: usize) -> LoopVarId {
        LoopVarId(i)
    }

    fn compile1(e: &Expr) -> (CompiledExpr, SymbolTable) {
        let mut t = SymbolTable::new();
        let c = CompiledExpr::compile(e, &mut t);
        (c, t)
    }

    #[test]
    fn constants_fold_at_emit_time() {
        let e = Expr::Const(2) * Expr::Const(3) + Expr::Const(4);
        let (c, _) = compile1(&e);
        assert_eq!(c.as_const(), Some(10));
        assert_eq!(c.code().len(), 1);
    }

    #[test]
    fn div_by_zero_is_never_folded() {
        // x / 0 must stay in the bytecode and evaluate to None — folding it
        // to any literal would turn a failure into a value.
        let e = Expr::Div(Box::new(Expr::Const(4)), Box::new(Expr::Const(0)));
        let (c, _) = compile1(&e);
        assert_eq!(c.as_const(), None);
        assert_eq!(c.code().len(), 3);
        assert_eq!(c.eval_closed(&BoundParams::new()), None);

        // ...including when the division by zero feeds a foldable operator.
        let e = Expr::Add(
            Box::new(Expr::Div(
                Box::new(Expr::Const(4)),
                Box::new(Expr::Const(0)),
            )),
            Box::new(Expr::Const(1)),
        );
        let (c, _) = compile1(&e);
        assert_eq!(c.as_const(), None);
        assert_eq!(c.eval_closed(&BoundParams::new()), None);
    }

    #[test]
    fn nonzero_constant_division_folds_euclidean() {
        let e = Expr::Div(Box::new(Expr::Const(-7)), Box::new(Expr::Const(2)));
        let (c, _) = compile1(&e);
        assert_eq!(c.as_const(), Some(-4));
    }

    #[test]
    fn params_resolve_to_slots() {
        let e = Expr::param("n") * Expr::Const(2) + Expr::param("m");
        let mut t = SymbolTable::new();
        let c = CompiledExpr::compile(&e, &mut t);
        let p = t.bind(&Binding::new().with("n", 21).with("m", 8));
        assert_eq!(c.eval_closed(&p), Some(50));
        assert_eq!(
            e.eval_closed(&Binding::new().with("n", 21).with("m", 8)),
            Some(50)
        );
        // Unbound parameter stays a failure, exactly like the tree.
        assert_eq!(c.eval_closed(&t.bind(&Binding::new().with("n", 1))), None);
    }

    #[test]
    fn loop_vars_come_from_context() {
        let e = Expr::var(v(0)) * Expr::param("n") + Expr::var(v(1));
        let mut t = SymbolTable::new();
        let c = CompiledExpr::compile(&e, &mut t);
        let p = t.bind(&Binding::new().with("n", 100));
        let vals = |id: LoopVarId| Some(if id == v(0) { 3 } else { 4 });
        assert_eq!(c.eval(&p, &vals), Some(304));
        assert_eq!(c.eval(&p, &|_| None), None);
    }

    #[test]
    fn poly_compilation_matches_poly_eval() {
        // 2*n*m + 3*n + 1
        let n = Poly::param("n");
        let m = Poly::param("m");
        let p = &(&(&n * &m).scale(2) + &n.scale(3)) + &Poly::constant(1);
        let mut t = SymbolTable::new();
        let c = CompiledExpr::compile_poly(&p, &mut t);
        let b = Binding::new().with("n", 5).with("m", 7);
        assert_eq!(c.eval_closed(&t.bind(&b)), p.eval(&b));
        assert_eq!(c.eval_closed(&t.bind(&Binding::new())), None);
        // Constant and zero polynomials fold completely.
        let mut t2 = SymbolTable::new();
        assert_eq!(
            CompiledExpr::compile_poly(&Poly::constant(9), &mut t2).as_const(),
            Some(9)
        );
        assert_eq!(
            CompiledExpr::compile_poly(&Poly::zero(), &mut t2).as_const(),
            Some(0)
        );
    }

    #[test]
    fn max_stack_is_tracked() {
        // ((1+2)+(3+4)) needs 3 slots before folding; folded it needs 1.
        let e = (Expr::param("a") + Expr::param("b")) + (Expr::param("c") + Expr::param("d"));
        let (c, t) = compile1(&e);
        assert_eq!(c.max_stack(), 3);
        let p = t.bind(
            &Binding::new()
                .with("a", 1)
                .with("b", 2)
                .with("c", 3)
                .with("d", 4),
        );
        assert_eq!(c.eval_closed(&p), Some(10));
    }

    #[test]
    fn deep_programs_fall_back_to_heap_stack() {
        // A right-leaning comb deeper than INLINE_STACK still evaluates.
        let mut e = Expr::param("x");
        for _ in 0..(INLINE_STACK + 8) {
            e = Expr::param("x") + e;
        }
        let mut t = SymbolTable::new();
        let c = CompiledExpr::compile(&e, &mut t);
        assert!(c.max_stack() > INLINE_STACK);
        let p = t.bind(&Binding::new().with("x", 1));
        assert_eq!(c.eval_closed(&p), Some(INLINE_STACK as i64 + 9));
    }

    /// Arbitrary expression trees over i, j, n, m (mirrors simplify.rs).
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-6i64..7).prop_map(Expr::Const),
            Just(Expr::param("n")),
            Just(Expr::param("m")),
            Just(Expr::var(v(0))),
            Just(Expr::var(v(1))),
        ];
        leaf.prop_recursive(5, 64, 2, |inner| {
            (inner.clone(), inner, 0u8..6).prop_map(|(a, b, op)| {
                let (a, b) = (Box::new(a), Box::new(b));
                match op {
                    0 => Expr::Add(a, b),
                    1 => Expr::Sub(a, b),
                    2 => Expr::Mul(a, b),
                    3 => Expr::Div(a, b),
                    4 => Expr::Min(a, b),
                    _ => Expr::Max(a, b),
                }
            })
        })
    }

    proptest! {
        /// Compiled bytecode is bit-for-bit the tree interpreter, including
        /// partial bindings (unbound → None) and division failures.
        #[test]
        fn compiled_matches_tree(
            e in arb_expr(),
            n in -9i64..10,
            bind_n in 0u8..2,
            m in -9i64..10,
            bind_m in 0u8..2,
            i in -9i64..10,
            j in -9i64..10,
        ) {
            let mut b = Binding::new();
            if bind_n == 1 { b.set("n", n); }
            if bind_m == 1 { b.set("m", m); }
            let vars = |vv: LoopVarId| Some(if vv.0 == 0 { i } else { j });
            let mut t = SymbolTable::new();
            let c = CompiledExpr::compile(&e, &mut t);
            let p = t.bind(&b);
            prop_assert_eq!(c.eval(&p, &vars), e.eval(&b, &vars));
            prop_assert_eq!(c.eval_closed(&p), e.eval_closed(&b));
        }
    }
}
