//! Expression simplification: constant folding and algebraic identities.
//!
//! Symbolic expressions accumulate `x*1`, `x+0` and foldable constants as
//! builders compose them; simplification keeps rendered kernels and stored
//! attribute expressions readable, and is semantics-preserving by
//! construction (verified by property tests against evaluation).

use crate::expr::Expr;

impl Expr {
    /// True if evaluation can never fail with a division error (no `Div`
    /// nodes). Rules that *discard* a subexpression (`x*0 -> 0`, `a-a -> 0`)
    /// may only fire when the discarded side is total, otherwise they would
    /// turn a `None` into a value.
    fn is_total(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => true,
            Expr::Div(_, _) => false,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.is_total() && b.is_total(),
        }
    }
    /// Returns an equivalent, simplified expression: constants folded,
    /// additive/multiplicative identities removed, and `min`/`max` of
    /// equal operands collapsed. Division is folded only when exact
    /// semantics are preserved (both operands constant, divisor non-zero).
    pub fn simplified(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => self.clone(),
            Expr::Add(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_add(*y)),
                    (Expr::Const(0), _) => b,
                    (_, Expr::Const(0)) => a,
                    _ => Expr::Add(Box::new(a), Box::new(b)),
                }
            }
            Expr::Sub(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_sub(*y)),
                    (_, Expr::Const(0)) => a,
                    _ if a == b && a.is_total() => Expr::Const(0),
                    _ => Expr::Sub(Box::new(a), Box::new(b)),
                }
            }
            Expr::Mul(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_mul(*y)),
                    (Expr::Const(0), other) | (other, Expr::Const(0)) if other.is_total() => {
                        Expr::Const(0)
                    }
                    (Expr::Const(1), _) => b,
                    (_, Expr::Const(1)) => a,
                    _ => Expr::Mul(Box::new(a), Box::new(b)),
                }
            }
            Expr::Div(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) if *y != 0 => Expr::Const(x.div_euclid(*y)),
                    (_, Expr::Const(1)) => a,
                    _ => Expr::Div(Box::new(a), Box::new(b)),
                }
            }
            Expr::Min(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) => Expr::Const(*x.min(y)),
                    _ if a == b => a,
                    _ => Expr::Min(Box::new(a), Box::new(b)),
                }
            }
            Expr::Max(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) => Expr::Const(*x.max(y)),
                    _ if a == b => a,
                    _ => Expr::Max(Box::new(a), Box::new(b)),
                }
            }
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => 1,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => 1 + a.size() + b.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Binding;
    use crate::kernel::LoopVarId;
    use proptest::prelude::*;

    #[test]
    fn identities_collapse() {
        let i = Expr::var(LoopVarId(0));
        assert_eq!((i.clone() + Expr::Const(0)).simplified(), i);
        assert_eq!((i.clone() * Expr::Const(1)).simplified(), i);
        assert_eq!((i.clone() * Expr::Const(0)).simplified(), Expr::Const(0));
        assert_eq!((i.clone() - i.clone()).simplified(), Expr::Const(0));
        assert_eq!(
            (Expr::Const(2) * Expr::Const(3) + Expr::Const(4)).simplified(),
            Expr::Const(10)
        );
    }

    #[test]
    fn div_by_zero_is_not_folded() {
        let e = Expr::Div(Box::new(Expr::Const(4)), Box::new(Expr::Const(0)));
        // Stays symbolic (and still evaluates to None).
        assert_eq!(e.simplified(), e);
        assert_eq!(e.simplified().eval_closed(&Binding::new()), None);
    }

    #[test]
    fn min_max_of_self() {
        let n = Expr::param("n");
        assert_eq!(
            Expr::Min(Box::new(n.clone()), Box::new(n.clone())).simplified(),
            n
        );
    }

    /// Arbitrary expression trees over i, j, n.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-6i64..7).prop_map(Expr::Const),
            Just(Expr::param("n")),
            Just(Expr::var(LoopVarId(0))),
            Just(Expr::var(LoopVarId(1))),
        ];
        leaf.prop_recursive(4, 48, 2, |inner| {
            (inner.clone(), inner, 0u8..6).prop_map(|(a, b, op)| {
                let (a, b) = (Box::new(a), Box::new(b));
                match op {
                    0 => Expr::Add(a, b),
                    1 => Expr::Sub(a, b),
                    2 => Expr::Mul(a, b),
                    3 => Expr::Div(a, b),
                    4 => Expr::Min(a, b),
                    _ => Expr::Max(a, b),
                }
            })
        })
    }

    proptest! {
        /// Simplification preserves the value at every point (including the
        /// None of division by zero).
        #[test]
        fn simplify_preserves_semantics(e in arb_expr(), n in -9i64..10, i in -9i64..10, j in -9i64..10) {
            let b = Binding::new().with("n", n);
            let vars = |v: LoopVarId| Some(if v.0 == 0 { i } else { j });
            prop_assert_eq!(e.eval(&b, &vars), e.simplified().eval(&b, &vars));
        }

        /// Simplification never grows the tree and is idempotent.
        #[test]
        fn simplify_shrinks_and_is_idempotent(e in arb_expr()) {
            let s = e.simplified();
            prop_assert!(s.size() <= e.size());
            prop_assert_eq!(s.simplified(), s);
        }
    }
}
