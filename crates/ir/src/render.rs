//! Rendering kernels back to OpenMP C pseudo-code.
//!
//! The IR is a transcription of OpenMP target regions; being able to print
//! a kernel as the C it denotes keeps the transcription auditable (every
//! Polybench kernel can be eyeballed against its source) and makes
//! diagnostic output readable.

use crate::expr::Expr;
use crate::kernel::{CExpr, Kernel, Lhs, Loop, Stmt, Transfer};
use std::fmt::Write;

/// Renders an index/bound expression as C (parameters appear bare).
pub fn expr_to_c(e: &Expr) -> String {
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Param(p) => p.clone(),
        Expr::Var(v) => format!("{v}"),
        Expr::Add(a, b) => format!("({} + {})", expr_to_c(a), expr_to_c(b)),
        Expr::Sub(a, b) => format!("({} - {})", expr_to_c(a), expr_to_c(b)),
        Expr::Mul(a, b) => format!("({} * {})", expr_to_c(a), expr_to_c(b)),
        Expr::Div(a, b) => format!("({} / {})", expr_to_c(a), expr_to_c(b)),
        Expr::Min(a, b) => format!("min({}, {})", expr_to_c(a), expr_to_c(b)),
        Expr::Max(a, b) => format!("max({}, {})", expr_to_c(a), expr_to_c(b)),
    }
}

fn cexpr_to_c(kernel: &Kernel, e: &CExpr, acc_name: &str) -> String {
    match e {
        CExpr::Load(r) => array_ref_to_c(kernel, r),
        CExpr::Scalar(s) => s.clone(),
        CExpr::Lit(v) => format!("{v:?}f"),
        CExpr::Acc => acc_name.to_string(),
        CExpr::Add(a, b) => format!(
            "({} + {})",
            cexpr_to_c(kernel, a, acc_name),
            cexpr_to_c(kernel, b, acc_name)
        ),
        CExpr::Sub(a, b) => format!(
            "({} - {})",
            cexpr_to_c(kernel, a, acc_name),
            cexpr_to_c(kernel, b, acc_name)
        ),
        CExpr::Mul(a, b) => format!(
            "({} * {})",
            cexpr_to_c(kernel, a, acc_name),
            cexpr_to_c(kernel, b, acc_name)
        ),
        CExpr::Div(a, b) => format!(
            "({} / {})",
            cexpr_to_c(kernel, a, acc_name),
            cexpr_to_c(kernel, b, acc_name)
        ),
        CExpr::Sqrt(a) => format!("sqrtf({})", cexpr_to_c(kernel, a, acc_name)),
    }
}

fn array_ref_to_c(kernel: &Kernel, r: &crate::kernel::ArrayRef) -> String {
    let mut s = kernel.array(r.array).name.clone();
    for idx in &r.index {
        write!(s, "[{}]", expr_to_c(idx)).unwrap();
    }
    s
}

fn map_clause(kernel: &Kernel) -> String {
    let mut to = Vec::new();
    let mut from = Vec::new();
    let mut tofrom = Vec::new();
    let mut alloc = Vec::new();
    for a in &kernel.arrays {
        let extent = a
            .extents
            .iter()
            .map(expr_to_c)
            .collect::<Vec<_>>()
            .join("*");
        let item = format!("{}[0:{}]", a.name, extent);
        match a.transfer {
            Transfer::In => to.push(item),
            Transfer::Out => from.push(item),
            Transfer::InOut => tofrom.push(item),
            Transfer::Alloc => alloc.push(item),
        }
    }
    let mut clauses = Vec::new();
    for (kind, items) in [
        ("to", to),
        ("from", from),
        ("tofrom", tofrom),
        ("alloc", alloc),
    ] {
        if !items.is_empty() {
            clauses.push(format!("map({kind}: {})", items.join(", ")));
        }
    }
    clauses.join(" ")
}

fn render_stmts(kernel: &Kernel, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::For(l, body) => {
                render_for(kernel, l, body, indent, out, false);
            }
            Stmt::Assign(a) => {
                let (lhs, acc_name) = match &a.lhs {
                    Lhs::Array(r) => (array_ref_to_c(kernel, r), array_ref_to_c(kernel, r)),
                    Lhs::Acc(name) => (format!("float {name}"), name.clone()),
                };
                // Re-assignments of an accumulator drop the declaration.
                let lhs = if matches!(&a.lhs, Lhs::Acc(_)) && a.rhs.uses_acc() {
                    acc_name.clone()
                } else {
                    lhs
                };
                let _ = writeln!(
                    out,
                    "{pad}{lhs} = {};",
                    cexpr_to_c(kernel, &a.rhs, &acc_name)
                );
            }
        }
    }
}

fn render_for(
    kernel: &Kernel,
    l: &Loop,
    body: &[Stmt],
    indent: usize,
    out: &mut String,
    _in_collapse: bool,
) {
    let pad = "  ".repeat(indent);
    let v = l.var;
    let _ = writeln!(
        out,
        "{pad}for (int {v} = {}; {v} < {}; {v}++) {{",
        expr_to_c(&l.lower),
        expr_to_c(&l.upper)
    );
    render_stmts(kernel, body, indent + 1, out);
    let _ = writeln!(out, "{pad}}}");
}

/// Renders the whole kernel as the OpenMP target region it denotes.
pub fn to_openmp_c(kernel: &Kernel) -> String {
    let mut out = String::new();
    let collapse = kernel.parallel_loops().len();
    let _ = writeln!(out, "// region: {}", kernel.name);
    let collapse_clause = if collapse > 1 {
        format!(" collapse({collapse})")
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "#pragma omp target teams distribute parallel for{collapse_clause} {}",
        map_clause(kernel)
    );
    render_stmts(kernel, &kernel.body, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{cexpr, KernelBuilder};

    fn axpy() -> Kernel {
        let mut kb = KernelBuilder::new("axpy");
        let x = kb.array("x", 4, &["n".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let rhs = cexpr::add(
            cexpr::mul(cexpr::scalar("a"), kb.load(x, &[i.into()])),
            kb.load(y, &[i.into()]),
        );
        kb.store(y, &[i.into()], rhs);
        kb.end_loop();
        kb.finish()
    }

    #[test]
    fn axpy_renders_exactly() {
        let c = to_openmp_c(&axpy());
        let expected = "\
// region: axpy
#pragma omp target teams distribute parallel for map(to: x[0:n]) map(tofrom: y[0:n])
for (int i0 = 0; i0 < n; i0++) {
  y[i0] = ((a * x[i0]) + y[i0]);
}
";
        assert_eq!(c, expected);
    }

    #[test]
    fn reduction_renders_accumulator_declaration_once() {
        let mut kb = KernelBuilder::new("dot");
        let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "n");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let c = to_openmp_c(&kb.finish());
        assert!(c.contains("float s = 0.0f;"));
        assert!(c.contains("s = (s + A[i0][i1]);"));
        assert!(c.contains("y[i0] = s;"));
        // Declared exactly once.
        assert_eq!(c.matches("float s").count(), 1);
    }

    #[test]
    fn collapse_and_bounds_render() {
        let mut kb = KernelBuilder::new("c2");
        let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::InOut);
        let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
        let j = kb.parallel_loop(0, "n");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.store(a, &[i.into(), j.into()], ld);
        kb.end_loop();
        kb.end_loop();
        let c = to_openmp_c(&kb.finish());
        assert!(c.contains("collapse(2)"));
        assert!(c.contains("for (int i0 = 1; i0 < (n - 1); i0++)"));
        assert!(c.contains("map(tofrom: A[0:n*n])"));
    }
}
