//! Trip-count resolution over a whole nest, including triangular loops.
//!
//! Loop bounds may reference outer induction variables (`for j2 = j1+1 .. m`).
//! For cost modelling we need an *average* trip count per loop: this module
//! walks the nest outermost-first, assigning each loop its expected trip
//! count with outer variables fixed at the midpoint of their own ranges —
//! exactly the expectation for affine triangular bounds.

use crate::binding::Binding;
use crate::kernel::{Kernel, Loop, LoopVarId, Stmt};
use std::collections::HashMap;

/// Average trip counts for every loop in a kernel, keyed by loop variable.
#[derive(Debug, Clone, Default)]
pub struct TripCounts {
    counts: HashMap<LoopVarId, f64>,
}

impl TripCounts {
    /// Average trip count of a loop (0 if the loop is unknown or its bounds
    /// were unresolvable).
    pub fn get(&self, v: LoopVarId) -> f64 {
        self.counts.get(&v).copied().unwrap_or(0.0)
    }

    /// Average trip count of a [`Loop`] header.
    pub fn of(&self, l: &Loop) -> f64 {
        self.get(l.var)
    }

    /// Product of the parallel loops' trip counts.
    pub fn parallel_iterations(&self, kernel: &Kernel) -> f64 {
        kernel
            .parallel_loops()
            .iter()
            .map(|l| self.get(l.var))
            .product()
    }
}

/// Resolves average trip counts for all loops of a kernel under a binding.
///
/// Unbound parameters make the affected loops (and their inner loops, if
/// their bounds depend on the outer variable) report 0.
pub fn resolve(kernel: &Kernel, binding: &Binding) -> TripCounts {
    let mut tc = TripCounts::default();
    let mut midpoints: HashMap<LoopVarId, f64> = HashMap::new();
    walk(&kernel.body, binding, &mut tc, &mut midpoints);
    tc
}

fn walk(
    stmts: &[Stmt],
    binding: &Binding,
    tc: &mut TripCounts,
    midpoints: &mut HashMap<LoopVarId, f64>,
) {
    for s in stmts {
        if let Stmt::For(l, body) = s {
            // Evaluate bounds with outer variables at their midpoints. Affine
            // bounds make rounding to i64 safe enough for averaging.
            let outer = |v: LoopVarId| midpoints.get(&v).map(|m| m.round() as i64);
            let lo = l.lower.eval(binding, &outer);
            let hi = l.upper.eval(binding, &outer);
            let (trip, mid) = match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let t = (hi - lo).max(0) as f64;
                    (t, (lo as f64 + hi as f64) / 2.0)
                }
                _ => (0.0, 0.0),
            };
            tc.counts.insert(l.var, trip);
            midpoints.insert(l.var, mid);
            walk(body, binding, tc, midpoints);
            midpoints.remove(&l.var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{cexpr, KernelBuilder};
    use crate::expr::Expr;
    use crate::kernel::Transfer;

    #[test]
    fn rectangular_nest() {
        let mut kb = KernelBuilder::new("rect");
        let a = kb.array("a", 4, &["n".into(), "m".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "m");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.store(a, &[i.into(), j.into()], ld);
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new().with("n", 100).with("m", 40));
        assert_eq!(tc.get(i), 100.0);
        assert_eq!(tc.get(j), 40.0);
        assert_eq!(tc.parallel_iterations(&k), 100.0);
    }

    #[test]
    fn triangular_inner_loop_averages_half() {
        // for j1 in 0..m { for j2 in j1+1..m { ... } }
        let mut kb = KernelBuilder::new("tri");
        let a = kb.array("a", 4, &["m".into(), "m".into()], Transfer::InOut);
        let j1 = kb.parallel_loop(0, "m");
        let j2 = kb.seq_loop(Expr::var(j1) + Expr::Const(1), "m");
        kb.store(a, &[j1.into(), j2.into()], cexpr::lit(0.0));
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new().with("m", 100));
        assert_eq!(tc.get(j1), 100.0);
        // Midpoint of j1 is 50 -> trips = 100 - 51 = 49 ~ m/2.
        assert!((tc.get(j2) - 49.0).abs() < 1.0);
    }

    #[test]
    fn unbound_params_give_zero() {
        let mut kb = KernelBuilder::new("ub");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(0.0));
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new());
        assert_eq!(tc.get(i), 0.0);
    }
}
