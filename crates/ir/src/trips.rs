//! Trip-count resolution over a whole nest, including triangular loops.
//!
//! Loop bounds may reference outer induction variables (`for j2 = j1+1 .. m`).
//! For cost modelling we need an *average* trip count per loop: this module
//! walks the nest outermost-first, assigning each loop its expected trip
//! count with outer variables fixed at the midpoint of their own ranges —
//! exactly the expectation for affine triangular bounds.

use crate::binding::Binding;
use crate::compiled::CompiledExpr;
use crate::kernel::{Kernel, Loop, LoopVarId, Stmt};
use crate::sym::{BoundParams, SymbolTable};
use std::collections::HashMap;

/// Average trip counts for every loop in a kernel, keyed by loop variable.
#[derive(Debug, Clone, Default)]
pub struct TripCounts {
    counts: HashMap<LoopVarId, f64>,
}

impl TripCounts {
    /// Average trip count of a loop (0 if the loop is unknown or its bounds
    /// were unresolvable).
    pub fn get(&self, v: LoopVarId) -> f64 {
        self.counts.get(&v).copied().unwrap_or(0.0)
    }

    /// Average trip count of a [`Loop`] header.
    pub fn of(&self, l: &Loop) -> f64 {
        self.get(l.var)
    }

    /// Product of the parallel loops' trip counts.
    pub fn parallel_iterations(&self, kernel: &Kernel) -> f64 {
        kernel
            .parallel_loops()
            .iter()
            .map(|l| self.get(l.var))
            .product()
    }

    /// Flattens into a dense per-variable view covering `n_vars` slots.
    /// Slots [`TripCounts::get`] would report as 0 stay 0.
    pub fn dense(&self, n_vars: usize) -> TripSlots {
        let mut out = TripSlots::uniform(n_vars, 0.0);
        self.dense_into(n_vars, &mut out);
        out
    }

    /// Like [`TripCounts::dense`], reusing an existing [`TripSlots`]
    /// allocation.
    pub fn dense_into(&self, n_vars: usize, out: &mut TripSlots) {
        out.slots.clear();
        out.slots.resize(n_vars, 0.0);
        for (v, t) in &self.counts {
            if let Some(slot) = out.slots.get_mut(v.0) {
                *slot = *t;
            }
        }
    }
}

/// A dense, integer-indexed view of per-loop trip counts: what the compiled
/// model replay reads instead of hashing [`LoopVarId`]s per loop visit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripSlots {
    slots: Vec<f64>,
}

impl TripSlots {
    /// A view where every one of `n_vars` slots holds `value` (the paper's
    /// assume-128 abstraction is `uniform(n, 128.0)`).
    pub fn uniform(n_vars: usize, value: f64) -> TripSlots {
        TripSlots {
            slots: vec![value; n_vars],
        }
    }

    /// Trip count of a loop variable (0 if out of range), matching
    /// [`TripCounts::get`] on in-range variables.
    #[inline]
    pub fn get(&self, v: LoopVarId) -> f64 {
        self.slots.get(v.0).copied().unwrap_or(0.0)
    }

    /// Trip count of a [`Loop`] header.
    #[inline]
    pub fn of(&self, l: &Loop) -> f64 {
        self.get(l.var)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the view covers no variables.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A kernel's loop nest with bounds pre-lowered to [`CompiledExpr`]
/// bytecode: trip resolution without re-walking `Expr` trees or hashing
/// parameter names.
///
/// [`CompiledTrips::resolve`] reproduces [`resolve`] exactly — same
/// outermost-first walk, same midpoint substitution, same `(0, 0)` fallback
/// for unresolvable bounds — so the resulting [`TripCounts`] are
/// bit-for-bit identical.
#[derive(Debug, Clone, Default)]
pub struct CompiledTrips {
    roots: Vec<CompiledLoop>,
    n_vars: usize,
}

#[derive(Debug, Clone)]
struct CompiledLoop {
    var: LoopVarId,
    lower: CompiledExpr,
    upper: CompiledExpr,
    children: Vec<CompiledLoop>,
}

impl CompiledTrips {
    /// Lowers every loop bound of `kernel`, interning parameters into
    /// `table`.
    pub fn compile(kernel: &Kernel, table: &mut SymbolTable) -> CompiledTrips {
        let mut n_vars = 0usize;
        let roots = compile_level(&kernel.body, table, &mut n_vars);
        CompiledTrips { roots, n_vars }
    }

    /// One more than the largest loop-variable index in the nest: the slot
    /// count a dense per-variable view needs to cover every loop.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Resolves average trip counts under a dense parameter view.
    pub fn resolve(&self, params: &BoundParams) -> TripCounts {
        let mut tc = TripCounts::default();
        let mut midpoints: Vec<Option<f64>> = vec![None; self.n_vars];
        self.walk(&self.roots, params, &mut tc, &mut midpoints);
        tc
    }

    /// Resolves directly into a dense [`TripSlots`] view (missing loops
    /// report 0, as with [`TripCounts::get`]).
    pub fn resolve_slots_into(&self, params: &BoundParams, out: &mut TripSlots) {
        out.slots.clear();
        out.slots.resize(self.n_vars, 0.0);
        let mut midpoints: Vec<Option<f64>> = vec![None; self.n_vars];
        self.walk_slots(&self.roots, params, &mut midpoints, out);
    }

    fn walk(
        &self,
        loops: &[CompiledLoop],
        params: &BoundParams,
        tc: &mut TripCounts,
        midpoints: &mut Vec<Option<f64>>,
    ) {
        for l in loops {
            let (trip, mid) = bounds(l, params, midpoints);
            tc.counts.insert(l.var, trip);
            midpoints[l.var.0] = Some(mid);
            self.walk(&l.children, params, tc, midpoints);
            midpoints[l.var.0] = None;
        }
    }

    fn walk_slots(
        &self,
        loops: &[CompiledLoop],
        params: &BoundParams,
        midpoints: &mut Vec<Option<f64>>,
        out: &mut TripSlots,
    ) {
        for l in loops {
            let (trip, mid) = bounds(l, params, midpoints);
            out.slots[l.var.0] = trip;
            midpoints[l.var.0] = Some(mid);
            self.walk_slots(&l.children, params, midpoints, out);
            midpoints[l.var.0] = None;
        }
    }
}

/// Average trip count and midpoint of one loop, with outer variables at
/// their midpoints — the compiled twin of the bound evaluation in [`walk`].
fn bounds(l: &CompiledLoop, params: &BoundParams, midpoints: &[Option<f64>]) -> (f64, f64) {
    let outer = |v: LoopVarId| {
        midpoints
            .get(v.0)
            .copied()
            .flatten()
            .map(|m| m.round() as i64)
    };
    let lo = l.lower.eval(params, &outer);
    let hi = l.upper.eval(params, &outer);
    match (lo, hi) {
        (Some(lo), Some(hi)) => ((hi - lo).max(0) as f64, (lo as f64 + hi as f64) / 2.0),
        _ => (0.0, 0.0),
    }
}

fn compile_level(stmts: &[Stmt], table: &mut SymbolTable, n_vars: &mut usize) -> Vec<CompiledLoop> {
    let mut out = Vec::new();
    for s in stmts {
        if let Stmt::For(l, body) = s {
            *n_vars = (*n_vars).max(l.var.0 + 1);
            out.push(CompiledLoop {
                var: l.var,
                lower: CompiledExpr::compile(&l.lower, table),
                upper: CompiledExpr::compile(&l.upper, table),
                children: compile_level(body, table, n_vars),
            });
        }
    }
    out
}

/// Resolves average trip counts for all loops of a kernel under a binding.
///
/// Unbound parameters make the affected loops (and their inner loops, if
/// their bounds depend on the outer variable) report 0.
pub fn resolve(kernel: &Kernel, binding: &Binding) -> TripCounts {
    let mut tc = TripCounts::default();
    let mut midpoints: HashMap<LoopVarId, f64> = HashMap::new();
    walk(&kernel.body, binding, &mut tc, &mut midpoints);
    tc
}

fn walk(
    stmts: &[Stmt],
    binding: &Binding,
    tc: &mut TripCounts,
    midpoints: &mut HashMap<LoopVarId, f64>,
) {
    for s in stmts {
        if let Stmt::For(l, body) = s {
            // Evaluate bounds with outer variables at their midpoints. Affine
            // bounds make rounding to i64 safe enough for averaging.
            let outer = |v: LoopVarId| midpoints.get(&v).map(|m| m.round() as i64);
            let lo = l.lower.eval(binding, &outer);
            let hi = l.upper.eval(binding, &outer);
            let (trip, mid) = match (lo, hi) {
                (Some(lo), Some(hi)) => {
                    let t = (hi - lo).max(0) as f64;
                    (t, (lo as f64 + hi as f64) / 2.0)
                }
                _ => (0.0, 0.0),
            };
            tc.counts.insert(l.var, trip);
            midpoints.insert(l.var, mid);
            walk(body, binding, tc, midpoints);
            midpoints.remove(&l.var);
        }
    }
}

crate::snap_struct!(CompiledLoop {
    var,
    lower,
    upper,
    children,
});

crate::snap_struct!(CompiledTrips { roots, n_vars });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{cexpr, KernelBuilder};
    use crate::expr::Expr;
    use crate::kernel::Transfer;

    #[test]
    fn rectangular_nest() {
        let mut kb = KernelBuilder::new("rect");
        let a = kb.array("a", 4, &["n".into(), "m".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        let j = kb.seq_loop(0, "m");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.store(a, &[i.into(), j.into()], ld);
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new().with("n", 100).with("m", 40));
        assert_eq!(tc.get(i), 100.0);
        assert_eq!(tc.get(j), 40.0);
        assert_eq!(tc.parallel_iterations(&k), 100.0);
    }

    #[test]
    fn triangular_inner_loop_averages_half() {
        // for j1 in 0..m { for j2 in j1+1..m { ... } }
        let mut kb = KernelBuilder::new("tri");
        let a = kb.array("a", 4, &["m".into(), "m".into()], Transfer::InOut);
        let j1 = kb.parallel_loop(0, "m");
        let j2 = kb.seq_loop(Expr::var(j1) + Expr::Const(1), "m");
        kb.store(a, &[j1.into(), j2.into()], cexpr::lit(0.0));
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new().with("m", 100));
        assert_eq!(tc.get(j1), 100.0);
        // Midpoint of j1 is 50 -> trips = 100 - 51 = 49 ~ m/2.
        assert!((tc.get(j2) - 49.0).abs() < 1.0);
    }

    #[test]
    fn compiled_trips_match_walk_resolution() {
        // Triangular nest: the compiled resolver must reproduce the tree
        // walk bit-for-bit, including midpoint substitution.
        let mut kb = KernelBuilder::new("tri");
        let a = kb.array("a", 4, &["m".into(), "m".into()], Transfer::InOut);
        let j1 = kb.parallel_loop(0, "m");
        let j2 = kb.seq_loop(Expr::var(j1) + Expr::Const(1), "m");
        kb.store(a, &[j1.into(), j2.into()], cexpr::lit(0.0));
        kb.end_loop();
        kb.end_loop();
        let k = kb.finish();

        let mut table = crate::sym::SymbolTable::new();
        let ct = CompiledTrips::compile(&k, &mut table);
        assert_eq!(ct.n_vars(), 2);
        for binding in [
            Binding::new().with("m", 100),
            Binding::new().with("m", 0),
            Binding::new().with("m", -5),
            Binding::new(),
        ] {
            let reference = resolve(&k, &binding);
            let params = table.bind(&binding);
            let compiled = ct.resolve(&params);
            for v in [j1, j2] {
                assert_eq!(compiled.get(v).to_bits(), reference.get(v).to_bits());
            }
            let mut slots = TripSlots::default();
            ct.resolve_slots_into(&params, &mut slots);
            for v in [j1, j2] {
                assert_eq!(slots.get(v).to_bits(), reference.get(v).to_bits());
            }
        }
    }

    #[test]
    fn dense_view_matches_sparse_counts() {
        let mut kb = KernelBuilder::new("rect");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(0.0));
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new().with("n", 100));
        let slots = tc.dense(1);
        assert_eq!(slots.get(i), tc.get(i));
        assert_eq!(slots.get(LoopVarId(7)), 0.0, "out of range reads as zero");
        assert_eq!(TripSlots::uniform(3, 128.0).get(i), 128.0);
    }

    #[test]
    fn unbound_params_give_zero() {
        let mut kb = KernelBuilder::new("ub");
        let a = kb.array("a", 4, &["n".into()], Transfer::InOut);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(0.0));
        kb.end_loop();
        let k = kb.finish();
        let tc = resolve(&k, &Binding::new());
        assert_eq!(tc.get(i), 0.0);
    }
}
