//! Property tests for the symbolic polynomial and affine algebra: the ring
//! laws hold semantically (checked through evaluation), and the canonical
//! form makes semantic equality structural.

use hetsel_ir::{Binding, Poly};
use proptest::prelude::*;

/// A random polynomial over parameters {x, y} with small coefficients:
/// c0 + c1·x + c2·y + c3·x·y + c4·x².
#[derive(Debug, Clone, Copy)]
struct P5([i64; 5]);

impl P5 {
    fn poly(&self) -> Poly {
        let x = Poly::param("x");
        let y = Poly::param("y");
        let [c0, c1, c2, c3, c4] = self.0;
        Poly::constant(c0) + x.scale(c1) + y.scale(c2) + (&x * &y).scale(c3) + (&x * &x).scale(c4)
    }

    fn eval(&self, x: i64, y: i64) -> i64 {
        let [c0, c1, c2, c3, c4] = self.0;
        c0 + c1 * x + c2 * y + c3 * x * y + c4 * x * x
    }
}

fn p5() -> impl Strategy<Value = P5> {
    prop::array::uniform5(-20i64..21).prop_map(P5)
}

fn binding(x: i64, y: i64) -> Binding {
    Binding::new().with("x", x).with("y", y)
}

proptest! {
    #[test]
    fn construction_matches_direct_evaluation(a in p5(), x in -50i64..50, y in -50i64..50) {
        let b = binding(x, y);
        prop_assert_eq!(a.poly().eval(&b), Some(a.eval(x, y)));
    }

    #[test]
    fn addition_is_commutative_and_canonical(a in p5(), c in p5()) {
        let (pa, pc) = (a.poly(), c.poly());
        // Canonical form: structural equality of both orders.
        prop_assert_eq!(&pa + &pc, &pc + &pa);
    }

    #[test]
    fn multiplication_distributes(a in p5(), c in p5(), d in p5(), x in -9i64..10, y in -9i64..10) {
        let (pa, pc, pd) = (a.poly(), c.poly(), d.poly());
        let lhs = &pa * &(&pc + &pd);
        let rhs = &(&pa * &pc) + &(&pa * &pd);
        prop_assert_eq!(lhs.clone(), rhs);
        let b = binding(x, y);
        prop_assert_eq!(lhs.eval(&b), Some(a.eval(x, y) * (c.eval(x, y) + d.eval(x, y))));
    }

    #[test]
    fn subtraction_of_self_is_zero(a in p5()) {
        let p = a.poly();
        let z = &p - &p;
        prop_assert!(z.is_zero());
        prop_assert_eq!(z.as_const(), Some(0));
    }

    #[test]
    fn scale_matches_repeated_addition(a in p5(), k in 0i64..6, x in -9i64..10, y in -9i64..10) {
        let p = a.poly();
        let mut sum = Poly::zero();
        for _ in 0..k {
            sum = &sum + &p;
        }
        prop_assert_eq!(p.scale(k), sum);
        let b = binding(x, y);
        prop_assert_eq!(p.scale(k).eval(&b), Some(k * a.eval(x, y)));
    }

    #[test]
    fn degree_of_product_adds(a in p5(), c in p5()) {
        let (pa, pc) = (a.poly(), c.poly());
        let prod = &pa * &pc;
        if !pa.is_zero() && !pc.is_zero() {
            prop_assert_eq!(prod.degree(), pa.degree() + pc.degree());
        } else {
            prop_assert!(prod.is_zero());
        }
    }

    #[test]
    fn display_round_trips_semantics(a in p5(), x in -5i64..6, y in -5i64..6) {
        // Display is deterministic and distinct polynomials with distinct
        // values display distinctly at the evaluation point.
        let p = a.poly();
        let s1 = format!("{p}");
        let s2 = format!("{}", a.poly());
        prop_assert_eq!(s1, s2);
        let _ = binding(x, y);
    }
}
