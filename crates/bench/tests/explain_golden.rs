//! Golden-file contract test for the `explain --json` schema.
//!
//! The serialized [`Explanation`] for `gemm` (test dataset, POWER9+V100)
//! is compared byte-for-byte against `tests/golden/explain_gemm.json`.
//! Everything in the document is deterministic — model terms, bindings,
//! device, margin — except the phase timings and the cache flag, which are
//! normalized before comparison. A schema change (renamed field, different
//! float formatting, reordered keys) fails this test and forces the golden
//! file, DESIGN.md and any downstream consumer to move together.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! HETSEL_UPDATE_GOLDEN=1 cargo test -p hetsel-bench --test explain_golden
//! ```

use hetsel_core::{
    validate_report_json, DecisionEngine, ExplainReport, Explanation, PhaseTimings, Platform,
    Selector,
};
use hetsel_polybench::{find_kernel, Dataset};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/explain_gemm.json")
}

/// Produces the gemm explanation with the nondeterministic fields pinned.
fn normalized_gemm_explanation() -> Explanation {
    let (kernel, binding) = find_kernel("gemm").expect("gemm is in the suite");
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
    );
    let mut e = engine
        .explain("gemm", &binding(Dataset::Test))
        .expect("gemm is in the database");
    e.timings = PhaseTimings {
        compile_ns: None,
        cpu_eval_ns: 0,
        gpu_eval_ns: 0,
        total_ns: 0,
    };
    e.cached = false;
    e
}

#[test]
fn explain_json_for_gemm_matches_the_golden_file() {
    let report = ExplainReport {
        platform: "POWER9+V100".to_string(),
        dataset: "test".to_string(),
        explanations: vec![normalized_gemm_explanation()],
    };
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );

    let path = golden_path();
    if std::env::var_os("HETSEL_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden file updated: {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with HETSEL_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "explain --json output drifted from the golden file; if the schema \
         change is intentional, update DESIGN.md §Observability and \
         regenerate with HETSEL_UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_round_trips_and_validates() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    // The committed document must satisfy the same contract CI enforces on
    // live `explain --json` output...
    let report = validate_report_json(&golden).expect("golden file validates");
    // ...and survive a full parse → serialize → parse round trip.
    let again = serde_json::to_string_pretty(&report).unwrap();
    let back: ExplainReport = serde_json::from_str(&again).unwrap();
    assert_eq!(report, back);

    let e = &report.explanations[0];
    assert_eq!(e.region, "gemm");
    let gpu = e.gpu.as_ref().expect("gemm resolves on the gpu model");
    assert!(gpu.mwp > 0.0 && gpu.cwp > 0.0);
    assert!(e.cpu.is_some());
}
