//! Benchmarks the timing simulators themselves (the evaluation substrate):
//! a full CPU profile+simulate and a full GPU characterise+simulate per
//! kernel launch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsel_polybench::{find_kernel, Dataset};
use std::hint::black_box;

fn cpu_simulator(c: &mut Criterion) {
    let cpu = hetsel_cpusim::power9_host();
    let mut group = c.benchmark_group("cpusim_simulate");
    group.sample_size(10);
    for name in ["gemm", "2dconv", "atax.k1"] {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Test);
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |bench, k| {
            bench.iter(|| black_box(hetsel_cpusim::simulate(black_box(k), &b, &cpu, 160)));
        });
    }
    group.finish();
}

fn gpu_simulator(c: &mut Criterion) {
    let gpu = hetsel_gpusim::tesla_v100();
    let mut group = c.benchmark_group("gpusim_simulate");
    for name in ["gemm", "2dconv", "atax.k1"] {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Test);
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |bench, k| {
            bench.iter(|| black_box(hetsel_gpusim::simulate(black_box(k), &b, &gpu)));
        });
    }
    group.finish();
}

criterion_group!(benches, cpu_simulator, gpu_simulator);
criterion_main!(benches);
