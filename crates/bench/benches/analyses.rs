//! Benchmarks the static-analysis components: IPDA stride analysis, the
//! MCA lowering + scheduling engine, and instruction-loadout counting.
//! These run at compile time in the paper's framework, but their throughput
//! still matters for large translation units.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsel_polybench::{all_kernels, find_kernel};
use std::hint::black_box;

fn ipda_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipda_analyze");
    for name in ["gemm", "3dconv", "corr.corr"] {
        let (kernel, _) = find_kernel(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |b, k| {
            b.iter(|| black_box(hetsel_ipda::analyze(black_box(k))));
        });
    }
    group.finish();

    c.bench_function("ipda_analyze_whole_suite", |b| {
        let kernels: Vec<_> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
        b.iter(|| {
            for k in &kernels {
                black_box(hetsel_ipda::analyze(k));
            }
        });
    });
}

fn mca_engine(c: &mut Criterion) {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let bnd = binding(hetsel_polybench::Dataset::Test);
    let core = hetsel_mca::power9();
    let tc = hetsel_ir::trips::resolve(&kernel, &bnd);
    c.bench_function("mca_parallel_iter_cycles", |b| {
        b.iter(|| {
            black_box(hetsel_mca::parallel_iter_cycles(
                black_box(&kernel),
                &core,
                &|l| tc.of(l),
                None,
            ))
        });
    });
    c.bench_function("mca_loadout", |b| {
        b.iter(|| {
            black_box(hetsel_mca::loadout(
                black_box(&kernel),
                &hetsel_mca::assume_128,
            ))
        });
    });
}

fn warp_math(c: &mut Criterion) {
    c.bench_function("transactions_per_warp_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for s in 0..512i64 {
                acc = acc.wrapping_add(hetsel_ipda::transactions_per_warp(black_box(s), 4, 32));
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, ipda_analysis, mca_engine, warp_math);
criterion_main!(benches);
