//! Benchmarks the paper's "negligible decision time" claim: evaluating both
//! analytical models and choosing a device is "equivalent to solving an
//! equation" — it must cost microseconds against kernels that run for
//! milliseconds to minutes, in stark contrast to ML inference at runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsel_core::{AttributeDatabase, DecisionEngine, Platform, Selector};
use hetsel_ir::{CompiledKernel, CompiledTrips, SymbolTable};
use hetsel_polybench::{find_kernel, Dataset};
use std::hint::black_box;

fn decision_latency(c: &mut Criterion) {
    let sel = Selector::new(Platform::power9_v100());
    let mut group = c.benchmark_group("selector_decision");
    for name in ["gemm", "atax.k2", "3dconv", "corr.corr"] {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Benchmark);
        group.bench_with_input(BenchmarkId::from_parameter(name), &kernel, |bench, k| {
            bench.iter(|| black_box(sel.decide(black_box(k), black_box(&b))));
        });
    }
    group.finish();
}

fn model_halves(c: &mut Criterion) {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let cm = hetsel_models::power9_params();
    let gm = hetsel_models::v100_params();
    c.bench_function("cpu_model_predict", |bench| {
        bench.iter(|| {
            black_box(hetsel_models::cpu::predict(
                black_box(&kernel),
                &b,
                &cm,
                160,
                hetsel_models::TripMode::Runtime,
            ))
        });
    });
    c.bench_function("gpu_model_predict", |bench| {
        bench.iter(|| {
            black_box(hetsel_models::gpu::predict(
                black_box(&kernel),
                &b,
                &gm,
                hetsel_models::TripMode::Runtime,
                hetsel_models::CoalescingMode::Ipda,
            ))
        });
    });
}

/// The compile-once split on `gemm`: a cold decision recompiles both models
/// every time; a warm decision evaluates the precompiled attribute-database
/// entry; a cache hit replays a memoized decision. The paper's architecture
/// demands warm ≪ cold, and the LRU cache buys another order below warm.
fn compile_once_paths(c: &mut Criterion) {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let sel = Selector::new(Platform::power9_v100());

    let mut group = c.benchmark_group("gemm_decision_paths");
    group.bench_function("cold_compile_and_predict", |bench| {
        bench.iter(|| black_box(sel.decide(black_box(&kernel), black_box(&b))));
    });

    let db = AttributeDatabase::compile(std::slice::from_ref(&kernel), &sel);
    let region = db.region("gemm").unwrap();
    group.bench_function("warm_evaluate", |bench| {
        bench.iter(|| black_box(sel.decide(black_box(region), black_box(&b))));
    });

    let engine =
        DecisionEngine::from_database(Selector::new(Platform::power9_v100()), db.clone(), 64);
    let _prime = engine.decide("gemm", &b);
    group.bench_function("cache_hit", |bench| {
        bench.iter(|| black_box(engine.decide(black_box("gemm"), black_box(&b))));
    });
    group.finish();
}

/// Cache hit versus forced miss on the engine, and the compiled-vs-tree
/// split on the expression layer underneath: the tree-walking `Expr::eval`
/// entry points (`Kernel::parallel_iterations`, transfer footprints, trip
/// resolution) against their postfix-bytecode twins on identical inputs.
fn hit_miss_and_compiled_vs_tree(c: &mut Criterion) {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);

    let mut group = c.benchmark_group("decision_cache");
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
    );
    engine.decide("gemm", &b);
    group.bench_function("hit", |bench| {
        bench.iter(|| black_box(engine.decide(black_box("gemm"), black_box(&b))));
    });
    // Forced miss: rotate one extent so every decide sees a fresh key; the
    // capacity-64 LRU evicts any previous sighting long before it cycles.
    let miss_engine = DecisionEngine::with_capacity(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
        64,
    );
    let mut mb = b.clone();
    let mut n = 0i64;
    group.bench_function("miss", |bench| {
        bench.iter(|| {
            n += 1;
            mb.set("n", 1024 + (n % 1_000_000));
            black_box(miss_engine.decide(black_box("gemm"), black_box(&mb)))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("compiled_vs_tree");
    let mut table = SymbolTable::new();
    let facts = CompiledKernel::compile(&kernel, &mut table);
    let ctrips = CompiledTrips::compile(&kernel, &mut table);
    let bound = table.bind(&b);
    group.bench_function("tree_kernel_facts", |bench| {
        bench.iter(|| {
            black_box(kernel.parallel_iterations(black_box(&b)));
            black_box(kernel.bytes_to_device(&b));
            black_box(kernel.bytes_from_device(&b))
        });
    });
    group.bench_function("compiled_kernel_facts", |bench| {
        bench.iter(|| {
            black_box(facts.parallel_iterations(black_box(&bound)));
            black_box(facts.bytes_to_device(&bound));
            black_box(facts.bytes_from_device(&bound))
        });
    });
    group.bench_function("tree_trip_resolve", |bench| {
        bench.iter(|| black_box(hetsel_ir::trips::resolve(black_box(&kernel), &b)));
    });
    group.bench_function("compiled_trip_resolve", |bench| {
        bench.iter(|| black_box(ctrips.resolve(black_box(&bound))));
    });
    group.finish();
}

criterion_group!(
    benches,
    decision_latency,
    model_halves,
    compile_once_paths,
    hit_miss_and_compiled_vs_tree
);
criterion_main!(benches);
