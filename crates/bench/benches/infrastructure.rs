//! Benchmarks for the infrastructure pieces: the IR interpreter (semantic
//! reference), the OpenMP-C renderer, the synthetic-kernel generator, and
//! the attribute-database compilation step.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsel_core::{AttributeDatabase, Platform, Selector};
use hetsel_ir::{execute, synth, to_openmp_c, Binding, Env};
use hetsel_polybench::{all_kernels, find_kernel};
use std::hint::black_box;

fn interpreter(c: &mut Criterion) {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let n = 48usize;
    let b = Binding::new().with("n", n as i64);
    c.bench_function("interp_gemm_48", |bench| {
        bench.iter(|| {
            let mut env = Env::new()
                .buffer("A", vec![1.0; n * n])
                .buffer("B", vec![2.0; n * n])
                .buffer("C", vec![0.5; n * n])
                .scalar("alpha", 1.5)
                .scalar("beta", 0.5);
            execute(&kernel, &b, &mut env).unwrap();
            black_box(env.buffers["C"][0])
        });
    });
}

fn renderer(c: &mut Criterion) {
    let kernels: Vec<_> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
    c.bench_function("render_whole_suite", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for k in &kernels {
                total += to_openmp_c(black_box(k)).len();
            }
            black_box(total)
        });
    });
}

fn synthesis(c: &mut Criterion) {
    c.bench_function("synth_generate_100", |bench| {
        bench.iter(|| {
            let mut acc = 0usize;
            for seed in 0..100u64 {
                acc += synth::generate(black_box(seed)).kernel.arrays.len();
            }
            black_box(acc)
        });
    });
}

fn attribute_db(c: &mut Criterion) {
    let kernels: Vec<_> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
    let sel = Selector::new(Platform::power9_v100());
    c.bench_function("attribute_db_compile_suite", |bench| {
        bench.iter(|| black_box(AttributeDatabase::compile(black_box(&kernels), &sel)));
    });
}

criterion_group!(benches, interpreter, renderer, synthesis, attribute_db);
criterion_main!(benches);
