//! Contention benchmark for the sharded decision cache.
//!
//! The acceptance bar: with 8 threads on a 95%-hit workload, the sharded
//! engine must deliver ≥3× the throughput of the single-mutex baseline.
//! One benchmark "iteration" is a full round — 8 threads each taking
//! `OPS_PER_THREAD` decisions — so the reported per-iter times of
//! `sharded16` and `single_mutex` compare directly (same total work), and
//! the harness prints the throughput ratio at the end.
//!
//! The ratio is meaningful only where threads actually run in parallel:
//! on a single-core host every workload is hardware-serialized, lock
//! contention never materializes, and the ratio degenerates to ~1×. The
//! harness prints the detected parallelism next to the ratio so a
//! single-core reading is not mistaken for a regression.
//!
//! Workload: 95% of decisions walk a shared hot set that fits the cache
//! (hits after warm-up); 5% walk a cold sequence much longer than the
//! capacity, so it always misses and exercises insert + eviction under
//! contention.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsel_core::{
    AttributeDatabase, DecisionEngine, DecisionRequest, Platform, Selector, DEFAULT_DECISION_SHARDS,
};
use hetsel_ir::Binding;
use hetsel_polybench::find_kernel;
use std::hint::black_box;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 4000;
const HOT_KEYS: usize = 64;
const CAPACITY: usize = 4096;

fn engine_with_shards(shards: usize) -> DecisionEngine {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let sel = Selector::new(Platform::power9_v100());
    let db = AttributeDatabase::compile(std::slice::from_ref(&kernel), &sel);
    DecisionEngine::from_database_sharded(sel, db, CAPACITY, shards)
}

/// One full round: 8 threads, each `OPS_PER_THREAD` decisions, 95% from
/// the hot set. `cold` hands out a fresh never-seen key per miss so the 5%
/// stays a miss across benchmark iterations.
fn hammer_round(engine: &DecisionEngine, cold: &AtomicI64) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let mut binding = Binding::new();
                for i in 0..OPS_PER_THREAD {
                    let n = if i % 20 == 19 {
                        cold.fetch_add(1, Ordering::Relaxed)
                    } else {
                        (1 + (t * 7 + i) % HOT_KEYS) as i64
                    };
                    binding.set("n", n);
                    black_box(engine.decide("gemm", &binding));
                }
            });
        }
    });
}

/// Warm the hot set so steady-state rounds run at the intended 95% hit
/// rate from the first measured iteration.
fn warm(engine: &DecisionEngine) {
    let mut binding = Binding::new();
    for n in 1..=HOT_KEYS as i64 {
        binding.set("n", n);
        engine.decide("gemm", &binding);
    }
}

fn contended_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_decide_8t_95hit");

    let sharded = engine_with_shards(DEFAULT_DECISION_SHARDS);
    warm(&sharded);
    let cold = AtomicI64::new(1_000_000);
    let t0 = Instant::now();
    hammer_round(&sharded, &cold);
    let sharded_round = t0.elapsed();
    group.bench_function("sharded16", |b| {
        b.iter(|| hammer_round(&sharded, &cold));
    });

    let single = engine_with_shards(1);
    warm(&single);
    let t0 = Instant::now();
    hammer_round(&single, &cold);
    let single_round = t0.elapsed();
    group.bench_function("single_mutex", |b| {
        b.iter(|| hammer_round(&single, &cold));
    });
    group.finish();

    let ops = (THREADS * OPS_PER_THREAD) as f64;
    let sharded_tput = ops / sharded_round.as_secs_f64();
    let single_tput = ops / single_round.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "contention: sharded16 {:.2} Mops/s vs single_mutex {:.2} Mops/s — {:.1}x \
         ({THREADS} threads on {cores} core{})",
        sharded_tput / 1e6,
        single_tput / 1e6,
        sharded_tput / single_tput,
        if cores == 1 {
            "; serialized, ratio not meaningful"
        } else {
            "s"
        }
    );
    let stats = sharded.stats();
    println!(
        "contention: sharded engine stats hits={} misses={} len={}/{} evictions={} shards={}",
        stats.hits, stats.misses, stats.len, stats.capacity, stats.evictions, stats.shards
    );
}

/// The batched entry point against the same workload shape: one
/// `decide_batch` per round per thread, grouped by shard internally.
fn batched_decide(c: &mut Criterion) {
    let engine = engine_with_shards(DEFAULT_DECISION_SHARDS);
    warm(&engine);
    let bindings: Vec<Binding> = (1..=HOT_KEYS as i64)
        .map(|n| Binding::new().with("n", n))
        .collect();
    c.bench_function("decide_batch_64_hot", |b| {
        b.iter(|| {
            let requests: Vec<DecisionRequest> = bindings
                .iter()
                .map(|bind| DecisionRequest::new("gemm", bind.clone()))
                .collect();
            black_box(engine.decide_batch(&requests))
        });
    });
}

criterion_group!(benches, contended_decide, batched_decide);
criterion_main!(benches);
