//! Benchmarks the real (rayon) host implementations of representative
//! Polybench programs — the executable half of the suite, at a laptop-safe
//! input size.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsel_polybench::data::{poly_mat, poly_mat_alt, poly_vec};
use std::hint::black_box;

const N: usize = 256;

fn matrix_kernels(c: &mut Criterion) {
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    c.bench_function("gemm_par_256", |bench| {
        bench.iter(|| {
            let mut out = poly_mat(N, N);
            hetsel_polybench::gemm::run_par(N, 1.2, 0.8, &a, &b, &mut out);
            black_box(out)
        });
    });
    c.bench_function("gemm_seq_256", |bench| {
        bench.iter(|| {
            let mut out = poly_mat(N, N);
            hetsel_polybench::gemm::run_seq(N, 1.2, 0.8, &a, &b, &mut out);
            black_box(out)
        });
    });
    c.bench_function("syrk_par_256", |bench| {
        bench.iter(|| {
            let mut out = poly_mat(N, N);
            hetsel_polybench::syrk::run_par(N, 1.2, 0.8, &a, &mut out);
            black_box(out)
        });
    });
}

fn vector_kernels(c: &mut Criterion) {
    let a = poly_mat(N, N);
    let x = poly_vec(N);
    c.bench_function("atax_par_256", |bench| {
        bench.iter(|| black_box(hetsel_polybench::atax::run_par(N, &a, &x)));
    });
    c.bench_function("conv2d_par_256", |bench| {
        bench.iter(|| black_box(hetsel_polybench::conv2d::run_par(N, &a)));
    });
}

fn stats_kernels(c: &mut Criterion) {
    c.bench_function("corr_par_192", |bench| {
        bench.iter(|| {
            let mut d = poly_mat_alt(192, 192);
            black_box(hetsel_polybench::corr::run_par(192, 192, &mut d))
        });
    });
}

criterion_group!(benches, matrix_kernels, vector_kernels, stats_kernels);
criterion_main!(benches);
