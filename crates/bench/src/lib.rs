//! # hetsel-bench — the experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation. Each artifact has a binary:
//!
//! | artifact | binary | paper reference |
//! |---|---|---|
//! | Table I   | `table1` | cross-generation offloading speedups |
//! | Tables II–III | `params` | model parameter sheets |
//! | Figure 6  | `fig6` | actual vs predicted speedup, `test`, 4 threads |
//! | Figure 7  | `fig7` | actual vs predicted speedup, `benchmark`, 4 threads |
//! | Figure 8  | `fig8` | always-offload vs model-driven, 160 threads |
//! | §IV.C     | `ipda_report` | symbolic stride census over the suite |
//! | ablations | `ablation` | trip-count & coalescing abstraction studies |
//!
//! Extension studies (beyond the paper): `generations` (K80→P100→V100
//! continuum), `hosts` (POWER9/NVLink vs Xeon/PCIe), `extended` (six more
//! Polybench programs), `split_study` (cooperative CPU+GPU fractions),
//! `program_study` (data-residency planning), `threads` (host-thread
//! sweep), `export_json` (the whole evaluation as JSON), and `analyze`
//! (the full diagnostic stack for one kernel).

use hetsel_core::{geomean, Device, Measured, Platform, Policy, Selector};
use hetsel_models::{CoalescingMode, TripMode};
use hetsel_polybench::{all_kernels, Dataset};

/// One kernel's full model-vs-actual record on one platform and dataset.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Owning benchmark (paper name).
    pub benchmark: &'static str,
    /// Region name.
    pub kernel: String,
    /// Dataset mode.
    pub dataset: Dataset,
    /// Simulated ground truth.
    pub measured: Measured,
    /// Model predictions, seconds.
    pub predicted_cpu_s: Option<f64>,
    /// Model predictions, seconds.
    pub predicted_gpu_s: Option<f64>,
    /// Model-driven device choice.
    pub decision: Device,
}

impl KernelResult {
    /// True (simulated) offloading speedup: host time / GPU time. The
    /// simulators always produce positive times for suite kernels; a
    /// degenerate measurement surfaces as NaN rather than a panic so table
    /// generation keeps going.
    pub fn actual_speedup(&self) -> f64 {
        self.measured.speedup().unwrap_or(f64::NAN)
    }

    /// Predicted offloading speedup.
    pub fn predicted_speedup(&self) -> Option<f64> {
        match (self.predicted_cpu_s, self.predicted_gpu_s) {
            (Some(c), Some(g)) if g > 0.0 => Some(c / g),
            _ => None,
        }
    }

    /// True iff the model's decision matches the oracle.
    pub fn decision_correct(&self) -> bool {
        self.decision == self.measured.best_device()
    }
}

/// Runs the entire suite on a platform and dataset under a selector
/// configuration, producing one record per kernel.
pub fn run_suite(platform: &Platform, ds: Dataset, selector: &Selector) -> Vec<KernelResult> {
    let mut out = Vec::new();
    for (bench, kernel, binding) in all_kernels() {
        let b = binding(ds);
        let decision = selector.decide(&kernel, &b);
        let measured = selector
            .measure(&kernel, &b)
            .unwrap_or_else(|| panic!("{}: simulators failed under {ds}", kernel.name));
        out.push(KernelResult {
            benchmark: bench,
            kernel: kernel.name.clone(),
            dataset: ds,
            measured,
            predicted_cpu_s: decision.predicted_cpu_s,
            predicted_gpu_s: decision.predicted_gpu_s,
            decision: decision.device,
        });
    }
    let _ = platform;
    out
}

/// Convenience: a model-driven selector with the paper's hybrid defaults.
pub fn paper_selector(platform: Platform) -> Selector {
    Selector::new(platform)
        .with_trip_mode(TripMode::Runtime)
        .with_coalescing(CoalescingMode::Ipda)
}

/// Suite-level aggregate for one policy (Figure 8's bars).
#[derive(Debug, Clone, Copy)]
pub struct PolicyOutcome {
    /// Geometric-mean speedup over always-host across the suite.
    pub geomean_speedup: f64,
    /// Kernels on which the policy matched the oracle.
    pub correct_decisions: usize,
    /// Total kernels.
    pub total: usize,
}

/// Evaluates a policy over suite results: speedup of each kernel relative
/// to host execution under the policy's device choices.
pub fn policy_outcome(results: &[KernelResult], policy: Policy) -> PolicyOutcome {
    let mut speedups = Vec::with_capacity(results.len());
    let mut correct = 0usize;
    for r in results {
        let chosen = match policy {
            Policy::AlwaysHost => Device::Host,
            Policy::AlwaysOffload => Device::Gpu,
            // `Policy` is non-exhaustive; any future policy scores the
            // model's own choice.
            _ => r.decision,
        };
        if chosen == r.measured.best_device() {
            correct += 1;
        }
        speedups.push(r.measured.cpu_s / r.measured.on(chosen));
    }
    PolicyOutcome {
        geomean_speedup: geomean(speedups),
        correct_decisions: correct,
        total: results.len(),
    }
}

/// Appends a tagged snapshot of the process-wide metrics registry to
/// `results/metrics.jsonl` (one JSON object per line: `{"tag", "metrics"}`),
/// creating the file on first use. Harness binaries call this on exit so a
/// run's counters — decisions per device, cache hit rates, fallback
/// reasons, model-evaluation latencies — land next to the artifact they
/// explain. The destination can be overridden with the
/// `HETSEL_METRICS_PATH` environment variable — an escape hatch for the
/// single-threaded binaries only; tests pass an explicit path to
/// [`metrics_dump_to`] instead. Returns the path written.
pub fn metrics_dump(tag: &str) -> std::io::Result<std::path::PathBuf> {
    let path = match std::env::var_os("HETSEL_METRICS_PATH") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/metrics.jsonl")
        }
    };
    metrics_dump_to(&path, tag)
}

/// As [`metrics_dump`] to an explicit destination, with no environment
/// consulted. Tests use this directly: mutating `HETSEL_METRICS_PATH` via
/// `std::env::set_var` races against Rust's parallel test threads (the
/// variable is process-global), so the env override is reserved for the
/// single-threaded harness binaries.
pub fn metrics_dump_to(
    path: impl AsRef<std::path::Path>,
    tag: &str,
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tag_json = serde_json::to_string(&tag.to_string())
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let line = format!(
        "{{\"tag\":{tag_json},\"metrics\":{}}}\n",
        hetsel_obs::registry().snapshot().to_json()
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    Ok(path.to_path_buf())
}

/// Formats seconds compactly (µs/ms/s).
pub fn fmt_time(s: f64) -> String {
    if s < 1e-3 {
        format!("{:7.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:7.2}ms", s * 1e3)
    } else {
        format!("{:8.3}s", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_on_mini() {
        let platform = Platform::power9_v100();
        let sel = paper_selector(platform.clone());
        let results = run_suite(&platform, Dataset::Mini, &sel);
        assert_eq!(results.len(), 24);
        for r in &results {
            assert!(r.measured.cpu_s > 0.0);
            assert!(r.measured.gpu_s > 0.0);
        }
    }

    #[test]
    fn policy_outcomes_ordered() {
        let platform = Platform::power9_v100();
        let sel = paper_selector(platform.clone());
        let results = run_suite(&platform, Dataset::Mini, &sel);
        let host = policy_outcome(&results, Policy::AlwaysHost);
        assert!((host.geomean_speedup - 1.0).abs() < 1e-9);
        let model = policy_outcome(&results, Policy::ModelDriven);
        let offload = policy_outcome(&results, Policy::AlwaysOffload);
        // The oracle bound: no policy beats picking best everywhere.
        let oracle = geomean(
            results
                .iter()
                .map(|r| r.measured.cpu_s / r.measured.on(r.measured.best_device())),
        );
        assert!(model.geomean_speedup <= oracle + 1e-9);
        assert!(offload.geomean_speedup <= oracle + 1e-9);
    }

    #[test]
    fn metrics_dump_appends_parseable_lines() {
        // The explicit-path variant: no process-global environment mutation,
        // so this is safe under Rust's parallel test threads.
        let path =
            std::env::temp_dir().join(format!("hetsel-metrics-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        hetsel_obs::registry()
            .counter("hetsel.bench.test.dump")
            .inc();
        let p1 = metrics_dump_to(&path, "first").unwrap();
        let p2 = metrics_dump_to(&path, "second").unwrap();
        assert_eq!(p1, p2);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "one line per dump");
        assert!(lines[0].contains("\"tag\":\"first\""));
        assert!(lines[1].contains("\"tag\":\"second\""));
        assert!(lines[1].contains("hetsel.bench.test.dump"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fmt_time_ranges() {
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains('s'));
    }
}
