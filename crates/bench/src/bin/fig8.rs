//! Regenerates **Figure 8**: suite speedups under the compiler's default
//! always-offload policy versus the model-driven selection policy, against
//! the 160-thread host, for both execution modes.
//!
//! Paper headline: always-offload achieves geometric-mean speedups of
//! 10.2× (`test`) and 2.9× (`benchmark`); switching the runtime to the
//! analytical models raises these to 14.2× and 3.7×.

use hetsel_bench::{paper_selector, policy_outcome, run_suite};
use hetsel_core::{Platform, Policy};
use hetsel_polybench::Dataset;

fn main() {
    let platform = Platform::power9_v100();
    println!(
        "Figure 8 — policy comparison on {} ({} host threads)\n",
        platform.name, platform.host_threads
    );
    for ds in Dataset::paper_modes() {
        let sel = paper_selector(platform.clone());
        let results = run_suite(&platform, ds, &sel);

        println!("== {ds} mode ==");
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>12} {:>8}",
            "kernel", "offload", "selected", "pred-spdup", "true-spdup", "correct"
        );
        for r in &results {
            println!(
                "{:<14} {:>9.2}x {:>10} {:>11} {:>11.2}x {:>8}",
                r.kernel,
                r.actual_speedup(),
                format!("{}", r.decision),
                r.predicted_speedup()
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
                r.actual_speedup(),
                if r.decision_correct() { "yes" } else { "NO" },
            );
        }
        let offload = policy_outcome(&results, Policy::AlwaysOffload);
        let model = policy_outcome(&results, Policy::ModelDriven);
        let oracle_geo = hetsel_core::geomean(
            results
                .iter()
                .map(|r| r.measured.cpu_s / r.measured.cpu_s.min(r.measured.gpu_s)),
        );
        println!("\n{ds} geomean speedup vs always-host:");
        println!(
            "  always-offload : {:>6.2}x   (paper: {})",
            offload.geomean_speedup,
            if ds == Dataset::Test { "10.2x" } else { "2.9x" }
        );
        println!(
            "  model-driven   : {:>6.2}x   (paper: {})  [{} / {} decisions correct]",
            model.geomean_speedup,
            if ds == Dataset::Test { "14.2x" } else { "3.7x" },
            model.correct_decisions,
            model.total
        );
        println!("  oracle         : {oracle_geo:>6.2}x\n");
    }
    if let Ok(path) = hetsel_bench::metrics_dump("fig8") {
        eprintln!("[metrics] appended snapshot to {}", path.display());
    }
}
