//! `fault_sweep` — the dispatch runtime under an injected-fault sweep.
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin fault_sweep
//! cargo run --release -p hetsel-bench --bin fault_sweep -- --seed 7 --rounds 5 --kind permanent
//! ```
//!
//! For each GPU fault probability p ∈ {0, 0.1, 0.25, 0.5, 0.75, 1.0} the
//! harness dispatches every Polybench kernel under every dataset `rounds`
//! times through a [`Dispatcher`] whose GPU carries a seeded transient (or
//! `--kind permanent`) fault plan, and records what the fault-tolerance
//! machinery did: completions, retries, fallbacks by reason, where requests
//! actually ran, breaker trips and the final breaker state. The sweep is
//! fully deterministic in `--seed`.
//!
//! The table prints to stdout; the machine-readable document lands in
//! `results/fault_sweep.json`.

use hetsel_core::{
    BreakerConfig, DecisionEngine, DecisionRequest, Device, Dispatcher, DispatcherConfig,
    FallbackReason, Platform, Selector,
};
use hetsel_fault::FaultPlan;
use hetsel_ir::Kernel;
use hetsel_polybench::{suite, Dataset};
use serde::Serialize;

/// Aggregate outcome of one sweep point (one fault probability).
#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    /// Injected GPU fault probability.
    fault_prob: f64,
    /// Requests dispatched.
    requests: u64,
    /// Requests that completed on some device (the soak bar: all of them).
    completed: u64,
    /// Requests that failed every device.
    failed: u64,
    /// Requests that ran on the GPU / the host.
    ran_on_gpu: u64,
    ran_on_host: u64,
    /// Total execution attempts and transient retries.
    attempts: u64,
    retries: u64,
    /// First-fallback counts by reason.
    fallback_deadline: u64,
    fallback_breaker_open: u64,
    fallback_device_fault: u64,
    /// GPU breaker: lifetime trips and final state.
    gpu_breaker_trips: u64,
    gpu_breaker_final: String,
    /// Mean simulated seconds per completed request (jitter + backoff
    /// included).
    mean_simulated_s: f64,
}

/// The whole sweep document written to `results/fault_sweep.json`.
#[derive(Debug, Clone, Serialize)]
struct SweepReport {
    platform: String,
    kind: String,
    seed: u64,
    rounds: u64,
    points: Vec<SweepPoint>,
}

fn main() {
    let mut seed = 0xfa17u64;
    let mut rounds = 3u64;
    let mut permanent = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bad_usage("--seed needs an integer"));
            }
            "--rounds" => {
                i += 1;
                rounds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bad_usage("--rounds needs an integer"));
            }
            "--kind" => {
                i += 1;
                permanent = match args.get(i).map(String::as_str) {
                    Some("transient") => false,
                    Some("permanent") => true,
                    _ => bad_usage("--kind needs transient|permanent"),
                };
            }
            flag => bad_usage(&format!("unknown flag {flag}")),
        }
        i += 1;
    }

    let platform = Platform::power9_v100();
    let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
    let mut requests: Vec<DecisionRequest> = Vec::new();
    for _ in 0..rounds {
        for bench in suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let binding = (bench.binding)(ds);
                for k in &bench.kernels {
                    requests.push(DecisionRequest::new(&k.name, binding.clone()));
                }
            }
        }
    }

    let kind = if permanent { "permanent" } else { "transient" };
    println!(
        "fault sweep on {} — {} GPU faults, seed {seed}, {} requests per point\n",
        platform.name,
        kind,
        requests.len()
    );
    println!(
        "{:>6}  {:>9}  {:>7}  {:>7}  {:>7}  {:>8}  {:>8}  {:>9}  {:>7}",
        "p", "completed", "gpu", "host", "retries", "brk_open", "dev_flt", "gpu_trips", "final"
    );

    let mut points = Vec::new();
    for p in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let plan = if permanent {
            FaultPlan::permanent(seed, p)
        } else {
            FaultPlan::transient(seed, p).with_jitter(1e-4)
        };
        let dispatcher = Dispatcher::new(
            DecisionEngine::new(Selector::new(platform.clone()), &kernels),
            DispatcherConfig::default()
                .with_gpu_faults(plan)
                .with_breaker(BreakerConfig::default()),
        );

        let mut point = SweepPoint {
            fault_prob: p,
            requests: requests.len() as u64,
            completed: 0,
            failed: 0,
            ran_on_gpu: 0,
            ran_on_host: 0,
            attempts: 0,
            retries: 0,
            fallback_deadline: 0,
            fallback_breaker_open: 0,
            fallback_device_fault: 0,
            gpu_breaker_trips: 0,
            gpu_breaker_final: String::new(),
            mean_simulated_s: 0.0,
        };
        let mut simulated = 0.0f64;
        for request in &requests {
            match dispatcher.dispatch(request) {
                Ok(outcome) => {
                    point.completed += 1;
                    match outcome.device {
                        Device::Gpu => point.ran_on_gpu += 1,
                        _ => point.ran_on_host += 1,
                    }
                    point.attempts += u64::from(outcome.attempts);
                    point.retries += u64::from(outcome.retries);
                    simulated += outcome.simulated_s;
                    match outcome.fallback {
                        Some(FallbackReason::DeadlineExceeded) => point.fallback_deadline += 1,
                        Some(FallbackReason::BreakerOpen { .. }) => {
                            point.fallback_breaker_open += 1
                        }
                        Some(FallbackReason::DeviceFault { .. }) => {
                            point.fallback_device_fault += 1
                        }
                        _ => {}
                    }
                }
                Err(_) => point.failed += 1,
            }
        }
        let health = dispatcher.health(Device::Gpu);
        point.gpu_breaker_trips = health.trips;
        point.gpu_breaker_final = health.state.name().to_string();
        point.mean_simulated_s = if point.completed > 0 {
            simulated / point.completed as f64
        } else {
            0.0
        };

        println!(
            "{:>6.2}  {:>4}/{:<4}  {:>7}  {:>7}  {:>7}  {:>8}  {:>8}  {:>9}  {:>7}",
            p,
            point.completed,
            point.requests,
            point.ran_on_gpu,
            point.ran_on_host,
            point.retries,
            point.fallback_breaker_open,
            point.fallback_device_fault,
            point.gpu_breaker_trips,
            point.gpu_breaker_final
        );
        points.push(point);
    }

    // A transient-fault sweep with a healthy host must complete everything;
    // fail loudly here so CI-style runs catch a dispatch regression.
    let dropped: u64 = points.iter().map(|pt| pt.failed).sum();
    if !permanent && dropped > 0 {
        eprintln!("[fault_sweep] FAILED: {dropped} requests completed on no device");
        std::process::exit(1);
    }

    let report = SweepReport {
        platform: platform.name.to_string(),
        kind: kind.to_string(),
        seed,
        rounds,
        points,
    };
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/fault_sweep.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results/ is creatable");
    }
    let doc = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, doc).expect("results/fault_sweep.json is writable");
    eprintln!("\n[fault_sweep] wrote {}", path.display());
}

fn bad_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: fault_sweep [--seed N] [--rounds N] [--kind transient|permanent]");
    std::process::exit(2);
}
