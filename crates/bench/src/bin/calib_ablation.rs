//! Online-calibration ablation: the fig6/table1 replay, Off vs Active.
//!
//! Replays the whole Polybench suite (the paper's `test` and `benchmark`
//! datasets) through the fault-tolerant dispatcher for several passes,
//! once with calibration Off and once in Active mode. Every completed
//! dispatch feeds the Active engine's calibrator one predicted-vs-observed
//! sample, so later passes decide on corrected predictions; the Off engine
//! replays the identical traffic with the analytical models alone.
//!
//! Two headline numbers per mode land in `results/calib_ablation.json`:
//! the mean relative error of the executed device's prediction against
//! the simulated run (`|predicted − observed| / observed`), and the
//! selection accuracy against the simulated oracle. The document also
//! keeps the per-pass error means, which show *when* the corrections
//! start paying (after `min_samples` passes publish the first biases).
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin calib_ablation
//! cargo run --release -p hetsel-bench --bin calib_ablation -- --validate
//! ```
//!
//! `--validate` re-reads the document and schema-checks it for CI; the
//! calibration contract it enforces is that Active's mean relative error
//! is *strictly* below Off's.

use hetsel_bench::paper_selector;
use hetsel_core::{
    CalibrationMode, DecisionEngine, DecisionRequest, Dispatcher, DispatcherConfig, Platform,
};
use hetsel_polybench::{all_kernels, Dataset};
use serde::{Deserialize, Serialize};

const DATASETS: [Dataset; 2] = [Dataset::Test, Dataset::Benchmark];
const PASSES: u32 = 6;

/// One mode's aggregate over the full replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModeBlock {
    /// Calibration mode name: `off` or `active`.
    mode: String,
    /// Scored predictions (dispatches whose executed device had one).
    samples: u64,
    /// Mean `|predicted − observed| / observed` over all samples.
    mean_rel_error: f64,
    /// Per-pass means of the same error, `passes` entries.
    pass_mean_rel_error: Vec<f64>,
    /// Decisions matching the simulated oracle.
    correct: u64,
    /// Total decisions taken.
    total: u64,
    /// `correct / total`.
    selection_accuracy: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Doc {
    /// Platform the replay ran on.
    platform: String,
    /// Dataset modes replayed, in order.
    datasets: Vec<String>,
    /// Replay passes over the suite, per mode.
    passes: u32,
    /// Off first, then Active.
    modes: Vec<ModeBlock>,
    /// `off.mean_rel_error − active.mean_rel_error` (positive = calibration
    /// shrank the error).
    error_shrink: f64,
    /// `active.selection_accuracy − off.selection_accuracy`.
    accuracy_gain: f64,
}

fn run_mode(mode: CalibrationMode) -> ModeBlock {
    let platform = Platform::power9_v100();
    let kernels: Vec<_> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
    let engine = DecisionEngine::new(
        paper_selector(platform.clone()).with_calibration(mode),
        &kernels,
    );
    let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
    let oracle = paper_selector(platform);

    let mut err_sum = 0.0;
    let mut samples = 0u64;
    let mut correct = 0u64;
    let mut total = 0u64;
    let mut pass_means = Vec::with_capacity(PASSES as usize);
    for _ in 0..PASSES {
        let mut pass_sum = 0.0;
        let mut pass_n = 0u64;
        for (_, kernel, binding) in all_kernels() {
            for ds in DATASETS {
                let b = binding(ds);
                let request = DecisionRequest::new(kernel.name.clone(), b.clone());
                let outcome = dispatcher.dispatch(&request).expect("suite dispatches");
                let d = &outcome.decision;
                let predicted = if outcome.device_id.is_host() {
                    d.predicted_cpu_s
                } else {
                    d.predicted_gpu_s
                };
                if let Some(p) = predicted {
                    let rel = ((p - outcome.simulated_s) / outcome.simulated_s).abs();
                    err_sum += rel;
                    samples += 1;
                    pass_sum += rel;
                    pass_n += 1;
                }
                let measured = oracle.measure(&kernel, &b).expect("simulators run");
                total += 1;
                if d.device == measured.best_device() {
                    correct += 1;
                }
            }
        }
        pass_means.push(if pass_n == 0 {
            0.0
        } else {
            pass_sum / pass_n as f64
        });
    }
    ModeBlock {
        mode: mode.name().to_string(),
        samples,
        mean_rel_error: if samples == 0 {
            0.0
        } else {
            err_sum / samples as f64
        },
        pass_mean_rel_error: pass_means,
        correct,
        total,
        selection_accuracy: correct as f64 / total as f64,
    }
}

fn validate_doc(path: &std::path::Path) {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e} (run the bench first)", path.display()));
    let doc: Doc = serde_json::from_str(&raw).expect("calib_ablation.json parses");
    assert!(!doc.platform.is_empty(), "platform is empty");
    assert!(
        doc.passes >= 2,
        "need at least two passes to learn anything"
    );
    assert_eq!(doc.datasets.len(), DATASETS.len(), "dataset census");
    assert_eq!(doc.modes.len(), 2, "exactly off and active");
    let off = &doc.modes[0];
    let active = &doc.modes[1];
    assert_eq!((off.mode.as_str(), active.mode.as_str()), ("off", "active"));
    for m in &doc.modes {
        assert!(m.samples > 0, "{}: no scored samples", m.mode);
        assert!(m.total > 0 && m.correct <= m.total, "{}: census", m.mode);
        assert!(
            m.mean_rel_error.is_finite() && m.mean_rel_error >= 0.0,
            "{}: bad mean_rel_error {}",
            m.mode,
            m.mean_rel_error
        );
        assert!(
            (0.0..=1.0).contains(&m.selection_accuracy),
            "{}: accuracy outside [0,1]",
            m.mode
        );
        assert_eq!(
            m.pass_mean_rel_error.len(),
            doc.passes as usize,
            "{}: one error mean per pass",
            m.mode
        );
        assert!(
            m.pass_mean_rel_error
                .iter()
                .all(|e| e.is_finite() && *e >= 0.0),
            "{}: bad pass errors",
            m.mode
        );
    }
    // The calibration contract: closing the loop must strictly shrink the
    // prediction error, and the recorded deltas must agree with the blocks.
    assert!(
        active.mean_rel_error < off.mean_rel_error,
        "active error {} not strictly below off error {}",
        active.mean_rel_error,
        off.mean_rel_error
    );
    assert!(
        (doc.error_shrink - (off.mean_rel_error - active.mean_rel_error)).abs() < 1e-12,
        "error_shrink inconsistent"
    );
    assert!(
        (doc.accuracy_gain - (active.selection_accuracy - off.selection_accuracy)).abs() < 1e-12,
        "accuracy_gain inconsistent"
    );
    println!(
        "[calib_ablation] valid: error {:.4} -> {:.4} ({} passes), accuracy {:.1}% -> {:.1}%",
        off.mean_rel_error,
        active.mean_rel_error,
        doc.passes,
        off.selection_accuracy * 100.0,
        active.selection_accuracy * 100.0
    );
}

fn main() {
    let mut validate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate" => validate = true,
            other => panic!("unknown argument {other:?} (options: --validate)"),
        }
    }
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/calib_ablation.json");
    if validate {
        validate_doc(&out_path);
        return;
    }

    let off = run_mode(CalibrationMode::Off);
    let active = run_mode(CalibrationMode::Active);
    println!(
        "[calib_ablation] off:    mean rel error {:.4}, accuracy {}/{}",
        off.mean_rel_error, off.correct, off.total
    );
    println!(
        "[calib_ablation] active: mean rel error {:.4}, accuracy {}/{}",
        active.mean_rel_error, active.correct, active.total
    );
    let doc = Doc {
        platform: Platform::power9_v100().name.to_string(),
        datasets: DATASETS.iter().map(|d| d.to_string()).collect(),
        passes: PASSES,
        error_shrink: off.mean_rel_error - active.mean_rel_error,
        accuracy_gain: active.selection_accuracy - off.selection_accuracy,
        modes: vec![off, active],
    };
    std::fs::create_dir_all(out_path.parent().unwrap()).expect("results dir");
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .expect("write calib_ablation.json");
    println!("[calib_ablation] wrote {}", out_path.display());
}
