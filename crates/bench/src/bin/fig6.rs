//! Regenerates **Figure 6**: actual versus predicted GPU-offloading speedup
//! for every kernel in `test` execution mode, against a host restricted to
//! 4 threads (the paper's "more typical execution environment").

use hetsel_bench::{paper_selector, run_suite};
use hetsel_core::Platform;
use hetsel_polybench::Dataset;

fn main() {
    scatter(Dataset::Test, "Figure 6");
}

/// Shared by fig6/fig7: prints the actual-vs-predicted scatter for one mode.
pub fn scatter(ds: Dataset, figure: &str) {
    let platform = Platform::power9_v100().with_threads(4);
    let sel = paper_selector(platform.clone());
    let results = run_suite(&platform, ds, &sel);

    println!("{figure} — actual vs predicted offloading speedup, {ds} mode, 4-thread host\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>9}",
        "kernel", "actual", "predicted", "ratio", "decision"
    );
    let mut log_err_sum = 0.0;
    let mut correct = 0usize;
    for r in &results {
        let actual = r.actual_speedup();
        let predicted = r.predicted_speedup().unwrap_or(f64::NAN);
        let ratio = predicted / actual;
        log_err_sum += ratio.ln().abs();
        if r.decision_correct() {
            correct += 1;
        }
        println!(
            "{:<14} {:>11.2}x {:>11.2}x {:>10.2} {:>9}",
            r.kernel,
            actual,
            predicted,
            ratio,
            if r.decision_correct() { "ok" } else { "WRONG" }
        );
    }
    let gmae = (log_err_sum / results.len() as f64).exp();
    println!("\ngeometric mean |prediction error| factor: {gmae:.2}x");
    println!(
        "correct offloading decisions: {correct} / {}",
        results.len()
    );
    if let Ok(path) = hetsel_bench::metrics_dump("fig6") {
        eprintln!("[metrics] appended snapshot to {}", path.display());
    }
}
