//! Extension of Table I's argument: the K80 → P100 → V100 *continuum*.
//!
//! The paper contrasts two generations; adding the Pascal system between
//! them shows the offloading-benefit drift is gradual and monotone in the
//! hardware's capabilities — strengthening the case that selection
//! heuristics must be parameterised by the platform, not hard-coded.

use hetsel_bench::paper_selector;
use hetsel_core::Platform;
use hetsel_polybench::{all_kernels, Dataset};

fn main() {
    let platforms = [
        Platform::power8_k80(),
        Platform::power8_p100(),
        Platform::power9_v100(),
    ];
    println!("Offloading speedup across three GPU generations (160-thread hosts)\n");
    for ds in Dataset::paper_modes() {
        println!("== {ds} mode ==");
        println!(
            "{:<14} {:>12} {:>12} {:>12}   decisions",
            "kernel", "K80/PCIe3", "P100/NVL1", "V100/NVL2"
        );
        for (_, kernel, binding) in all_kernels() {
            let b = binding(ds);
            let mut cells = Vec::new();
            let mut devices = Vec::new();
            for p in &platforms {
                let sel = paper_selector(p.clone());
                let m = sel.measure(&kernel, &b).expect("simulators run");
                cells.push(format!("{:>11.2}x", m.speedup().unwrap_or(f64::NAN)));
                devices.push(format!("{}", m.best_device()));
            }
            println!(
                "{:<14} {} {} {}   {}",
                kernel.name,
                cells[0],
                cells[1],
                cells[2],
                devices.join(" -> ")
            );
        }
        println!();
    }
}
