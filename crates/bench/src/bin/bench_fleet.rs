//! Micro-benchmark of the decision hot path on a multi-accelerator fleet,
//! exported as machine-readable JSON so CI can track what the fleet
//! generalization costs relative to the classic pair:
//!
//! * `pair_cache_hit` — memoized decide on the classic host+GPU pair (the
//!   baseline `bench_decision` also measures);
//! * `fleet_cache_hit` — memoized decide on a two-accelerator fleet (same
//!   allocation-free path, one more candidate in the cached verdict);
//! * `fleet_scoped_hit` — memoized `decide_for` restricted to one
//!   accelerator (the `(region, device, values)` cache key);
//! * `pair_warm_evaluate` / `fleet_warm_evaluate` — uncached evaluation of
//!   the precompiled models, two vs three candidates.
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin bench_fleet
//! # → results/bench_fleet.json
//! ```

use hetsel_core::{DecisionEngine, Fleet, Platform, Selector};
use hetsel_polybench::{find_kernel, Dataset};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRow {
    name: String,
    iters: u64,
    total_ns: u64,
    ns_per_op: f64,
}

#[derive(Serialize)]
struct Doc {
    generator: &'static str,
    platform: String,
    fleet: Vec<String>,
    results: Vec<BenchRow>,
}

/// Times `iters` calls of `f` after a short warmup; `ns_per_op` is the
/// wall-clock mean.
fn time(name: &str, iters: u64, mut f: impl FnMut()) -> BenchRow {
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total_ns = start.elapsed().as_nanos() as u64;
    let row = BenchRow {
        name: name.to_string(),
        iters,
        total_ns,
        ns_per_op: total_ns as f64 / iters as f64,
    };
    println!(
        "{:<24} {:>12.1} ns/op  ({} iters)",
        row.name, row.ns_per_op, row.iters
    );
    row
}

fn main() {
    let platform = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&platform, "v100")
        .with_accelerator_from("k80", &Platform::power8_k80());
    let scope = fleet.device_id_of("k80").expect("k80 is registered");
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let mut results = Vec::new();

    let pair_engine = DecisionEngine::new(
        Selector::new(platform.clone()),
        std::slice::from_ref(&kernel),
    );
    pair_engine.decide("gemm", &b);
    results.push(time("pair_cache_hit", 200_000, || {
        black_box(pair_engine.decide(black_box("gemm"), black_box(&b)));
    }));

    let fleet_engine = DecisionEngine::new(
        Selector::new(platform.clone()).with_fleet(fleet.clone()),
        std::slice::from_ref(&kernel),
    );
    fleet_engine.decide("gemm", &b);
    results.push(time("fleet_cache_hit", 200_000, || {
        black_box(fleet_engine.decide(black_box("gemm"), black_box(&b)));
    }));

    fleet_engine.decide_for("gemm", &b, scope);
    results.push(time("fleet_scoped_hit", 200_000, || {
        black_box(fleet_engine.decide_for(black_box("gemm"), black_box(&b), scope));
    }));

    let pair_sel = Selector::new(platform.clone());
    let pair_attrs = pair_engine.database().region("gemm").unwrap();
    results.push(time("pair_warm_evaluate", 20_000, || {
        black_box(pair_sel.decide(black_box(pair_attrs), black_box(&b)));
    }));

    let fleet_sel = Selector::new(platform.clone()).with_fleet(fleet.clone());
    let fleet_attrs = fleet_engine.database().region("gemm").unwrap();
    results.push(time("fleet_warm_evaluate", 20_000, || {
        black_box(fleet_sel.decide(black_box(fleet_attrs), black_box(&b)));
    }));

    let doc = Doc {
        generator: "hetsel-bench bench_fleet",
        platform: platform.name.to_string(),
        fleet: fleet
            .device_ids()
            .filter_map(|id| fleet.label(id).map(str::to_string))
            .collect(),
        results,
    };
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_fleet.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results/ is creatable");
    }
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    std::fs::write(&path, json).expect("results/bench_fleet.json is writable");
    println!("\n[bench_fleet] wrote {}", path.display());
}
