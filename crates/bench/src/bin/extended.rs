//! Runs the full experiment (Table I columns + model decisions) over the
//! *extended* benchmark set — the four Polybench programs beyond the
//! paper's evaluation (JACOBI2D, FDTD2D, GEMVER, TRMM) — checking that the
//! framework generalises past the kernels it was shaped on.

use hetsel_bench::fmt_time;
use hetsel_core::{Platform, Selector};
use hetsel_polybench::{extended_suite, Dataset};

fn main() {
    println!("Extended suite — programs beyond the paper's evaluation\n");
    for platform in [Platform::power8_k80(), Platform::power9_v100()] {
        let sel = Selector::new(platform.clone());
        println!("== {} ==", platform.name);
        println!(
            "{:<14} {:<9} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "kernel", "mode", "host", "gpu", "speedup", "decision", "verdict"
        );
        for ds in Dataset::paper_modes() {
            for b in extended_suite() {
                for k in &b.kernels {
                    let bnd = (b.binding)(ds);
                    let d = sel.decide(k, &bnd);
                    let m = sel.measure(k, &bnd).expect("simulators run");
                    println!(
                        "{:<14} {:<9} {:>10} {:>10} {:>7.2}x {:>9} {:>9}",
                        k.name,
                        format!("{ds}"),
                        fmt_time(m.cpu_s),
                        fmt_time(m.gpu_s),
                        m.speedup().unwrap_or(f64::NAN),
                        format!("{}", d.device),
                        if d.device == m.best_device() {
                            "ok"
                        } else {
                            "WRONG"
                        }
                    );
                }
            }
        }
        println!();
    }
}
