//! Host-portability study: the framework on an x86 node.
//!
//! The paper was restricted to POWER9 hosts by LLVM-MCA's backend
//! requirements. Our analyzer needs only a descriptor, so the same hybrid
//! decision stack runs against a dual-socket Skylake machine (4 KiB pages,
//! AVX-512, HT2, PCIe-attached V100) — and the *decisions change*: PCIe
//! transfer costs and wider host vectors move several crossovers.

use hetsel_bench::{fmt_time, paper_selector, policy_outcome, run_suite};
use hetsel_core::{Platform, Policy};
use hetsel_polybench::Dataset;

fn main() {
    let platforms = [Platform::power9_v100(), Platform::xeon_v100()];
    println!("The same V100, two host worlds\n");
    for ds in Dataset::paper_modes() {
        println!("== {ds} mode ==");
        println!(
            "{:<14} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | flip",
            "kernel", "P9 host", "V100/NVL2", "speedup", "Xeon host", "V100/PCIe", "speedup"
        );
        let sel_a = paper_selector(platforms[0].clone());
        let sel_b = paper_selector(platforms[1].clone());
        let ra = run_suite(&platforms[0], ds, &sel_a);
        let rb = run_suite(&platforms[1], ds, &sel_b);
        for (a, b) in ra.iter().zip(&rb) {
            let flip = if (a.actual_speedup() > 1.0) != (b.actual_speedup() > 1.0) {
                "  <-- decision flips"
            } else {
                ""
            };
            println!(
                "{:<14} | {:>10} {:>10} {:>7.2}x | {:>10} {:>10} {:>7.2}x |{}",
                a.kernel,
                fmt_time(a.measured.cpu_s),
                fmt_time(a.measured.gpu_s),
                a.actual_speedup(),
                fmt_time(b.measured.cpu_s),
                fmt_time(b.measured.gpu_s),
                b.actual_speedup(),
                flip
            );
        }
        for (platform, results) in platforms.iter().zip([&ra, &rb]) {
            let off = policy_outcome(results, Policy::AlwaysOffload);
            let model = policy_outcome(results, Policy::ModelDriven);
            println!(
                "{}: always-offload {:.2}x, model-driven {:.2}x ({}/{} correct)",
                platform.name,
                off.geomean_speedup,
                model.geomean_speedup,
                model.correct_decisions,
                model.total
            );
        }
        println!();
    }
}
