//! Extension study: program-level selection with data residency.
//!
//! Compares, per Polybench *program*, the paper's per-region selection
//! (each launch pays its own transfers) against a residency-aware plan
//! where consecutive same-device regions keep shared arrays in place
//! (OpenMP `target data` semantics).

use hetsel_core::{plan_program, Platform};
use hetsel_polybench::{full_suite, Dataset};

fn main() {
    let platform = Platform::power9_v100();
    println!(
        "Program-level residency planning on {} ({} threads)\n",
        platform.name, platform.host_threads
    );
    for ds in Dataset::paper_modes() {
        println!("== {ds} mode ==");
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>7}   plan",
            "program", "regions", "naive", "planned", "gain"
        );
        for b in full_suite() {
            let binding = (b.binding)(ds);
            let Some(p) = plan_program(&b.kernels, &binding, &platform) else {
                continue;
            };
            let plan: Vec<String> = p.assignments.iter().map(|(_, d)| d.to_string()).collect();
            println!(
                "{:<10} {:>8} {:>10.2}ms {:>10.2}ms {:>6.2}x   [{}]",
                b.name,
                b.kernels.len(),
                p.naive_predicted_s * 1e3,
                p.predicted_s * 1e3,
                p.gain_over_naive(),
                plan.join(",")
            );
        }
        println!();
    }
    println!(
        "Gains come from intermediates that never cross the bus once the\n\
         plan keeps a chain on one device — the `target data` idiom the\n\
         per-region timing methodology of the paper cannot credit."
    );
}
