//! Ablation studies over the model abstractions DESIGN.md calls out:
//!
//! 1. **Coalescing analysis** — IPDA (the paper's contribution) versus
//!    assuming everything uncoalesced (prior-work pessimism) versus
//!    assuming everything coalesced (naive optimism);
//! 2. **Trip counts** — runtime-bound values (hybrid analysis) versus the
//!    static "every loop runs 128 iterations" abstraction;
//!
//! each scored by the decisions it produces and the resulting suite
//! geometric-mean speedup, against the same simulated ground truth.

use hetsel_bench::{paper_selector, policy_outcome, run_suite};
use hetsel_core::{Platform, Policy};
use hetsel_models::{CoalescingMode, TripMode};
use hetsel_polybench::Dataset;

fn main() {
    let platform = Platform::power9_v100();
    println!(
        "Ablations on {} ({} threads)\n",
        platform.name, platform.host_threads
    );

    for ds in Dataset::paper_modes() {
        println!("== {ds} mode ==");
        println!(
            "{:<44} {:>10} {:>10}",
            "configuration", "geomean", "correct"
        );
        let configs: Vec<(String, TripMode, CoalescingMode)> = vec![
            (
                "hybrid (runtime trips + IPDA)".into(),
                TripMode::Runtime,
                CoalescingMode::Ipda,
            ),
            (
                "runtime trips + assume-uncoalesced".into(),
                TripMode::Runtime,
                CoalescingMode::AssumeUncoalesced,
            ),
            (
                "runtime trips + assume-coalesced".into(),
                TripMode::Runtime,
                CoalescingMode::AssumeCoalesced,
            ),
            (
                "static 128-iteration trips + IPDA".into(),
                TripMode::Assume128,
                CoalescingMode::Ipda,
            ),
            (
                "static 128-iteration + assume-uncoalesced".into(),
                TripMode::Assume128,
                CoalescingMode::AssumeUncoalesced,
            ),
        ];
        for (name, trip, coal) in configs {
            let sel = paper_selector(platform.clone())
                .with_trip_mode(trip)
                .with_coalescing(coal);
            let results = run_suite(&platform, ds, &sel);
            let out = policy_outcome(&results, Policy::ModelDriven);
            println!(
                "{:<44} {:>9.2}x {:>7}/{}",
                name, out.geomean_speedup, out.correct_decisions, out.total
            );
        }
        // Reference rows.
        let sel = paper_selector(platform.clone());
        let results = run_suite(&platform, ds, &sel);
        let off = policy_outcome(&results, Policy::AlwaysOffload);
        let host = policy_outcome(&results, Policy::AlwaysHost);
        println!(
            "{:<44} {:>9.2}x {:>7}/{}",
            "always-offload (compiler default)",
            off.geomean_speedup,
            off.correct_decisions,
            off.total
        );
        println!(
            "{:<44} {:>9.2}x {:>7}/{}",
            "always-host", host.geomean_speedup, host.correct_decisions, host.total
        );
        println!();
    }
}
