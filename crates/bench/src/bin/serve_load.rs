//! Load bench for the `hetsel-serve` decision service: replays
//! heavy-tailed (Zipf-weighted) Polybench traffic against a running
//! server and reports sustained throughput, exact p50/p99 request
//! latency, and the admission-control behaviour under pressure.
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin serve_load
//! # → results/serve_load.json
//! cargo run --release -p hetsel-bench --bin serve_load -- --duration-ms 500
//! cargo run --release -p hetsel-bench --bin serve_load -- --validate
//! ```
//!
//! Three measured blocks:
//!
//! * **warm** — open-loop throughput: each producer keeps `depth`
//!   requests in flight (submit a window, wait for it), so the batcher's
//!   coalescing windows stay full. Sustained decisions/sec over the
//!   measured interval.
//! * **latency** — closed-loop: producers issue one request at a time and
//!   record every round trip. Percentiles are computed from the *raw*
//!   sample vector, not the obs histogram (whose log2 buckets are only
//!   2×-accurate).
//! * **shed** — pressure: a second, deliberately tiny server (short
//!   queue, slow windows) is flooded without backpressure to exercise
//!   `queue_full`, and sub-microsecond deadlines exercise
//!   `deadline_expired`. Every shed is still a typed reply carrying a
//!   runnable compiler-default decision; the block counts them by reason.
//!
//! Traffic is deterministic: xorshift64-seeded producers, Zipf(s = 1.1)
//! region popularity over all 24 paper kernels, and a 1-in-16 binding
//! perturbation so the cache sees a realistic miss trickle, not a pure
//! replay.

use std::time::{Duration, Instant};

use hetsel_core::{
    DecisionEngine, DecisionRequest, Dispatcher, DispatcherConfig, Platform, Selector,
};
use hetsel_ir::{Binding, Kernel};
use hetsel_polybench::{all_kernels, Dataset};
use hetsel_serve::{DecisionServer, ServeConfig, ServeReply, ServeRequest, ServerHandle};
use serde::Serialize;

#[derive(Serialize)]
struct ConfigBlock {
    producers: usize,
    depth: usize,
    duration_ms: u64,
    queue_capacity: usize,
    max_batch: usize,
    window_us: u64,
    regions: usize,
    zipf_s: f64,
    seed: u64,
}

#[derive(Serialize)]
struct WarmBlock {
    total_ok: u64,
    elapsed_s: f64,
    decisions_per_sec: f64,
}

#[derive(Serialize)]
struct LatencyBlock {
    samples: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: f64,
}

#[derive(Serialize)]
struct ShedBlock {
    deadline_expired: u64,
    queue_full: u64,
    shutting_down: u64,
    ok_under_pressure: u64,
    total_replies: u64,
}

#[derive(Serialize)]
struct WindowsBlock {
    windows: u64,
    requests: u64,
    mean_batch: f64,
}

#[derive(Serialize)]
struct Doc {
    generator: &'static str,
    platform: String,
    config: ConfigBlock,
    warm: WarmBlock,
    latency: LatencyBlock,
    shed: ShedBlock,
    windows: WindowsBlock,
}

/// xorshift64: deterministic, seed-splittable, good enough for traffic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf-weighted region traffic over the Polybench kernel census.
struct Traffic {
    regions: Vec<(String, Binding)>,
    cumulative: Vec<f64>,
}

impl Traffic {
    fn new(zipf_s: f64) -> Traffic {
        let regions: Vec<(String, Binding)> = all_kernels()
            .into_iter()
            .map(|(_, kernel, binding)| (kernel.name.clone(), binding(Dataset::Benchmark)))
            .collect();
        let weights: Vec<f64> = (1..=regions.len())
            .map(|rank| 1.0 / (rank as f64).powf(zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Traffic {
            regions,
            cumulative,
        }
    }

    /// One request: Zipf-ranked region, 1-in-16 binding perturbation so
    /// the decision cache sees a steady miss trickle.
    fn request(&self, rng: &mut Rng) -> DecisionRequest {
        let u = rng.unit();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.regions.len() - 1);
        let (region, binding) = &self.regions[idx];
        let mut binding = binding.clone();
        if rng.next().is_multiple_of(16) {
            binding.set("variant", (rng.next() % 4096) as i64);
        }
        DecisionRequest::new(region.clone(), binding)
    }
}

fn engine() -> DecisionEngine {
    let kernels: Vec<Kernel> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
    DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels)
}

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut duration_ms: u64 = 2_000;
    let mut producers: usize =
        std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8));
    let mut depth: usize = 512;
    let mut validate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--duration-ms" => duration_ms = value("--duration-ms").parse().expect("ms"),
            "--producers" => producers = value("--producers").parse().expect("count"),
            "--depth" => depth = value("--depth").parse().expect("count"),
            "--validate" => validate = true,
            other => panic!("unknown argument {other:?} (options: --duration-ms N, --producers N, --depth N, --validate)"),
        }
    }
    let producers = producers.max(1);
    let depth = depth.max(1);

    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/serve_load.json");
    if validate {
        validate_doc(&out_path);
        return;
    }

    let zipf_s = 1.1;
    let seed = BENCH_SEED;
    let config = ServeConfig::default();
    let traffic = Traffic::new(zipf_s);
    let platform = Platform::power9_v100();
    let server = DecisionServer::start(
        Dispatcher::new(engine(), DispatcherConfig::default()),
        config,
    );

    // Warmup: prime the decision cache's popular keys and every
    // lazily-created metric before any measurement.
    run_closed_loop(
        &server.handle(),
        &traffic,
        producers,
        seed,
        Duration::from_millis((duration_ms / 10).clamp(50, 500)),
    );

    // Block 1: open-loop sustained throughput.
    let phase = Duration::from_millis(duration_ms / 2);
    let windows_before = window_summary();
    let start = Instant::now();
    let total_ok = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let handle = server.handle();
                let traffic = &traffic;
                scope.spawn(move || {
                    let mut rng = Rng::new(seed ^ ((p as u64 + 1) * 0x9e37_79b9_7f4a_7c15));
                    let mut ok = 0u64;
                    let mut in_flight = Vec::with_capacity(depth);
                    while start.elapsed() < phase {
                        in_flight.clear();
                        for _ in 0..depth {
                            in_flight.push(
                                handle.submit_wait(ServeRequest::new(traffic.request(&mut rng))),
                            );
                        }
                        for pending in &in_flight {
                            if pending.done.wait().status() == "ok" {
                                ok += 1;
                            }
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    let elapsed = start.elapsed();
    let warm = WarmBlock {
        total_ok,
        elapsed_s: elapsed.as_secs_f64(),
        decisions_per_sec: total_ok as f64 / elapsed.as_secs_f64(),
    };
    println!(
        "[serve_load] warm: {:.0} decisions/sec ({} ok over {:.2}s, {} producers × depth {})",
        warm.decisions_per_sec, warm.total_ok, warm.elapsed_s, producers, depth
    );

    // Block 2: closed-loop latency, raw samples for exact percentiles.
    let mut latencies = run_closed_loop(
        &server.handle(),
        &traffic,
        producers,
        seed ^ 0xdead_beef,
        Duration::from_millis(duration_ms / 2),
    );
    latencies.sort_unstable();
    let latency = LatencyBlock {
        samples: latencies.len() as u64,
        p50_ns: exact_percentile(&latencies, 0.50),
        p99_ns: exact_percentile(&latencies, 0.99),
        max_ns: latencies.last().copied().unwrap_or(0),
        mean_ns: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
    };
    println!(
        "[serve_load] latency: p50 {} ns, p99 {} ns over {} closed-loop calls",
        latency.p50_ns, latency.p99_ns, latency.samples
    );
    let windows_after = window_summary();

    // Block 3: admission pressure against a deliberately tiny server.
    let shed = shed_pressure(&traffic, seed ^ 0x5eed, producers);
    println!(
        "[serve_load] shed: {} queue_full, {} deadline_expired, {} shutting_down ({} ok under pressure)",
        shed.queue_full, shed.deadline_expired, shed.shutting_down, shed.ok_under_pressure
    );
    server.shutdown();

    let windows = WindowsBlock {
        windows: windows_after.0.saturating_sub(windows_before.0),
        requests: windows_after.1.saturating_sub(windows_before.1),
        mean_batch: {
            let w = windows_after.0.saturating_sub(windows_before.0);
            let r = windows_after.1.saturating_sub(windows_before.1);
            if w == 0 {
                0.0
            } else {
                r as f64 / w as f64
            }
        },
    };

    let doc = Doc {
        generator: "hetsel-bench serve_load",
        platform: platform.name.to_string(),
        config: ConfigBlock {
            producers,
            depth,
            duration_ms,
            queue_capacity: config.queue_capacity,
            max_batch: config.max_batch,
            window_us: config.window.as_micros() as u64,
            regions: traffic.regions.len(),
            zipf_s,
            seed,
        },
        warm,
        latency,
        shed,
        windows,
    };
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("results/ is creatable");
    }
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    std::fs::write(&out_path, json).expect("results/serve_load.json is writable");
    println!("[serve_load] wrote {}", out_path.display());
}

/// Closed-loop phase shared by warmup and the latency block: every
/// producer issues one request at a time; returns all round-trip times.
fn run_closed_loop(
    handle: &ServerHandle,
    traffic: &Traffic,
    producers: usize,
    seed: u64,
    duration: Duration,
) -> Vec<u64> {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut rng = Rng::new(seed ^ ((p as u64 + 1) * 0xa076_1d64_78bd_642f));
                    let mut samples = Vec::new();
                    while start.elapsed() < duration {
                        let t0 = Instant::now();
                        let reply = handle.call(ServeRequest::new(traffic.request(&mut rng)));
                        if reply.status() == "ok" {
                            samples.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Floods a tiny server (short queue, sluggish windows) without
/// backpressure, plus a wave of sub-microsecond deadlines, then shuts it
/// down mid-stream — exercising all three typed shed reasons.
fn shed_pressure(traffic: &Traffic, seed: u64, producers: usize) -> ShedBlock {
    let tiny = DecisionServer::start(
        Dispatcher::new(engine(), DispatcherConfig::default()),
        ServeConfig::default()
            .with_queue_capacity(64)
            .with_max_batch(16)
            .with_window(Duration::from_millis(2)),
    );
    let mut block = ShedBlock {
        deadline_expired: 0,
        queue_full: 0,
        shutting_down: 0,
        ok_under_pressure: 0,
        total_replies: 0,
    };
    let replies: Vec<ServeReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers.max(2))
            .map(|p| {
                let handle = tiny.handle();
                let traffic = &traffic;
                scope.spawn(move || {
                    let mut rng = Rng::new(seed ^ ((p as u64 + 1) * 0x2545_f491_4f6c_dd1d));
                    let mut pendings = Vec::new();
                    // Burst far past the queue capacity, no backpressure.
                    for i in 0..512 {
                        let mut request = traffic.request(&mut rng);
                        if i % 4 == 0 {
                            // Every fourth request carries an unmeetable
                            // budget for the deadline-shed path; admitted
                            // under backpressure so it always reaches the
                            // timer instead of bouncing off the full
                            // queue.
                            request = request.with_deadline(Duration::from_nanos(200));
                            pendings.push(handle.submit_wait(ServeRequest::new(request)));
                        } else {
                            pendings.push(handle.submit(ServeRequest::new(request)));
                        }
                    }
                    pendings
                        .iter()
                        .map(|pending| pending.done.wait())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    tiny.shutdown();
    for reply in &replies {
        block.total_replies += 1;
        match reply {
            ServeReply::Ok { .. } => block.ok_under_pressure += 1,
            ServeReply::Shed { reason, .. } => match reason.metric_key() {
                "queue_full" => block.queue_full += 1,
                "deadline_expired" => block.deadline_expired += 1,
                _ => block.shutting_down += 1,
            },
            ServeReply::Error { .. } => {}
        }
    }
    block
}

/// `(windows, requests)` so far on the serve batch-size histogram.
fn window_summary() -> (u64, u64) {
    hetsel_obs::registry()
        .snapshot()
        .histograms
        .iter()
        .find(|(name, _)| name == "hetsel.serve.window.batch")
        .map(|(_, h)| (h.count, h.sum))
        .unwrap_or((0, 0))
}

/// Fixed bench seed: runs are reproducible unless the generator changes.
const BENCH_SEED: u64 = 0x5e12_e10ad;

/// `--validate`: structural schema check for CI. Exits nonzero with a
/// message when the document is missing or malformed.
fn validate_doc(path: &std::path::Path) {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let doc: serde::Value = serde_json::from_str(&raw)
        .unwrap_or_else(|e| fail(&format!("{} is not JSON: {e}", path.display())));
    for key in [
        "generator",
        "platform",
        "config",
        "warm",
        "latency",
        "shed",
        "windows",
    ] {
        if doc.get(key).is_none() {
            fail(&format!("missing top-level key {key:?}"));
        }
    }
    let num = |block: &str, key: &str| -> f64 {
        match doc.get(block).and_then(|b| b.get(key)) {
            Some(serde::Value::UInt(n)) => *n as f64,
            Some(serde::Value::Int(n)) => *n as f64,
            Some(serde::Value::Float(x)) => *x,
            other => fail(&format!("{block}.{key} is not numeric: {other:?}")),
        }
    };
    let throughput = num("warm", "decisions_per_sec");
    let p50 = num("latency", "p50_ns");
    let p99 = num("latency", "p99_ns");
    if throughput <= 0.0 {
        fail("warm.decisions_per_sec must be positive");
    }
    if num("latency", "samples") <= 0.0 {
        fail("latency.samples must be positive");
    }
    if p50 > p99 {
        fail(&format!("p50 ({p50}) exceeds p99 ({p99})"));
    }
    num("shed", "queue_full");
    num("shed", "deadline_expired");
    num("windows", "mean_batch");
    println!(
        "[serve_load] {} validates: {:.0} decisions/sec, p50 {} ns, p99 {} ns",
        path.display(),
        throughput,
        p50,
        p99
    );
}

fn fail(msg: &str) -> ! {
    eprintln!("[serve_load] INVALID: {msg}");
    std::process::exit(2);
}
