//! IPDA census over the whole suite: the Section IV.C worked example at
//! scale. For every memory access of every kernel, prints the symbolic
//! inter-thread stride, its runtime resolution under both dataset modes,
//! and the resulting warp-transaction count.

use hetsel_ipda::{analyze, AccessPattern};
use hetsel_polybench::{all_kernels, Dataset};

fn main() {
    println!("IPDA census — symbolic inter-thread strides across the suite\n");
    println!(
        "{:<14} {:<8} {:<6} {:>16} {:>12} {:>6} {:>10}",
        "kernel", "array", "kind", "IPD_thread", "test-stride", "txns", "pattern"
    );
    let mut by_pattern = std::collections::BTreeMap::<&str, usize>::new();
    for (_, kernel, binding) in all_kernels() {
        let info = analyze(&kernel);
        let b = binding(Dataset::Test);
        for a in &info.accesses {
            let resolved = a.thread_stride.resolve(&b);
            let pattern = a.thread_pattern(&b);
            let name = match pattern {
                AccessPattern::Uniform => "uniform",
                AccessPattern::Coalesced => "coalesced",
                AccessPattern::Strided => "strided",
                AccessPattern::Irregular => "irregular",
            };
            *by_pattern.entry(name).or_default() += 1;
            println!(
                "{:<14} {:<8} {:<6} {:>16} {:>12} {:>6} {:>10}",
                kernel.name,
                kernel.array(a.array).name,
                if a.is_store { "store" } else { "load" },
                format!("{}", a.thread_stride),
                resolved
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "?".into()),
                a.transactions_per_warp(&b, 32),
                name,
            );
        }
    }
    println!("\nstatic accesses by pattern (test mode): {by_pattern:?}");
    println!(
        "\nworked example (paper IV.C): IPD_th(A[max*a]) = [max]; with max=1 \
         the store is coalesced, with max=9600 each lane owns a transaction."
    );
}
