//! Host-thread sweep: how the offloading decision moves with the host's
//! parallel capacity (the paper evaluates the 4-thread and 160-thread
//! endpoints; this sweeps the range between them).

use hetsel_bench::paper_selector;
use hetsel_core::Platform;
use hetsel_polybench::{find_kernel, Dataset};

fn main() {
    let threads = [4u32, 8, 16, 32, 64, 160];
    let kernels = [
        "gemm",
        "atax.k2",
        "2dconv",
        "3dconv",
        "corr.mean",
        "corr.corr",
    ];
    println!("Offloading speedup vs host thread count (V100 platform, benchmark mode)\n");
    print!("{:<12}", "kernel");
    for t in threads {
        print!(" {t:>9}T");
    }
    println!("   crossover");
    for name in kernels {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Benchmark);
        print!("{name:<12}");
        let mut crossover: Option<u32> = None;
        let mut prev_gpu_win = true;
        for (idx, t) in threads.iter().enumerate() {
            let platform = Platform::power9_v100().with_threads(*t);
            let sel = paper_selector(platform);
            let m = sel.measure(&kernel, &b).expect("simulators run");
            let s = m.speedup().unwrap_or(f64::NAN);
            print!(" {s:>9.2}x");
            let gpu_win = s > 1.0;
            if idx > 0 && prev_gpu_win && !gpu_win {
                crossover = Some(*t);
            }
            prev_gpu_win = gpu_win;
        }
        match crossover {
            Some(t) => println!("   host wins from {t} threads"),
            None => println!(
                "   {}",
                if prev_gpu_win {
                    "gpu always"
                } else {
                    "host always"
                }
            ),
        }
    }
    println!(
        "\nThe offload benefit shrinks as host threads grow — until deep SMT\n\
         oversubscription thrashes the shared caches and the curve turns back\n\
         up (gemm at 160T): host scaling is not monotone, which is exactly why\n\
         the paper keys the decision on runtime conditions."
    );
}
