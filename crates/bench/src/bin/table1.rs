//! Regenerates **Table I**: comparative GPU-offloading benefit across GPU
//! generations, for every Polybench kernel in `test` and `benchmark`
//! execution modes on both experimental platforms (POWER8 + K80/PCIe and
//! POWER9 + V100/NVLink2), host at 160 threads.
//!
//! Speedup = host region time / GPU region time (kernel + transfers, no
//! CUDA context creation), as in the paper's Section III methodology.

use hetsel_bench::{fmt_time, paper_selector, run_suite};
use hetsel_core::Platform;
use hetsel_polybench::Dataset;

fn main() {
    let platforms = [Platform::power8_k80(), Platform::power9_v100()];
    println!("Table I — GPU offloading speedup over the 160-thread host");
    println!("(speedup < 1 means the kernel should have stayed on the host)\n");

    // Collect per-platform results keyed by (kernel, dataset).
    type Row = (String, Dataset, Vec<(f64, f64, f64)>);
    let mut rows: Vec<Row> = Vec::new();
    for (pi, platform) in platforms.iter().enumerate() {
        let sel = paper_selector(platform.clone());
        for ds in Dataset::paper_modes() {
            for r in run_suite(platform, ds, &sel) {
                let entry = rows.iter_mut().find(|(k, d, _)| *k == r.kernel && *d == ds);
                let tuple = (r.measured.cpu_s, r.measured.gpu_s, r.actual_speedup());
                match entry {
                    Some((_, _, v)) => {
                        debug_assert_eq!(v.len(), pi);
                        v.push(tuple);
                    }
                    None => rows.push((r.kernel.clone(), ds, vec![tuple])),
                }
            }
        }
    }

    println!(
        "{:<14} {:<9} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | flip",
        "kernel", "mode", "P8 host", "K80", "speedup", "P9 host", "V100", "speedup"
    );
    println!("{}", "-".repeat(108));
    for ds in Dataset::paper_modes() {
        for (kernel, d, v) in &rows {
            if *d != ds || v.len() != 2 {
                continue;
            }
            let (c8, g8, s8) = v[0];
            let (c9, g9, s9) = v[1];
            let flip = if (s8 > 1.0) != (s9 > 1.0) {
                "  <-- decision flips"
            } else {
                ""
            };
            println!(
                "{:<14} {:<9} | {:>10} {:>10} {:>7.2}x | {:>10} {:>10} {:>7.2}x |{}",
                kernel,
                format!("{ds}"),
                fmt_time(c8),
                fmt_time(g8),
                s8,
                fmt_time(c9),
                fmt_time(g9),
                s9,
                flip
            );
        }
        println!("{}", "-".repeat(108));
    }
    if let Ok(path) = hetsel_bench::metrics_dump("table1") {
        eprintln!("[metrics] appended snapshot to {}", path.display());
    }
}
