//! Extension study: cooperative CPU+GPU execution across the suite.
//!
//! The paper's introduction motivates device selection with cooperative
//! schemes (Valero-Lara et al.) that split work between host and GPU. This
//! study extends the binary selector to a fractional one (`core::split`)
//! and quantifies, per kernel: the predicted best GPU fraction, the
//! predicted cooperative gain over the better single device, and the
//! suite-level aggregate.

use hetsel_core::{best_split, geomean, Platform};
use hetsel_polybench::{all_kernels, Dataset};

fn main() {
    let platform = Platform::power9_v100();
    println!("Cooperative split study on {}\n", platform.name);
    for ds in Dataset::paper_modes() {
        println!("== {ds} mode ==");
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>9} {:>7}",
            "kernel", "host-only", "gpu-only", "split", "gpu-frac", "gain"
        );
        let mut gains = Vec::new();
        let mut cooperative = 0usize;
        let mut total = 0usize;
        for (_, kernel, binding) in all_kernels() {
            let b = binding(ds);
            let Some(s) = best_split(&kernel, &b, &platform, 64) else {
                continue;
            };
            total += 1;
            if s.is_cooperative() {
                cooperative += 1;
            }
            gains.push(s.gain_over_best_single());
            println!(
                "{:<14} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>9.2} {:>6.2}x",
                kernel.name,
                s.host_only_s * 1e3,
                s.gpu_only_s * 1e3,
                s.predicted_s * 1e3,
                s.gpu_fraction,
                s.gain_over_best_single()
            );
        }
        println!("\n{ds}: {cooperative}/{total} kernels predicted to benefit from a strict split;");
        println!(
            "geomean predicted gain over best single device: {:.2}x\n",
            geomean(gains)
        );
    }
}
