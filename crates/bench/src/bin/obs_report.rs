//! Replays the Polybench suite through the whole observability surface —
//! flight recorder, accuracy observatory, metrics registry, Prometheus
//! exposition, versioned JSONL snapshot — and writes a machine-readable
//! report CI can validate:
//!
//! * `results/obs_report.json` — the versioned report: per-`(region,
//!   device)` accuracy rows (predicted vs directly-simulated runtimes for
//!   every suite region on every registered fleet device), a flight-ring
//!   summary by event kind, the registry delta across the replay, and the
//!   recorder's measured cache-hit overhead (decide with recording off vs
//!   on);
//! * `results/obs_report.prom` — the Prometheus text exposition of the
//!   post-replay registry;
//! * `results/obs_report.jsonl` — the three-line versioned JSONL snapshot
//!   (metrics, flight drain, accuracy table).
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin obs_report              # generate
//! cargo run --release -p hetsel-bench --bin obs_report -- --validate # check
//! ```
//!
//! `--validate` re-reads the three artifacts and fails (non-zero exit) if
//! the report schema is off, any suite region × fleet device pair has no
//! accuracy samples, the exposition does not re-parse, or the enabled
//! recorder costs the cache-hit decide more than the documented budget
//! (see [`OVERHEAD_RATIO_BUDGET`] / [`OVERHEAD_ABS_SLACK_NS`]).

use hetsel_core::{
    DecisionEngine, DecisionRequest, DeviceId, Dispatcher, DispatcherConfig, Fleet, Platform,
    Selector,
};
use hetsel_ir::Kernel;
use hetsel_obs::{
    accuracy, diff_snapshots, flight_recorder, jsonl_snapshot, prometheus_exposition, registry,
    set_flight_recording, validate_exposition, EventKind, SNAPSHOT_VERSION,
};
use hetsel_polybench::Dataset;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Recorder-on cache-hit budget: `off * RATIO + SLACK` nanoseconds. The
/// recorder's cost is *additive*, not proportional — one locked ticket
/// `fetch_add`, eleven atomic stores and the event pack, ~14 ns standalone
/// — so against a ~110 ns cache-hit decide a pure 1.10x ratio would
/// demand the impossible (an 11 ns recording). The ratio term carries the
/// "within 10%" intent; the absolute slack covers the recording's fixed
/// floor so the check gates regressions (a lock, an allocation, a cache
/// spill) rather than re-litigating arithmetic the design already pays.
const OVERHEAD_RATIO_BUDGET: f64 = 1.10;
const OVERHEAD_ABS_SLACK_NS: f64 = 8.0;

#[derive(Serialize, Deserialize)]
struct AccuracyEntry {
    region: String,
    device: String,
    samples: u64,
    mean_rel_error: f64,
    rel_error_variance: f64,
    mean_bias_s: f64,
    flips: u64,
}

#[derive(Serialize, Deserialize)]
struct FlightSummary {
    total_recorded: u64,
    drained: u64,
    decide_events: u64,
    dispatch_events: u64,
    fallback_events: u64,
    breaker_events: u64,
}

#[derive(Serialize, Deserialize)]
struct OverheadRow {
    name: String,
    iters: u64,
    total_ns: u64,
    ns_per_op: f64,
}

#[derive(Serialize, Deserialize)]
struct Doc {
    v: u32,
    generator: String,
    platform: String,
    fleet: Vec<String>,
    regions: Vec<String>,
    recorder_off: OverheadRow,
    recorder_on: OverheadRow,
    overhead_ratio: f64,
    prometheus_samples: u64,
    counter_deltas: u64,
    accuracy: Vec<AccuracyEntry>,
    flight: FlightSummary,
}

fn results_path(name: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{name}"))
}

/// One timed burst of `iters` calls; returns mean ns/op.
fn burst(iters: u64, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Noise-robust paired ns/op for the recorder-off and recorder-on
/// flavors of one workload: each round times one burst of each flavor
/// back to back and the per-flavor minimum is kept. Interleaving means
/// frequency drift or a noisy neighbour degrades both flavors' rounds
/// alike instead of biasing whichever happened to run second, and the
/// minimum is the estimator least sensitive to perturbation — noise only
/// ever makes a burst slower.
fn time_min_paired(rounds: u64, iters: u64, mut f: impl FnMut()) -> (OverheadRow, OverheadRow) {
    for on in [false, true] {
        set_flight_recording(on);
        for _ in 0..10_000 {
            f();
        }
    }
    let (mut off_best, mut on_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        set_flight_recording(false);
        off_best = off_best.min(burst(iters, &mut f));
        set_flight_recording(true);
        on_best = on_best.min(burst(iters, &mut f));
    }
    set_flight_recording(false);
    let row = |name: &str, best: f64| {
        let row = OverheadRow {
            name: name.to_string(),
            iters: rounds * iters,
            total_ns: (best * (rounds * iters) as f64) as u64,
            ns_per_op: best,
        };
        println!(
            "{:<24} {:>12.1} ns/op  (min of {} × {} interleaved iters)",
            row.name, row.ns_per_op, rounds, iters
        );
        row
    };
    (
        row("decide_hit_recorder_off", off_best),
        row("decide_hit_recorder_on", on_best),
    )
}

fn fleet_under_test(platform: &Platform) -> Fleet {
    Fleet::pair_labeled(platform, "v100").with_accelerator_from("k80", &Platform::power8_k80())
}

fn suite_regions() -> Vec<String> {
    hetsel_polybench::suite()
        .into_iter()
        .flat_map(|b| b.kernels)
        .map(|k| k.name.to_string())
        .collect()
}

fn generate() {
    let platform = Platform::power9_v100();
    let fleet = fleet_under_test(&platform);
    let labels: Vec<String> = fleet
        .device_ids()
        .filter_map(|id| fleet.label(id).map(str::to_string))
        .collect();
    let kernels: Vec<Kernel> = hetsel_polybench::suite()
        .into_iter()
        .flat_map(|b| b.kernels)
        .collect();
    let engine = DecisionEngine::new(
        Selector::new(platform.clone()).with_fleet(fleet.clone()),
        &kernels,
    );
    let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());

    let recorder = flight_recorder();
    let snap_before = registry().snapshot();
    set_flight_recording(true);

    // Replay: every suite region is (a) dispatched through the runtime —
    // flight events, dispatch-side accuracy samples — and (b) scored
    // against a *direct* simulation on every registered device, so the
    // observatory holds a row for each (region, device) pair even where
    // the dispatcher would only ever run the decided winner.
    for bench in hetsel_polybench::suite() {
        let binding = (bench.binding)(Dataset::Benchmark);
        for kernel in &bench.kernels {
            let region: &str = &kernel.name;
            dispatcher
                .dispatch(&DecisionRequest::new(kernel.name.clone(), binding.clone()))
                .unwrap_or_else(|e| panic!("{region} dispatches cleanly: {e:?}"));
            let engine = dispatcher.engine();
            let fleet_prediction = engine.decide(region, &binding);
            for id in fleet.device_ids() {
                let label = fleet.label(id).expect("fleet id resolves");
                let scoped = engine
                    .decide_for(region, &binding, id)
                    .unwrap_or_else(|| panic!("{region} decides for {label}"));
                let (predicted, other, observed) = if id == DeviceId::HOST {
                    let observed = hetsel_cpusim::simulate(
                        kernel,
                        &binding,
                        &platform.cpu,
                        platform.host_threads,
                    )
                    .map(|r| r.total_s());
                    let other = fleet_prediction.as_ref().and_then(|d| d.predicted_gpu_s);
                    (scoped.predicted_cpu_s, other, observed)
                } else {
                    let descriptor = &fleet.accelerator(id).expect("accel resolves").descriptor;
                    let observed =
                        hetsel_gpusim::simulate(kernel, &binding, descriptor).map(|r| r.total_s());
                    (scoped.predicted_gpu_s, scoped.predicted_cpu_s, observed)
                };
                let (Some(p), Some(o)) = (predicted, observed) else {
                    panic!("{region} on {label}: no prediction/simulation to score")
                };
                let flip = other.is_some_and(|q| (p <= q) != (o <= q));
                accuracy().observe(region, label, p, o, flip);
            }
        }
    }

    // Drain the replay's events before the overhead burst below wraps the
    // ring and evicts them (200k recorded decides ≫ the ring capacity).
    let events = recorder.drain();
    let rows = accuracy().snapshot();

    // Recorder overhead on the canonical cache-hit path (same shape as
    // bench_fleet's `pair_cache_hit`), off and on interleaved per round.
    set_flight_recording(false);
    let (gemm, gemm_binding) = hetsel_polybench::find_kernel("gemm").expect("gemm in suite");
    let hot_b = gemm_binding(Dataset::Benchmark);
    let hot_engine =
        DecisionEngine::new(Selector::new(platform.clone()), std::slice::from_ref(&gemm));
    hot_engine.decide("gemm", &hot_b);
    let (recorder_off, recorder_on) = time_min_paired(12, 50_000, || {
        black_box(hot_engine.decide(black_box("gemm"), black_box(&hot_b)));
    });
    let overhead_ratio = recorder_on.ns_per_op / recorder_off.ns_per_op;
    println!("recorder overhead ratio   {overhead_ratio:>10.3}x");

    // Export surface: snapshot the registry, render + self-validate the
    // Prometheus exposition, and write the three-line versioned JSONL
    // snapshot over the replay's drained events and accuracy rows.
    let snap_after = registry().snapshot();
    let delta = diff_snapshots(&snap_before, &snap_after);
    let exposition = prometheus_exposition(&snap_after);
    let prometheus_samples =
        validate_exposition(&exposition).expect("own exposition validates") as u64;
    let jsonl = jsonl_snapshot("obs_report", &snap_after, &events, &rows);

    let kind_count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count() as u64;
    let doc = Doc {
        v: SNAPSHOT_VERSION,
        generator: "hetsel-bench obs_report".to_string(),
        platform: platform.name.to_string(),
        fleet: labels,
        regions: suite_regions(),
        recorder_off,
        recorder_on,
        overhead_ratio,
        prometheus_samples,
        counter_deltas: delta.counter_deltas.len() as u64,
        accuracy: rows
            .iter()
            .map(|r| AccuracyEntry {
                region: r.region.clone(),
                device: r.device.clone(),
                samples: r.samples,
                mean_rel_error: r.mean_rel_error,
                rel_error_variance: r.rel_error_variance,
                mean_bias_s: r.mean_bias_s,
                flips: r.flips,
            })
            .collect(),
        flight: FlightSummary {
            total_recorded: recorder.total_recorded(),
            drained: events.len() as u64,
            decide_events: kind_count(EventKind::Decide),
            dispatch_events: kind_count(EventKind::DispatchComplete),
            fallback_events: kind_count(EventKind::Fallback),
            breaker_events: kind_count(EventKind::BreakerTransition),
        },
    };

    let json_path = results_path("obs_report.json");
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).expect("results/ is creatable");
    }
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    )
    .expect("results/obs_report.json is writable");
    std::fs::write(results_path("obs_report.prom"), exposition)
        .expect("results/obs_report.prom is writable");
    std::fs::write(results_path("obs_report.jsonl"), jsonl)
        .expect("results/obs_report.jsonl is writable");
    println!("\n[obs_report] wrote {}", json_path.display());
}

fn validate() {
    let json = std::fs::read_to_string(results_path("obs_report.json"))
        .expect("results/obs_report.json exists (run obs_report without --validate first)");
    let doc: Doc = serde_json::from_str(&json).expect("obs_report.json parses against the schema");
    assert_eq!(doc.v, SNAPSHOT_VERSION, "report version matches");
    assert!(!doc.fleet.is_empty() && !doc.regions.is_empty());

    // Every suite region × registered device has live accuracy stats.
    for region in &suite_regions() {
        for device in &doc.fleet {
            let row = doc
                .accuracy
                .iter()
                .find(|r| &r.region == region && &r.device == device)
                .unwrap_or_else(|| panic!("no accuracy row for ({region}, {device})"));
            assert!(row.samples >= 1, "({region}, {device}): zero samples");
            assert!(
                row.mean_rel_error.is_finite()
                    && row.rel_error_variance >= 0.0
                    && row.mean_bias_s.is_finite(),
                "({region}, {device}): degenerate stats"
            );
            assert!(
                row.flips <= row.samples,
                "({region}, {device}): flips > samples"
            );
        }
    }

    // The enabled recorder stays inside the documented cache-hit budget.
    let budget = doc.recorder_off.ns_per_op * OVERHEAD_RATIO_BUDGET + OVERHEAD_ABS_SLACK_NS;
    assert!(
        doc.recorder_on.ns_per_op <= budget,
        "recorder-on cache hit {:.1} ns exceeds budget {:.1} ns (off: {:.1} ns)",
        doc.recorder_on.ns_per_op,
        budget,
        doc.recorder_off.ns_per_op
    );
    assert!(doc.flight.drained > 0 && doc.flight.dispatch_events > 0);
    assert!(doc.counter_deltas > 0, "the replay moved no counters");

    // The exposition still parses as Prometheus text format.
    let prom = std::fs::read_to_string(results_path("obs_report.prom"))
        .expect("results/obs_report.prom exists");
    let samples = validate_exposition(&prom).expect("exposition validates");
    assert_eq!(
        samples as u64, doc.prometheus_samples,
        "sample count drifted"
    );

    // The JSONL snapshot is exactly the three versioned lines.
    let jsonl = std::fs::read_to_string(results_path("obs_report.jsonl"))
        .expect("results/obs_report.jsonl exists");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3, "JSONL snapshot has three lines");
    for (line, kind) in lines.iter().zip(["metrics", "flight", "accuracy"]) {
        let header = format!("{{\"v\":{SNAPSHOT_VERSION},\"kind\":\"{kind}\"");
        assert!(
            line.starts_with(&header) && line.ends_with('}'),
            "JSONL line does not open with {header}: {line:.60}"
        );
    }
    println!("[obs_report] validate: all checks passed");
}

fn main() {
    if std::env::args().any(|a| a == "--validate") {
        validate();
    } else {
        generate();
    }
}
