//! Micro-benchmark of the decision hot path, exported as machine-readable
//! JSON so a harness (or CI) can track regressions between builds:
//!
//! * `cold_compile_predict` — compile both models from the bare kernel and
//!   predict (no attribute database);
//! * `warm_evaluate` — evaluate the precompiled attribute-database entry;
//! * `cache_hit` — replay a memoized decision (the allocation-free path);
//! * `cache_miss` — evaluate + insert, every call a fresh key;
//! * `batch_hot` / `batch_cold` — `decide_batch` throughput per request,
//!   over an all-hit and an all-miss batch respectively (the cold path is
//!   where the rayon parallel evaluation pass applies);
//! * `cold_start_compile` / `cold_start_snapshot` — process-fresh start to
//!   first decision over the full 24-region suite: compile every model
//!   from IR vs restore the compiled-model snapshot from disk.
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin bench_decision
//! # → results/bench_decision.json
//! cargo run --release -p hetsel-bench --bin bench_decision -- --validate
//! # → checks the written results (snapshot cold start ≥ 10× faster)
//! ```

use hetsel_core::{
    AttributeDatabase, DecisionEngine, DecisionRequest, Platform, Selector, DEFAULT_DECISION_CACHE,
};
use hetsel_ir::Kernel;
use hetsel_polybench::{find_kernel, Dataset};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRow {
    name: String,
    iters: u64,
    total_ns: u64,
    ns_per_op: f64,
}

#[derive(Serialize)]
struct Doc {
    generator: &'static str,
    platform: String,
    results: Vec<BenchRow>,
}

/// Times `iters` calls of `f` after a short warmup; `ns_per_op` is the
/// wall-clock mean.
fn time(name: &str, iters: u64, mut f: impl FnMut()) -> BenchRow {
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total_ns = start.elapsed().as_nanos() as u64;
    let row = BenchRow {
        name: name.to_string(),
        iters,
        total_ns,
        ns_per_op: total_ns as f64 / iters as f64,
    };
    println!(
        "{:<24} {:>12.1} ns/op  ({} iters)",
        row.name, row.ns_per_op, row.iters
    );
    row
}

/// Required cold-start improvement of the snapshot path over the compile
/// path (`--validate`).
const COLD_START_MIN_SPEEDUP: f64 = 10.0;

fn results_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_decision.json")
}

/// `--validate`: re-reads the written results and fails loudly if the
/// snapshot cold start is not at least [`COLD_START_MIN_SPEEDUP`]× faster
/// than the compile cold start — the enforceable form of the snapshot
/// subsystem's reason to exist.
fn validate() -> ! {
    let path = results_path();
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); run bench_decision first",
            path.display()
        )
    });
    let doc: serde::Value = serde_json::from_str(&json).expect("results parse");
    let ns_per_op = |name: &str| -> f64 {
        let rows = match doc.get("results") {
            Some(serde::Value::Array(rows)) => rows,
            other => panic!("results array missing: {other:?}"),
        };
        let row = rows
            .iter()
            .find(|r| matches!(r.get("name"), Some(serde::Value::Str(s)) if s == name))
            .unwrap_or_else(|| panic!("row {name:?} missing from {}", path.display()));
        match row.get("ns_per_op") {
            Some(serde::Value::Float(v)) => *v,
            Some(serde::Value::Int(v)) => *v as f64,
            Some(serde::Value::UInt(v)) => *v as f64,
            other => panic!("ns_per_op missing for {name:?}: {other:?}"),
        }
    };
    let compile = ns_per_op("cold_start_compile");
    let snapshot = ns_per_op("cold_start_snapshot");
    let speedup = compile / snapshot;
    println!(
        "[bench_decision --validate] cold start: compile {compile:.0} ns, snapshot {snapshot:.0} ns → {speedup:.1}× (need ≥ {COLD_START_MIN_SPEEDUP}×)"
    );
    if speedup < COLD_START_MIN_SPEEDUP {
        eprintln!("[bench_decision --validate] FAIL: snapshot cold start too slow");
        std::process::exit(1);
    }
    println!("[bench_decision --validate] OK");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--validate") {
        validate();
    }
    let platform = Platform::power9_v100();
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let sel = Selector::new(platform.clone());
    let mut results = Vec::new();

    results.push(time("cold_compile_predict", 2_000, || {
        black_box(sel.decide(black_box(&kernel), black_box(&b)));
    }));

    let engine = DecisionEngine::new(
        Selector::new(platform.clone()),
        std::slice::from_ref(&kernel),
    );
    let warm_attrs = engine.database().region("gemm").unwrap();
    results.push(time("warm_evaluate", 20_000, || {
        black_box(sel.decide(black_box(warm_attrs), black_box(&b)));
    }));

    engine.decide("gemm", &b);
    results.push(time("cache_hit", 200_000, || {
        black_box(engine.decide(black_box("gemm"), black_box(&b)));
    }));

    let miss_engine = DecisionEngine::with_capacity(
        Selector::new(platform.clone()),
        std::slice::from_ref(&kernel),
        64,
    );
    let mut mb = b.clone();
    let mut n = 0i64;
    results.push(time("cache_miss", 20_000, || {
        n += 1;
        mb.set("n", 1024 + (n % 1_000_000));
        black_box(miss_engine.decide(black_box("gemm"), black_box(&mb)));
    }));

    // Batch throughput, per request. Hot: the same 256 keys every call
    // (all hits after the first). Cold: a fresh binding per request per
    // call, so every request takes the parallel evaluation path.
    const BATCH: u64 = 256;
    let hot_requests: Vec<DecisionRequest> = (0..BATCH)
        .map(|i| {
            let mut rb = b.clone();
            rb.set("n", 1024 + (i as i64 % 8));
            DecisionRequest::new("gemm", rb)
        })
        .collect();
    let batch_engine = DecisionEngine::new(
        Selector::new(platform.clone()),
        std::slice::from_ref(&kernel),
    );
    batch_engine.decide_batch(&hot_requests);
    let hot = time("batch_hot_total", 200, || {
        black_box(batch_engine.decide_batch(black_box(&hot_requests)));
    });
    results.push(BenchRow {
        name: "batch_hot_per_request".to_string(),
        iters: hot.iters * BATCH,
        total_ns: hot.total_ns,
        ns_per_op: hot.ns_per_op / BATCH as f64,
    });
    results.push(hot);

    let cold_engine = DecisionEngine::with_capacity(
        Selector::new(platform.clone()),
        std::slice::from_ref(&kernel),
        64,
    );
    let mut round = 0i64;
    let mut cold_requests = hot_requests.clone();
    let cold = time("batch_cold_total", 50, || {
        round += 1;
        for (i, r) in cold_requests.iter_mut().enumerate() {
            let mut rb = b.clone();
            rb.set("n", 4096 + round * BATCH as i64 + i as i64);
            *r = DecisionRequest::new("gemm", rb);
        }
        black_box(cold_engine.decide_batch(black_box(&cold_requests)));
    });
    results.push(BenchRow {
        name: "batch_cold_per_request".to_string(),
        iters: cold.iters * BATCH,
        total_ns: cold.total_ns,
        ns_per_op: cold.ns_per_op / BATCH as f64,
    });
    results.push(cold);

    // Cold start over the full suite: everything a fresh process does
    // before it can answer its first request. The compile path runs the
    // static analyses for all 24 regions; the snapshot path reads and
    // validates the container from disk. Same selector configuration, same
    // first decision, so the rows are directly comparable.
    let suite: Vec<Kernel> = hetsel_polybench::all_kernels()
        .into_iter()
        .map(|(_, k, _)| k)
        .collect();
    let snap_path =
        std::env::temp_dir().join(format!("bench-decision-{}.hsnp", std::process::id()));
    {
        let sel = Selector::new(platform.clone());
        let db = AttributeDatabase::compile(&suite, &sel);
        let mut bytes = Vec::new();
        db.dump(&sel, &mut bytes).expect("snapshot dumps");
        std::fs::write(&snap_path, &bytes).expect("snapshot is writable");
    }
    // Both closures clear the process-global IPDA memo first: it is what a
    // fresh process starts with, and leaving it warm would let the second
    // "cold" compile silently reuse the first one's analyses. The compile
    // path also rebuilds the kernel IR inside the timed region — a fresh
    // process has to construct what it compiles, while the snapshot path
    // needs no IR at all.
    results.push(time("cold_start_compile", 10, || {
        hetsel_ipda::clear_analysis_memo();
        let suite: Vec<Kernel> = hetsel_polybench::all_kernels()
            .into_iter()
            .map(|(_, k, _)| k)
            .collect();
        let sel = Selector::new(platform.clone());
        let db = AttributeDatabase::compile(&suite, &sel);
        let engine = DecisionEngine::from_database(sel, db, DEFAULT_DECISION_CACHE);
        black_box(engine.decide(black_box("gemm"), black_box(&b)));
    }));
    results.push(time("cold_start_snapshot", 10, || {
        hetsel_ipda::clear_analysis_memo();
        let sel = Selector::new(platform.clone());
        let bytes = std::fs::read(&snap_path).expect("snapshot readable");
        let db = AttributeDatabase::from_snapshot_bytes(&sel, &bytes).expect("snapshot loads");
        let engine = DecisionEngine::from_database(sel, db, DEFAULT_DECISION_CACHE);
        black_box(engine.decide(black_box("gemm"), black_box(&b)));
    }));
    let _ = std::fs::remove_file(&snap_path);

    let doc = Doc {
        generator: "hetsel-bench bench_decision",
        platform: platform.name.to_string(),
        results,
    };
    let path = results_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("results/ is creatable");
    }
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    std::fs::write(&path, json).expect("results/bench_decision.json is writable");
    println!("\n[bench_decision] wrote {}", path.display());
}
