//! `explain` — why did the selector send a region where it sent it?
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin explain -- gemm
//! cargo run --release -p hetsel-bench --bin explain -- gemm atax.k2 --dataset benchmark
//! cargo run --release -p hetsel-bench --bin explain -- --json --validate
//! ```
//!
//! For each requested kernel (default: the whole Polybench suite) the tool
//! compiles the attribute database, takes the offloading decision through a
//! [`DecisionEngine`], and prints the full evidence: resolved bindings,
//! both models' predicted times with their dominant cost-model terms
//! (MWP/CWP, coalesced vs. uncoalesced memory instructions, `#OMP_Rep`,
//! fork/join/chunking overheads), the winning margin, and per-phase
//! timings.
//!
//! Flags:
//! - `--json`      emit one machine-readable `ExplainReport` document
//! - `--validate`  check the report against the schema contract; non-zero
//!   exit on violation (CI runs this)
//! - `--dataset mini|test|benchmark` (default `test`)
//! - `--platform p9|p8` (default POWER9+V100)
//! - `--trace`     print the structured span tree to stderr while deciding
//! - `--metrics`   append a registry snapshot to `results/metrics.jsonl`
//! - `--dispatch`  route every kernel through the fault-tolerant
//!   [`Dispatcher`] so each explanation carries the dispatch terms (final
//!   device, attempts, retries, fallback reason, breaker states)
//! - `--gpu-fault P` with `--dispatch`: inject seeded transient GPU faults
//!   with probability `P` (deterministic; seed 42)

use hetsel_core::{
    DecisionEngine, DecisionRequest, Dispatcher, DispatcherConfig, ExplainReport, Platform,
    Selector,
};
use hetsel_fault::FaultPlan;
use hetsel_ir::Kernel;
use hetsel_polybench::{full_suite, Dataset};

fn main() {
    let mut kernels: Vec<String> = Vec::new();
    let mut json = false;
    let mut validate = false;
    let mut trace = false;
    let mut metrics = false;
    let mut dispatch = false;
    let mut gpu_fault = 0.0f64;
    let mut ds = Dataset::Test;
    let mut platform = Platform::power9_v100();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--validate" => validate = true,
            "--trace" => trace = true,
            "--metrics" => metrics = true,
            "--dispatch" => dispatch = true,
            "--gpu-fault" => {
                i += 1;
                gpu_fault = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(p) if (0.0..=1.0).contains(&p) => p,
                    _ => {
                        eprintln!("--gpu-fault needs a probability in [0, 1]");
                        std::process::exit(2);
                    }
                };
            }
            "--dataset" => {
                i += 1;
                ds = match args.get(i).map(String::as_str) {
                    Some("mini") => Dataset::Mini,
                    Some("test") => Dataset::Test,
                    Some("benchmark") => Dataset::Benchmark,
                    other => {
                        eprintln!("--dataset needs mini|test|benchmark, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--platform" => {
                i += 1;
                platform = match args.get(i).map(String::as_str) {
                    Some("p8") | Some("k80") => Platform::power8_k80(),
                    Some("p9") | Some("v100") => Platform::power9_v100(),
                    other => {
                        eprintln!("--platform needs p9|p8, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            name => kernels.push(name.to_string()),
        }
        i += 1;
    }

    if trace {
        hetsel_obs::set_subscriber(Some(std::sync::Arc::new(hetsel_obs::StderrSubscriber)));
    }
    hetsel_obs::metrics::set_timing(true);

    // Resolve the requested kernels (default: everything in the suite).
    let mut targets: Vec<(Kernel, hetsel_polybench::BindingFn)> = Vec::new();
    for b in full_suite() {
        for k in b.kernels {
            if kernels.is_empty() || kernels.iter().any(|n| n == &k.name) {
                targets.push((k, b.binding));
            }
        }
    }
    let found: Vec<&str> = targets.iter().map(|(k, _)| k.name.as_str()).collect();
    if let Some(missing) = kernels.iter().find(|n| !found.contains(&n.as_str())) {
        eprintln!("unknown kernel '{missing}'; available:{}", {
            let mut s = String::new();
            for b in full_suite() {
                for k in &b.kernels {
                    s.push(' ');
                    s.push_str(&k.name);
                }
            }
            s
        });
        std::process::exit(1);
    }

    let all: Vec<Kernel> = targets.iter().map(|(k, _)| k.clone()).collect();
    let engine = DecisionEngine::new(Selector::new(platform.clone()), &all);
    if gpu_fault > 0.0 && !dispatch {
        eprintln!("--gpu-fault only takes effect with --dispatch");
        std::process::exit(2);
    }

    let mut explanations = Vec::with_capacity(targets.len());
    let stats;
    if dispatch {
        // Route each kernel through the fault-tolerant runtime: the
        // explanations gain the dispatch block (attempts, retries,
        // fallback, breaker states). The fault plan is seeded, so repeated
        // runs tell the same story.
        let mut config = DispatcherConfig::default();
        if gpu_fault > 0.0 {
            config = config.with_gpu_faults(FaultPlan::transient(42, gpu_fault).with_jitter(1e-4));
        }
        let dispatcher = Dispatcher::new(engine, config);
        for (kernel, binding) in &targets {
            let request = DecisionRequest::new(&kernel.name, binding(ds));
            let (_, explanation) = dispatcher
                .dispatch_explained(&request)
                .expect("kernel came from the database and the host is healthy");
            explanations.push(explanation);
        }
        dispatcher.publish_health();
        dispatcher.engine().publish_stats();
        stats = dispatcher.engine().stats();
    } else {
        for (kernel, binding) in &targets {
            let b = binding(ds);
            let (_, explanation) = engine
                .decide_explained(&kernel.name, &b)
                .expect("kernel came from the database");
            explanations.push(explanation);
        }
        engine.publish_stats();
        stats = engine.stats();
    }
    eprintln!(
        "[cache] hits={} misses={} len={}/{} evictions={} shards={}",
        stats.hits, stats.misses, stats.len, stats.capacity, stats.evictions, stats.shards
    );

    let report = ExplainReport {
        platform: platform.name.to_string(),
        dataset: ds.to_string(),
        explanations,
    };

    let doc = serde_json::to_string_pretty(&report).expect("report serializes");
    if json {
        println!("{doc}");
    } else {
        println!("platform {}  dataset {}\n", report.platform, report.dataset);
        for e in &report.explanations {
            println!("{}", e.render_human());
        }
    }

    if metrics {
        match hetsel_bench::metrics_dump("explain") {
            Ok(path) => eprintln!("[metrics] appended snapshot to {}", path.display()),
            Err(e) => eprintln!("[metrics] dump failed: {e}"),
        }
    }

    if validate {
        match hetsel_core::validate_report_json(&doc) {
            Ok(r) => eprintln!(
                "[validate] ok: {} explanations conform to the schema",
                r.explanations.len()
            ),
            Err(e) => {
                eprintln!("[validate] FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
