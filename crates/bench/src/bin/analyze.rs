//! `analyze` — the full diagnostic stack for one kernel, in the spirit of
//! an `llvm-mca`-style command-line tool:
//!
//! ```text
//! cargo run --release -p hetsel-bench --bin analyze -- gemm benchmark
//! cargo run --release -p hetsel-bench --bin analyze -- atax.k2 test p8
//! ```
//!
//! Prints the IPDA access table, the MCA throughput report, both model
//! predictions with their intermediate quantities, the simulator ground
//! truth, and the selector's decision.

use hetsel_core::{best_split, Platform, Selector};
use hetsel_ir::Kernel;
use hetsel_models::{CoalescingMode, TripMode};
use hetsel_polybench::{full_suite, Dataset};

fn find(name: &str) -> Option<(Kernel, hetsel_polybench::BindingFn)> {
    for b in full_suite() {
        for k in b.kernels {
            if k.name == name {
                return Some((k, b.binding));
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gemm");
    let ds = match args.get(2).map(String::as_str) {
        Some("benchmark") => Dataset::Benchmark,
        Some("mini") => Dataset::Mini,
        _ => Dataset::Test,
    };
    let platform = match args.get(3).map(String::as_str) {
        Some("p8") | Some("k80") => Platform::power8_k80(),
        _ => Platform::power9_v100(),
    };

    let Some((kernel, binding)) = find(name) else {
        eprintln!("unknown kernel '{name}'; available:");
        for b in full_suite() {
            for k in &b.kernels {
                eprint!(" {}", k.name);
            }
        }
        eprintln!();
        std::process::exit(1);
    };
    let b = binding(ds);
    println!(
        "== {} on {} ({} mode, binding {})\n",
        kernel.name, platform.name, ds, b
    );
    println!("{}", hetsel_ir::to_openmp_c(&kernel));

    // --- IPDA ---
    println!("[ipda] inter-thread strides:");
    let info = hetsel_ipda::analyze(&kernel);
    for a in &info.accesses {
        println!(
            "  {:<6} {:<8} IPD_th = {:<10} resolved = {:<8} txns/warp = {:<3} {:?}",
            if a.is_store { "store" } else { "load" },
            kernel.array(a.array).name,
            format!("{}", a.thread_stride),
            a.thread_stride
                .resolve(&b)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".into()),
            a.transactions_per_warp(&b, 32),
            a.thread_pattern(&b),
        );
    }

    // --- MCA ---
    let tc = hetsel_ir::trips::resolve(&kernel, &b);
    let core = &platform.cpu_model.core;
    let max_depth = {
        let mut d = 0;
        kernel.walk_assigns(|loops, _| d = d.max(loops.len()));
        d
    };
    let mut inner_assigns: Vec<hetsel_ir::Assign> = Vec::new();
    kernel.walk_assigns(|loops, a| {
        if loops.len() == max_depth {
            inner_assigns.push(a.clone());
        }
    });
    let refs: Vec<&hetsel_ir::Assign> = inner_assigns.iter().collect();
    let body = hetsel_mca::lower_assigns(&refs, true);
    let sim = hetsel_mca::simulate(&body, core, hetsel_mca::SimOptions::default());
    println!("\n{}", hetsel_mca::report(&body, core, &sim));
    let cpi = hetsel_mca::parallel_iter_cycles(&kernel, core, &|l| tc.of(l), None);
    println!("[mca] Machine_cycles_per_iter (whole parallel body): {cpi:.1}");

    // --- Models ---
    let cp = hetsel_models::cpu::predict(
        &kernel,
        &b,
        &platform.cpu_model,
        platform.host_threads,
        TripMode::Runtime,
    );
    let gp = hetsel_models::gpu::predict(
        &kernel,
        &b,
        &platform.gpu_model,
        TripMode::Runtime,
        CoalescingMode::Ipda,
    );
    if let Some(c) = &cp {
        println!(
            "\n[cpu model] {:.3} ms  (chunk {}, {:.1} cycles/iter, vector x{:.2}, TLB cost {:.0} cycles)",
            c.seconds * 1e3,
            c.chunk,
            c.machine_cycles_per_iter,
            c.vector_factor,
            c.cache_cost
        );
    }
    if let Some(g) = &gp {
        println!(
            "[gpu model] {:.3} ms  (kernel {:.3} ms + transfer {:.3} ms; {:?}, MWP {:.1}, CWP {:.1}, N {}, #Rep {}, #OMP_Rep {}, coal {:.0} / uncoal {:.0})",
            g.seconds * 1e3,
            g.kernel_seconds * 1e3,
            g.transfer_seconds * 1e3,
            g.case,
            g.mwp,
            g.cwp,
            g.n_warps,
            g.rep,
            g.omp_rep,
            g.coal_mem_insts,
            g.uncoal_mem_insts
        );
    }

    // --- Simulators (ground truth) ---
    let sel = Selector::new(platform.clone());
    if let Some(m) = sel.measure(&kernel, &b) {
        println!(
            "\n[simulated] host {:.3} ms, gpu {:.3} ms  -> true offload speedup {:.2}x (oracle: {})",
            m.cpu_s * 1e3,
            m.gpu_s * 1e3,
            m.speedup().unwrap_or(f64::NAN),
            m.best_device()
        );
        let d = sel.decide(&kernel, &b);
        println!(
            "[decision ] {} (predicted speedup {:.2}x) — {}",
            d.device,
            d.predicted_speedup().unwrap_or(f64::NAN),
            if d.device == m.best_device() {
                "correct"
            } else {
                "WRONG"
            }
        );
    }

    // --- Cooperative split ---
    if let Some(s) = best_split(&kernel, &b, &platform, 64) {
        println!(
            "[split    ] best GPU fraction {:.2} -> predicted {:.3} ms (pure host {:.3} ms, pure gpu {:.3} ms)",
            s.gpu_fraction,
            s.predicted_s * 1e3,
            s.host_only_s * 1e3,
            s.gpu_only_s * 1e3
        );
    }
}
