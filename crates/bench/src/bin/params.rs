//! Regenerates **Tables II and III**: the CPU and GPU model parameter sheets.

use hetsel_models::{k80_params, power8_params, power9_params, v100_params};

fn main() {
    println!("Table II — CPU processor/parallel parameters (paper values)\n");
    for p in [power9_params(), power8_params()] {
        println!("[{}]", p.name);
        println!("  {:<34} {} GHz", "CPU Frequency", p.freq_ghz);
        println!("  {:<34} {}", "TLB Entries", p.tlb_entries);
        println!("  {:<34} {} cycles", "TLB Miss Penalty", p.tlb_miss_penalty);
        println!(
            "  {:<34} {} cycles",
            "Loop_overhead_per_iter", p.loop_overhead_per_iter
        );
        println!(
            "  {:<34} {} cycles",
            "Par_Schedule_Overhead_static", p.schedule_overhead_static
        );
        println!(
            "  {:<34} {} cycles",
            "Synchronization_Overhead", p.synchronization_overhead
        );
        println!("  {:<34} {} cycles", "Par_Startup", p.par_startup);
        println!(
            "  {:<34} {} cycles/thread  (EPCC-style fork/join scaling)",
            "Fork_per_thread", p.fork_per_thread
        );
        println!("  {:<34} {}", "Cores", p.cores);
        println!("  {:<34} {}", "Assumed unroll", p.unroll);
        println!(
            "  {:<34} {}",
            "Outer-loop vectorisation", p.outer_loop_vectorization
        );
        println!();
    }

    println!("Table III — GPU device/bus parameters\n");
    for g in [v100_params(), k80_params()] {
        let d = &g.device;
        println!("[{}]", d.name);
        println!("  {:<34} {}", "#SMs", d.num_sms);
        println!("  {:<34} {}", "Processor Cores", d.num_sms * d.cores_per_sm);
        println!(
            "  {:<34} {} MHz",
            "Processor Clock",
            (d.clock_ghz * 1000.0) as u64
        );
        println!("  {:<34} {} GB/s", "Memory Bandwidth", d.mem_bandwidth_gbs);
        println!(
            "  {:<34} {} ({} GB/s, {} µs latency)",
            "Host Interconnect", d.bus.name, d.bus.bandwidth_gbs, d.bus.latency_us
        );
        println!("  {:<34} {}", "Max Warps/SM", d.max_warps_per_sm);
        println!("  {:<34} {}", "Max Threads/SM", d.max_warps_per_sm * 32);
        println!("  {:<34} {} cycles/inst", "Issue Rate", g.issue_cycles);
        println!(
            "  {:<34} {} cycles",
            "Memory Access Latency", d.mem_latency_cycles
        );
        println!(
            "  {:<34} {} cycles",
            "Access on L2 Hit", d.l2_latency_cycles
        );
        println!(
            "  {:<34} {} cycles",
            "Access on L1 Hit",
            hetsel_gpusim::L1_LATENCY
        );
        println!("  {:<34} {} MiB", "L2 Size", d.l2_bytes / (1024 * 1024));
        println!(
            "  {:<34} coal {} / uncoal {} cycles",
            "Departure Delay", g.departure_del_coal, g.departure_del_uncoal
        );
        println!(
            "  {:<34} {} µs",
            "Kernel Launch Overhead", d.launch_overhead_us
        );
        println!();
    }
}
