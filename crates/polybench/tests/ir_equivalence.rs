//! IR ↔ executable equivalence for every program of the suite.
//!
//! Each Polybench program exists twice in this repository: as IR (what the
//! analyses, models and simulators consume) and as executable Rust (what
//! actually runs on the host). These tests interpret the IR kernels
//! numerically (`hetsel_ir::interp`) and require bit-for-bit-close
//! agreement with the hand-written sequential implementations — proving
//! the transcriptions are faithful, and therefore that every performance
//! number in the evaluation is about the right computation.

use hetsel_ir::{execute, Binding, Env};
use hetsel_polybench::data::{assert_close, poly_mat, poly_mat_alt, poly_vec, vec1};
use hetsel_polybench::dataset::Dataset;
use hetsel_polybench::*;

const N: usize = 24;

fn nb(n: usize) -> Binding {
    Binding::new().with("n", n as i64)
}

#[test]
fn gemm_ir_matches_executable() {
    let (alpha, beta) = (1.3f32, 0.7f32);
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    let c0 = poly_mat(N, N);

    let mut expected = c0.clone();
    gemm::run_seq(N, alpha, beta, &a, &b, &mut expected);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", b)
        .buffer("C", c0)
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    execute(&gemm::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["C"], &expected, N);
}

#[test]
fn two_mm_ir_matches_executable() {
    let (alpha, beta) = (1.1f32, 0.9f32);
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    let c = poly_mat(N, N);
    let d0 = poly_mat_alt(N, N);

    let mut d_expected = d0.clone();
    let mut tmp_expected = vec![0.0; N * N];
    two_mm::run_seq(
        N,
        alpha,
        beta,
        &a,
        &b,
        &c,
        &mut d_expected,
        &mut tmp_expected,
    );

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", b)
        .buffer("C", c)
        .buffer("D", d0)
        .buffer("tmp", vec![0.0; N * N])
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    for k in &two_mm::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["tmp"], &tmp_expected, N);
    assert_close(&env.buffers["D"], &d_expected, N);
}

#[test]
fn three_mm_ir_matches_executable() {
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    let c = poly_mat_alt(N, N);
    let d = poly_mat(N, N);
    let expected = three_mm::run_seq(N, &a, &b, &c, &d);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", b)
        .buffer("C", c)
        .buffer("D", d)
        .buffer("E", vec![0.0; N * N])
        .buffer("F", vec![0.0; N * N])
        .buffer("G", vec![0.0; N * N]);
    for k in &three_mm::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["G"], &expected, N * N);
}

#[test]
fn atax_ir_matches_executable() {
    let a = poly_mat(N, N);
    let x = poly_vec(N);
    let expected = atax::run_seq(N, &a, &x);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("x", x)
        .buffer("tmp", vec![0.0; N])
        .buffer("y", vec![0.0; N]);
    for k in &atax::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["y"], &expected, N);
}

#[test]
fn bicg_ir_matches_executable() {
    let a = poly_mat(N, N);
    let r = poly_vec(N);
    let p = vec1(N, |i| (i % 5) as f32 / 5.0);
    let (s_expected, q_expected) = bicg::run_seq(N, &a, &r, &p);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("r", r)
        .buffer("p", p)
        .buffer("s", vec![0.0; N])
        .buffer("q", vec![0.0; N]);
    for k in &bicg::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["s"], &s_expected, N);
    assert_close(&env.buffers["q"], &q_expected, N);
}

#[test]
fn mvt_ir_matches_executable() {
    let a = poly_mat(N, N);
    let y1 = poly_vec(N);
    let y2 = vec1(N, |i| (i % 9) as f32 / 9.0);
    let mut x1_expected = poly_vec(N);
    let mut x2_expected = y2.clone();
    mvt::run_seq(N, &a, &y1, &y2, &mut x1_expected, &mut x2_expected);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("y1", y1)
        .buffer("y2", y2.clone())
        .buffer("x1", poly_vec(N))
        .buffer("x2", y2);
    for k in &mvt::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["x1"], &x1_expected, N);
    assert_close(&env.buffers["x2"], &x2_expected, N);
}

#[test]
fn conv2d_ir_matches_executable() {
    let a = poly_mat(N, N);
    let expected = conv2d::run_seq(N, &a);

    let mut env = Env::new().buffer("A", a).buffer("B", vec![0.0; N * N]);
    for (di, row) in conv2d::C.iter().enumerate() {
        for (dj, c) in row.iter().enumerate() {
            env.scalars.insert(format!("c{di}{dj}"), *c);
        }
    }
    execute(&conv2d::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["B"], &expected, 9);
}

#[test]
fn conv3d_ir_matches_executable() {
    let n = 10usize;
    let a = vec1(n * n * n, |i| ((i * 31 + 7) % 128) as f32 / 128.0);
    let expected = conv3d::run_seq(n, &a);

    let names = [
        "c11", "c21", "c31", "c12", "c22", "c32", "c13", "c23", "c33", "c21b", "c23b",
    ];
    let mut env = Env::new().buffer("A", a).buffer("B", vec![0.0; n * n * n]);
    for (name, c) in names.iter().zip(conv3d::COEFFS) {
        env.scalars.insert((*name).to_string(), c);
    }
    execute(&conv3d::kernels()[0], &nb(n), &mut env).unwrap();
    assert_close(&env.buffers["B"], &expected, 11);
}

#[test]
fn gesummv_ir_matches_executable() {
    let (alpha, beta) = (1.4f32, 0.6f32);
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    let x = poly_vec(N);
    let expected = gesummv::run_seq(N, alpha, beta, &a, &b, &x);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", b)
        .buffer("x", x)
        .buffer("y", vec![0.0; N])
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    execute(&gesummv::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["y"], &expected, N);
}

#[test]
fn syrk_ir_matches_executable() {
    let (alpha, beta) = (1.2f32, 0.8f32);
    let a = poly_mat(N, N);
    let c0 = poly_mat_alt(N, N);
    let mut expected = c0.clone();
    syrk::run_seq(N, alpha, beta, &a, &mut expected);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("C", c0)
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    execute(&syrk::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["C"], &expected, N);
}

#[test]
fn syr2k_ir_matches_executable() {
    let (alpha, beta) = (0.9f32, 1.1f32);
    let a = poly_mat(N, N);
    let b = poly_mat_alt(N, N);
    let c0 = poly_mat(N, N);
    let mut expected = c0.clone();
    syr2k::run_seq(N, alpha, beta, &a, &b, &mut expected);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", b)
        .buffer("C", c0)
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    execute(&syr2k::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["C"], &expected, 2 * N);
}

#[test]
fn corr_ir_matches_executable() {
    // High-variance data (column std ≈ 2.9): polybench's `std < 0.1 → 1.0`
    // eps guard, which the branch-free IR does not carry, never fires.
    let n = N;
    let m = N;
    let gen = || {
        (0..n * m)
            .map(|k| ((k / m * 7 + k % m * 13) % 97) as f32 / 9.7)
            .collect::<Vec<f32>>()
    };
    let mut data_expected = gen();
    let expected = corr::run_seq(n, m, &mut data_expected);

    let b = Binding::new().with("n", n as i64).with("m", m as i64);
    let mut env = Env::new()
        .buffer("data", gen())
        .buffer("mean", vec![0.0; m])
        .buffer("std", vec![0.0; m])
        .buffer("symmat", vec![0.0; m * m])
        .scalar("float_n", n as f32)
        .scalar("sqrt_float_n", (n as f32).sqrt());
    for k in &corr::kernels() {
        execute(k, &b, &mut env).unwrap();
    }
    // Polybench sets the last diagonal element outside the loop nest; the
    // target region leaves it untouched. Apply the same epilogue.
    env.buffers.get_mut("symmat").unwrap()[(m - 1) * m + (m - 1)] = 1.0;
    assert_close(&env.buffers["data"], &data_expected, n);
    assert_close(&env.buffers["symmat"], &expected, n);
}

#[test]
fn covar_ir_matches_executable() {
    let n = N;
    let m = N;
    let mut data_expected = poly_mat(n, m);
    let expected = covar::run_seq(n, m, &mut data_expected);

    let b = Binding::new().with("n", n as i64).with("m", m as i64);
    let mut env = Env::new()
        .buffer("data", poly_mat(n, m))
        .buffer("mean", vec![0.0; m])
        .buffer("symmat", vec![0.0; m * m])
        .scalar("float_n", n as f32);
    for k in &covar::kernels() {
        execute(k, &b, &mut env).unwrap();
    }
    assert_close(&env.buffers["data"], &data_expected, 1);
    assert_close(&env.buffers["symmat"], &expected, n);
}

#[test]
fn jacobi2d_ir_matches_executable() {
    let mut expected = poly_mat(N, N);
    jacobi2d::run_seq(N, 1, &mut expected);

    let mut env = Env::new()
        .buffer("A", poly_mat(N, N))
        .buffer("B", vec![0.0; N * N])
        .scalar("c02", 0.2);
    for k in &jacobi2d::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["A"], &expected, 5);
}

#[test]
fn fdtd2d_ir_matches_executable() {
    let mut ex_e = poly_mat(N, N);
    let mut ey_e = poly_mat_alt(N, N);
    let mut hz_e = poly_mat(N, N);
    fdtd2d::step_seq(N, &mut ex_e, &mut ey_e, &mut hz_e);

    let mut env = Env::new()
        .buffer("ex", poly_mat(N, N))
        .buffer("ey", poly_mat_alt(N, N))
        .buffer("hz", poly_mat(N, N))
        .scalar("half", 0.5)
        .scalar("coeff", 0.7);
    for k in &fdtd2d::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["ex"], &ex_e, 4);
    assert_close(&env.buffers["ey"], &ey_e, 4);
    assert_close(&env.buffers["hz"], &hz_e, 4);
}

#[test]
fn gemver_ir_matches_executable() {
    let (alpha, beta) = (1.05f32, 0.95f32);
    let mk = || gemver::Inputs {
        a: poly_mat(N, N),
        u1: poly_vec(N),
        v1: vec1(N, |i| (i % 13) as f32 / 13.0),
        u2: vec1(N, |i| (i % 17) as f32 / 17.0),
        v2: vec1(N, |i| (i % 19) as f32 / 19.0),
        y: poly_vec(N),
        z: vec1(N, |i| (i % 23) as f32 / 23.0),
    };
    let mut inp = mk();
    let (x_e, w_e) = gemver::run_seq(N, alpha, beta, &mut inp);

    let fresh = mk();
    let mut env = Env::new()
        .buffer("A", fresh.a)
        .buffer("u1", fresh.u1)
        .buffer("v1", fresh.v1)
        .buffer("u2", fresh.u2)
        .buffer("v2", fresh.v2)
        .buffer("y", fresh.y)
        .buffer("z", fresh.z)
        .buffer("x", vec![0.0; N])
        .buffer("w", vec![0.0; N])
        .scalar("alpha", alpha)
        .scalar("beta", beta);
    for k in &gemver::kernels() {
        execute(k, &nb(N), &mut env).unwrap();
    }
    assert_close(&env.buffers["A"], &inp.a, 1);
    assert_close(&env.buffers["x"], &x_e, N);
    assert_close(&env.buffers["w"], &w_e, N * N);
}

#[test]
fn trmm_ir_matches_executable() {
    let alpha = 1.15f32;
    let a = poly_mat(N, N);
    let mut expected = poly_mat_alt(N, N);
    trmm::run_seq(N, alpha, &a, &mut expected);

    let mut env = Env::new()
        .buffer("A", a)
        .buffer("B", poly_mat_alt(N, N))
        .scalar("alpha", alpha);
    execute(&trmm::kernels()[0], &nb(N), &mut env).unwrap();
    assert_close(&env.buffers["B"], &expected, N);
}

#[test]
fn doitgen_ir_matches_executable() {
    let n = 10usize;
    let mut a_expected: Vec<f32> = (0..n * n * n)
        .map(|v| ((v * 13 + 5) % 64) as f32 / 64.0)
        .collect();
    let c4 = poly_mat(n, n);
    doitgen::run_seq(n, &mut a_expected, &c4);

    let mut env = Env::new()
        .buffer(
            "A",
            (0..n * n * n)
                .map(|v| ((v * 13 + 5) % 64) as f32 / 64.0)
                .collect(),
        )
        .buffer("C4", c4)
        .buffer("sum", vec![0.0; n * n * n]);
    execute(&doitgen::kernels()[0], &nb(n), &mut env).unwrap();
    assert_close(&env.buffers["A"], &a_expected, n);
}

#[test]
fn heat3d_ir_matches_executable() {
    let n = 10usize;
    let gen = || {
        (0..n * n * n)
            .map(|v| ((v * 29 + 3) % 100) as f32 / 100.0)
            .collect::<Vec<f32>>()
    };
    let mut a_e = gen();
    let mut b_e = vec![0.0f32; n * n * n];
    heat3d::run_seq(n, &mut a_e, &mut b_e);

    let mut env = Env::new()
        .buffer("A", gen())
        .buffer("B", vec![0.0; n * n * n])
        .scalar("c18", 0.125);
    for k in &heat3d::kernels() {
        execute(k, &nb(n), &mut env).unwrap();
    }
    assert_close(&env.buffers["A"], &a_e, 7);
    assert_close(&env.buffers["B"], &b_e, 7);
}

/// Census of IPDA verdicts over the paper suite in test mode — pinned so
/// that transcription or analysis changes that alter the coalescing
/// picture are caught (the counts quoted in EXPERIMENTS.md).
#[test]
fn ipda_census_is_pinned() {
    use hetsel_ipda::AccessPattern;
    let mut uniform = 0;
    let mut coalesced = 0;
    let mut strided = 0;
    let mut irregular = 0;
    for (_, kernel, binding) in all_kernels() {
        let b = binding(Dataset::Test);
        for a in hetsel_ipda::analyze(&kernel).accesses {
            match a.thread_pattern(&b) {
                AccessPattern::Uniform => uniform += 1,
                AccessPattern::Coalesced => coalesced += 1,
                AccessPattern::Strided => strided += 1,
                AccessPattern::Irregular => irregular += 1,
            }
        }
    }
    assert_eq!(irregular, 0, "Polybench is fully affine");
    assert_eq!((uniform, coalesced, strided), (19, 58, 23));
}
