//! DOITGEN (extended suite): the multi-resolution analysis kernel
//! `A[r][q][*] ← A[r][q][*] · C4` — a batched vector–matrix product over a
//! 3-D tensor, with a per-iteration scratch row. Exercises 3-D arrays,
//! two sequential inner loops, and a device-resident temporary.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "DOITGEN",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding (cubic tensor, `n × n × n`, matrix `n × n`).
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n3())
}

/// The single target region:
/// ```c
/// for (r, q)                 // parallel, collapse(2)
///   for (p) { s = 0; for (k) s += A[r][q][k] * C4[k][p]; sum[p] = s; }
///   for (p) A[r][q][p] = sum[r][q][p];
/// ```
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("doitgen");
    let a = kb.array(
        "A",
        4,
        &["n".into(), "n".into(), "n".into()],
        Transfer::InOut,
    );
    let c4 = kb.array("C4", 4, &["n".into(), "n".into()], Transfer::In);
    let sum = kb.array(
        "sum",
        4,
        &["n".into(), "n".into(), "n".into()],
        Transfer::Alloc,
    );
    let r = kb.parallel_loop(0, "n");
    let q = kb.parallel_loop(0, "n");
    let p = kb.seq_loop(0, "n");
    kb.acc_init("s", cexpr::lit(0.0));
    let k = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        kb.load(a, &[r.into(), q.into(), k.into()]),
        kb.load(c4, &[k.into(), p.into()]),
    );
    kb.assign_acc("s", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(sum, &[r.into(), q.into(), p.into()], "s");
    kb.end_loop();
    let p2 = kb.seq_loop(0, "n");
    let ld = kb.load(sum, &[r.into(), q.into(), p2.into()]);
    kb.store(a, &[r.into(), q.into(), p2.into()], ld);
    kb.end_loop();
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference: updates `a` (n³, row-major) in place.
pub fn run_seq(n: usize, a: &mut [f32], c4: &[f32]) {
    let mut sum = vec![0.0f32; n];
    for r in 0..n {
        for q in 0..n {
            let row = &a[(r * n + q) * n..(r * n + q) * n + n];
            for (p, sp) in sum.iter_mut().enumerate() {
                let mut s = 0.0;
                for (k, ak) in row.iter().enumerate() {
                    s += ak * c4[k * n + p];
                }
                *sp = s;
            }
            a[(r * n + q) * n..(r * n + q) * n + n].copy_from_slice(&sum);
        }
    }
}

/// Parallel host implementation.
pub fn run_par(n: usize, a: &mut [f32], c4: &[f32]) {
    a.par_chunks_mut(n).for_each(|row| {
        let mut sum = vec![0.0f32; n];
        for (p, sp) in sum.iter_mut().enumerate() {
            let mut s = 0.0;
            for (k, ak) in row.iter().enumerate() {
                s += ak * c4[k * n + p];
            }
            *sp = s;
        }
        row.copy_from_slice(&sum);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat};

    #[test]
    fn kernel_validates() {
        let k = &kernels()[0];
        k.validate().unwrap();
        assert_eq!(k.parallel_loops().len(), 2);
        // The scratch tensor never crosses the bus.
        let b = binding(Dataset::Mini);
        let n = Dataset::Mini.n3() as u64;
        assert_eq!(
            k.bytes_to_device(&b),
            Some(n * n * n * 4 + n * n * 4) // A + C4
        );
        assert_eq!(k.bytes_from_device(&b), Some(n * n * n * 4)); // A only
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 14;
        let mut a1: Vec<f32> = (0..n * n * n)
            .map(|v| ((v * 13 + 5) % 64) as f32 / 64.0)
            .collect();
        let mut a2 = a1.clone();
        let c4 = poly_mat(n, n);
        run_seq(n, &mut a1, &c4);
        run_par(n, &mut a2, &c4);
        assert_close(&a1, &a2, n);
    }

    #[test]
    fn identity_c4_is_a_fixed_point() {
        let n = 6;
        let mut a: Vec<f32> = (0..n * n * n).map(|v| v as f32).collect();
        let before = a.clone();
        let mut c4 = vec![0.0f32; n * n];
        for i in 0..n {
            c4[i * n + i] = 1.0;
        }
        run_seq(n, &mut a, &c4);
        assert_close(&a, &before, n);
    }
}
