//! FDTD-2D (extended suite): one time step of the 2-D finite-difference
//! time-domain method as three target regions (update `ey`, update `ex`,
//! update `hz`). Three coupled stencils over three fields — a heavier
//! multi-region program than anything in the paper's 13.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "FDTD2D",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The three target regions of one time step.
pub fn kernels() -> Vec<Kernel> {
    // k1: ey[i][j] -= 0.5*(hz[i][j] - hz[i-1][j]),  i in 1..n
    let mut kb = KernelBuilder::new("fdtd2d.k1");
    let hz = kb.array("hz", 4, &["n".into(), "n".into()], Transfer::In);
    let ey = kb.array("ey", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(1, "n");
    let j = kb.parallel_loop(0, "n");
    let diff = cexpr::sub(
        kb.load(hz, &[i.into(), j.into()]),
        kb.load(hz, &[Expr::var(i) - Expr::Const(1), j.into()]),
    );
    let upd = cexpr::sub(
        kb.load(ey, &[i.into(), j.into()]),
        cexpr::mul(cexpr::scalar("half"), diff),
    );
    kb.store(ey, &[i.into(), j.into()], upd);
    kb.end_loop();
    kb.end_loop();
    let k1 = kb.finish();

    // k2: ex[i][j] -= 0.5*(hz[i][j] - hz[i][j-1]),  j in 1..n
    let mut kb = KernelBuilder::new("fdtd2d.k2");
    let hz = kb.array("hz", 4, &["n".into(), "n".into()], Transfer::In);
    let ex = kb.array("ex", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(1, "n");
    let diff = cexpr::sub(
        kb.load(hz, &[i.into(), j.into()]),
        kb.load(hz, &[i.into(), Expr::var(j) - Expr::Const(1)]),
    );
    let upd = cexpr::sub(
        kb.load(ex, &[i.into(), j.into()]),
        cexpr::mul(cexpr::scalar("half"), diff),
    );
    kb.store(ex, &[i.into(), j.into()], upd);
    kb.end_loop();
    kb.end_loop();
    let k2 = kb.finish();

    // k3: hz[i][j] -= 0.7*(ex[i][j+1]-ex[i][j] + ey[i+1][j]-ey[i][j]),
    //     i,j in 0..n-1
    let mut kb = KernelBuilder::new("fdtd2d.k3");
    let ex = kb.array("ex", 4, &["n".into(), "n".into()], Transfer::In);
    let ey = kb.array("ey", 4, &["n".into(), "n".into()], Transfer::In);
    let hz = kb.array("hz", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(0, Expr::param("n") - Expr::Const(1));
    let dx = cexpr::sub(
        kb.load(ex, &[i.into(), Expr::var(j) + Expr::Const(1)]),
        kb.load(ex, &[i.into(), j.into()]),
    );
    let dy = cexpr::sub(
        kb.load(ey, &[Expr::var(i) + Expr::Const(1), j.into()]),
        kb.load(ey, &[i.into(), j.into()]),
    );
    let upd = cexpr::sub(
        kb.load(hz, &[i.into(), j.into()]),
        cexpr::mul(cexpr::scalar("coeff"), cexpr::add(dx, dy)),
    );
    kb.store(hz, &[i.into(), j.into()], upd);
    kb.end_loop();
    kb.end_loop();
    let k3 = kb.finish();

    vec![k1, k2, k3]
}

/// One sequential FDTD step over the three fields.
pub fn step_seq(n: usize, ex: &mut [f32], ey: &mut [f32], hz: &mut [f32]) {
    for i in 1..n {
        for j in 0..n {
            ey[i * n + j] -= 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
        }
    }
    for i in 0..n {
        for j in 1..n {
            ex[i * n + j] -= 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
        }
    }
    for i in 0..n - 1 {
        for j in 0..n - 1 {
            hz[i * n + j] -=
                0.7 * (ex[i * n + j + 1] - ex[i * n + j] + ey[(i + 1) * n + j] - ey[i * n + j]);
        }
    }
}

/// One parallel FDTD step.
pub fn step_par(n: usize, ex: &mut [f32], ey: &mut [f32], hz: &mut [f32]) {
    let hz_ref: &[f32] = hz;
    ey.par_chunks_mut(n)
        .enumerate()
        .skip(1)
        .for_each(|(i, row)| {
            for (j, v) in row.iter_mut().enumerate() {
                *v -= 0.5 * (hz_ref[i * n + j] - hz_ref[(i - 1) * n + j]);
            }
        });
    ex.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for j in 1..n {
            row[j] -= 0.5 * (hz_ref[i * n + j] - hz_ref[i * n + j - 1]);
        }
    });
    let ex_ref: &[f32] = ex;
    let ey_ref: &[f32] = ey;
    hz.par_chunks_mut(n)
        .enumerate()
        .take(n - 1)
        .for_each(|(i, row)| {
            for (j, v) in row.iter_mut().enumerate().take(n - 1) {
                *v -= 0.7
                    * (ex_ref[i * n + j + 1] - ex_ref[i * n + j] + ey_ref[(i + 1) * n + j]
                        - ey_ref[i * n + j]);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 3);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 48;
        let mut ex1 = poly_mat(n, n);
        let mut ey1 = poly_mat_alt(n, n);
        let mut hz1 = poly_mat(n, n);
        let (mut ex2, mut ey2, mut hz2) = (ex1.clone(), ey1.clone(), hz1.clone());
        for _ in 0..3 {
            step_seq(n, &mut ex1, &mut ey1, &mut hz1);
            step_par(n, &mut ex2, &mut ey2, &mut hz2);
        }
        assert_close(&ex1, &ex2, 4);
        assert_close(&ey1, &ey2, 4);
        assert_close(&hz1, &hz2, 4);
    }

    #[test]
    fn uniform_fields_stay_uniform_in_the_interior() {
        // Constant fields have zero spatial derivatives: the interior is a
        // fixed point of the update.
        let n = 12;
        let mut ex = vec![1.0f32; n * n];
        let mut ey = vec![1.0f32; n * n];
        let mut hz = vec![1.0f32; n * n];
        step_seq(n, &mut ex, &mut ey, &mut hz);
        assert_eq!(ex[5 * n + 5], 1.0);
        assert_eq!(ey[5 * n + 5], 1.0);
        assert_eq!(hz[5 * n + 5], 1.0);
    }
}
