//! GEMVER (extended suite): `B = A + u1·v1ᵀ + u2·v2ᵀ`, `x = β·Bᵀ·y + z`,
//! `w = α·B·x` — four target regions mixing rank-1 updates, transposed and
//! straight matrix–vector products, and a pure vector add.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "GEMVER",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The four target regions.
pub fn kernels() -> Vec<Kernel> {
    // k1: A[i][j] += u1[i]*v1[j] + u2[i]*v2[j]
    let mut kb = KernelBuilder::new("gemver.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::InOut);
    let u1 = kb.array("u1", 4, &["n".into()], Transfer::In);
    let v1 = kb.array("v1", 4, &["n".into()], Transfer::In);
    let u2 = kb.array("u2", 4, &["n".into()], Transfer::In);
    let v2 = kb.array("v2", 4, &["n".into()], Transfer::In);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    let r1 = cexpr::mul(kb.load(u1, &[i.into()]), kb.load(v1, &[j.into()]));
    let r2 = cexpr::mul(kb.load(u2, &[i.into()]), kb.load(v2, &[j.into()]));
    let upd = cexpr::add(kb.load(a, &[i.into(), j.into()]), cexpr::add(r1, r2));
    kb.store(a, &[i.into(), j.into()], upd);
    kb.end_loop();
    kb.end_loop();
    let k1 = kb.finish();

    // k2: x[i] += beta * sum_j A[j][i] * y[j]   (transposed walk)
    let mut kb = KernelBuilder::new("gemver.k2");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::In);
    let x = kb.array("x", 4, &["n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[j.into(), i.into()]), kb.load(y, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    let upd = cexpr::add(
        kb.load(x, &[i.into()]),
        cexpr::mul(cexpr::scalar("beta"), cexpr::scalar("acc")),
    );
    kb.store(x, &[i.into()], upd);
    kb.end_loop();
    let k2 = kb.finish();

    // k3: x[i] += z[i]
    let mut kb = KernelBuilder::new("gemver.k3");
    let z = kb.array("z", 4, &["n".into()], Transfer::In);
    let x = kb.array("x", 4, &["n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let upd = cexpr::add(kb.load(x, &[i.into()]), kb.load(z, &[i.into()]));
    kb.store(x, &[i.into()], upd);
    kb.end_loop();
    let k3 = kb.finish();

    // k4: w[i] = alpha * sum_j A[i][j] * x[j]
    let mut kb = KernelBuilder::new("gemver.k4");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let w = kb.array("w", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store(
        w,
        &[i.into()],
        cexpr::mul(cexpr::scalar("alpha"), cexpr::scalar("acc")),
    );
    kb.end_loop();
    let k4 = kb.finish();

    vec![k1, k2, k3, k4]
}

/// Inputs for the executable form.
pub struct Inputs {
    /// The matrix (updated in place).
    pub a: Vec<f32>,
    /// Rank-1 vectors.
    pub u1: Vec<f32>,
    /// Rank-1 vectors.
    pub v1: Vec<f32>,
    /// Rank-1 vectors.
    pub u2: Vec<f32>,
    /// Rank-1 vectors.
    pub v2: Vec<f32>,
    /// Accumulating vector.
    pub y: Vec<f32>,
    /// Offset vector.
    pub z: Vec<f32>,
}

/// Sequential reference: returns `(x, w)` and updates `inputs.a` in place.
pub fn run_seq(n: usize, alpha: f32, beta: f32, inp: &mut Inputs) -> (Vec<f32>, Vec<f32>) {
    let a = &mut inp.a;
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] += inp.u1[i] * inp.v1[j] + inp.u2[i] * inp.v2[j];
        }
    }
    let mut x = vec![0.0f32; n];
    for (i, xi) in x.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, yj) in inp.y.iter().enumerate() {
            acc += a[j * n + i] * yj;
        }
        *xi += beta * acc;
    }
    for (xi, zi) in x.iter_mut().zip(&inp.z) {
        *xi += zi;
    }
    let mut w = vec![0.0f32; n];
    for (i, wi) in w.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, xj) in x.iter().enumerate() {
            acc += a[i * n + j] * xj;
        }
        *wi = alpha * acc;
    }
    (x, w)
}

/// Parallel host implementation; same contract as [`run_seq`].
pub fn run_par(n: usize, alpha: f32, beta: f32, inp: &mut Inputs) -> (Vec<f32>, Vec<f32>) {
    {
        let (u1, v1, u2, v2) = (&inp.u1, &inp.v1, &inp.u2, &inp.v2);
        inp.a.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            for (j, v) in row.iter_mut().enumerate() {
                *v += u1[i] * v1[j] + u2[i] * v2[j];
            }
        });
    }
    let a = &inp.a;
    let mut x: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for (j, yj) in inp.y.iter().enumerate() {
                acc += a[j * n + i] * yj;
            }
            beta * acc
        })
        .collect();
    x.par_iter_mut().zip(&inp.z).for_each(|(xi, zi)| *xi += zi);
    let w: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for (j, xj) in x.iter().enumerate() {
                acc += a[i * n + j] * xj;
            }
            alpha * acc
        })
        .collect();
    (x, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_vec, vec1};

    fn inputs(n: usize) -> Inputs {
        Inputs {
            a: poly_mat(n, n),
            u1: poly_vec(n),
            v1: vec1(n, |i| (i % 13) as f32 / 13.0),
            u2: vec1(n, |i| (i % 17) as f32 / 17.0),
            v2: vec1(n, |i| (i % 19) as f32 / 19.0),
            y: poly_vec(n),
            z: vec1(n, |i| (i % 23) as f32 / 23.0),
        }
    }

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 4);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn transposed_and_straight_walks_have_opposite_strides() {
        use hetsel_ipda::{analyze, Stride};
        let ks = kernels();
        let k2a = analyze(&ks[1]);
        let a2 = k2a.accesses.iter().find(|x| x.array.0 == 0).unwrap();
        assert_eq!(a2.thread_stride, Stride::Known(1)); // A[j][i] coalesced
        let k4a = analyze(&ks[3]);
        let a4 = k4a.accesses.iter().find(|x| x.array.0 == 0).unwrap();
        assert!(matches!(a4.thread_stride, Stride::Symbolic(_))); // A[i][j] strided
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 44;
        let mut i1 = inputs(n);
        let mut i2 = inputs(n);
        let (x1, w1) = run_seq(n, 1.1, 0.9, &mut i1);
        let (x2, w2) = run_par(n, 1.1, 0.9, &mut i2);
        assert_close(&i1.a, &i2.a, 1);
        assert_close(&x1, &x2, n);
        assert_close(&w1, &w2, n * n);
    }
}
