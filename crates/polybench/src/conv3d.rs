//! 3DCONV: an 11-point 3-D stencil — the paper's headline generation-gap
//! case. Heavily memory-bound with minimal arithmetic intensity, it *loses*
//! 2.1× offloading to a K80 yet *gains* 4.41× on a V100, "benefiting greatly
//! from the Volta card's memory bandwidth of 900 GB/s, nearly double of the
//! K80's" (paper, Section III).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, CExpr, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The 11 stencil taps of polybench's 3-D convolution: offsets and the
/// coefficient scalar names.
const TAPS: [((i64, i64, i64), &str); 11] = [
    ((-1, -1, -1), "c11"),
    ((0, -1, -1), "c21"),
    ((1, -1, -1), "c31"),
    ((-1, 0, 0), "c12"),
    ((0, 0, 0), "c22"),
    ((1, 0, 0), "c32"),
    ((-1, 1, 1), "c13"),
    ((0, 1, 1), "c23"),
    ((1, 1, 1), "c33"),
    ((0, -1, 1), "c21b"),
    ((0, 1, -1), "c23b"),
];

/// Coefficient values used by the executable implementation, in TAPS order.
pub const COEFFS: [f32; 11] = [0.2, 0.5, -0.8, -0.3, 0.6, -0.9, 0.4, 0.7, 0.1, 0.25, -0.15];

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "3DCONV",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset (cubic inputs).
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n3())
}

/// The single target region: parallel `(i, j)`, sequential `k`.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("3dconv");
    let a = kb.array("A", 4, &["n".into(), "n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into(), "n".into()], Transfer::Out);
    let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let k = kb.seq_loop(1, Expr::param("n") - Expr::Const(1));
    let tap = |kb: &KernelBuilder, (di, dj, dk): (i64, i64, i64), c: &str| -> CExpr {
        let load = kb.load(
            a,
            &[
                Expr::var(i) + Expr::Const(di),
                Expr::var(j) + Expr::Const(dj),
                Expr::var(k) + Expr::Const(dk),
            ],
        );
        cexpr::mul(cexpr::scalar(c), load)
    };
    let mut acc = tap(&kb, TAPS[0].0, TAPS[0].1);
    for (off, c) in TAPS.iter().skip(1) {
        acc = cexpr::add(acc, tap(&kb, *off, c));
    }
    kb.store(b, &[i.into(), j.into(), k.into()], acc);
    kb.end_loop();
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

#[inline]
fn point(n: usize, a: &[f32], i: usize, j: usize, k: usize) -> f32 {
    let idx = |di: i64, dj: i64, dk: i64| {
        ((i as i64 + di) as usize * n + (j as i64 + dj) as usize) * n + (k as i64 + dk) as usize
    };
    let mut acc = 0.0;
    for (t, c) in TAPS.iter().zip(COEFFS) {
        let (di, dj, dk) = t.0;
        acc += c * a[idx(di, dj, dk)];
    }
    acc
}

/// Sequential reference; returns `B` (n³ elements).
pub fn run_seq(n: usize, a: &[f32]) -> Vec<f32> {
    let mut b = vec![0.0f32; n * n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                b[(i * n + j) * n + k] = point(n, a, i, j, k);
            }
        }
    }
    b
}

/// Parallel host implementation; returns `B`.
pub fn run_par(n: usize, a: &[f32]) -> Vec<f32> {
    let mut b = vec![0.0f32; n * n * n];
    b.par_chunks_mut(n * n)
        .enumerate()
        .skip(1)
        .take(n - 2)
        .for_each(|(i, plane)| {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    plane[j * n + k] = point(n, a, i, j, k);
                }
            }
        });
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, vec1};

    #[test]
    fn kernel_validates() {
        let k = &kernels()[0];
        k.validate().unwrap();
        assert_eq!(k.parallel_loops().len(), 2);
        let b = binding(Dataset::Mini);
        assert_eq!(k.parallel_iterations(&b), Some(14 * 14));
    }

    #[test]
    fn eleven_loads_per_point() {
        let k = &kernels()[0];
        let mut loads = 0usize;
        k.walk_assigns(|_, a| a.rhs.for_each_load(&mut |_| loads += 1));
        assert_eq!(loads, 11);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 18;
        let a = vec1(n * n * n, |i| ((i * 31 + 7) % 128) as f32 / 128.0);
        assert_close(&run_seq(n, &a), &run_par(n, &a), 11);
    }

    #[test]
    fn constant_input_gives_coefficient_sum() {
        let n = 6;
        let a = vec![1.0f32; n * n * n];
        let b = run_seq(n, &a);
        let csum: f32 = COEFFS.iter().sum();
        assert!((b[(n + 1) * n + 1] - csum).abs() < 1e-5);
    }
}
