//! 3MM: `E = A·B`, `F = C·D`, `G = E·F` — three chained matrix products,
//! each its own target region.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "3MM",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// Builds one plain-product region `out[i][j] = Σ_k x[i][k]·y[k][j]`.
fn product_kernel(name: &str, x_name: &str, y_name: &str, out_name: &str) -> Kernel {
    let mut kb = KernelBuilder::new(name);
    let x = kb.array(x_name, 4, &["n".into(), "n".into()], Transfer::In);
    let y = kb.array(y_name, 4, &["n".into(), "n".into()], Transfer::In);
    let out = kb.array(out_name, 4, &["n".into(), "n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let k = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        kb.load(x, &[i.into(), k.into()]),
        kb.load(y, &[k.into(), j.into()]),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(out, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    kb.finish()
}

/// The three target regions.
pub fn kernels() -> Vec<Kernel> {
    vec![
        product_kernel("3mm.k1", "A", "B", "E"),
        product_kernel("3mm.k2", "C", "D", "F"),
        product_kernel("3mm.k3", "E", "F", "G"),
    ]
}

fn matmul_seq(n: usize, x: &[f32], y: &[f32], out: &mut [f32]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += x[i * n + k] * y[k * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

fn matmul_par(n: usize, x: &[f32], y: &[f32], out: &mut [f32]) {
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in 0..n {
                acc += x[i * n + k] * y[k * n + j];
            }
            *cell = acc;
        }
    });
}

/// Sequential reference: all three phases; returns `G`.
pub fn run_seq(n: usize, a: &[f32], b: &[f32], c: &[f32], d: &[f32]) -> Vec<f32> {
    let mut e = vec![0.0; n * n];
    let mut f = vec![0.0; n * n];
    let mut g = vec![0.0; n * n];
    matmul_seq(n, a, b, &mut e);
    matmul_seq(n, c, d, &mut f);
    matmul_seq(n, &e, &f, &mut g);
    g
}

/// Parallel host implementation; returns `G`.
pub fn run_par(n: usize, a: &[f32], b: &[f32], c: &[f32], d: &[f32]) -> Vec<f32> {
    let mut e = vec![0.0; n * n];
    let mut f = vec![0.0; n * n];
    let mut g = vec![0.0; n * n];
    matmul_par(n, a, b, &mut e);
    matmul_par(n, c, d, &mut f);
    matmul_par(n, &e, &f, &mut g);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 3);
        for k in &ks {
            k.validate().unwrap();
            assert_eq!(k.parallel_loops().len(), 2);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 32;
        let a = poly_mat(n, n);
        let b = poly_mat_alt(n, n);
        let c = poly_mat_alt(n, n);
        let d = poly_mat(n, n);
        let g1 = run_seq(n, &a, &b, &c, &d);
        let g2 = run_par(n, &a, &b, &c, &d);
        assert_close(&g1, &g2, n * n);
    }
}
