//! The assembled benchmark suite.

use crate::dataset::Dataset;
use hetsel_ir::{Binding, Kernel};

/// A dataset-to-binding mapping function.
pub type BindingFn = fn(Dataset) -> Binding;

/// One Polybench program: a name, its outlined target regions, and its
/// dataset-to-binding mapping.
pub struct Benchmark {
    /// Display name (paper's capitalisation).
    pub name: &'static str,
    /// The program's target regions, in execution order.
    pub kernels: Vec<Kernel>,
    /// Runtime binding (array extents, trip-count parameters) per dataset.
    pub binding: fn(Dataset) -> Binding,
}

impl Benchmark {
    /// Convenience accessor.
    pub fn binding(&self, ds: Dataset) -> Binding {
        (self.binding)(ds)
    }
}

/// All benchmarks of the paper's evaluation, in Table I order.
pub fn suite() -> Vec<Benchmark> {
    paper_suite()
}

/// The paper's 13 programs.
pub fn paper_suite() -> Vec<Benchmark> {
    vec![
        crate::gemm::benchmark(),
        crate::two_mm::benchmark(),
        crate::three_mm::benchmark(),
        crate::atax::benchmark(),
        crate::bicg::benchmark(),
        crate::mvt::benchmark(),
        crate::conv2d::benchmark(),
        crate::conv3d::benchmark(),
        crate::gesummv::benchmark(),
        crate::syrk::benchmark(),
        crate::syr2k::benchmark(),
        crate::corr::benchmark(),
        crate::covar::benchmark(),
    ]
}

/// Additional Polybench programs beyond the paper's evaluation, used to
/// stress the framework on patterns the paper did not cover (multi-field
/// stencils, rank-1 updates, triangular inner loops, pure copies).
pub fn extended_suite() -> Vec<Benchmark> {
    vec![
        crate::jacobi2d::benchmark(),
        crate::fdtd2d::benchmark(),
        crate::gemver::benchmark(),
        crate::trmm::benchmark(),
        crate::doitgen::benchmark(),
        crate::heat3d::benchmark(),
    ]
}

/// Paper + extended programs.
pub fn full_suite() -> Vec<Benchmark> {
    let mut v = paper_suite();
    v.extend(extended_suite());
    v
}

/// Every kernel of the suite with its owning benchmark name and binding fn.
pub fn all_kernels() -> Vec<(&'static str, Kernel, BindingFn)> {
    suite()
        .into_iter()
        .flat_map(|b| {
            let binding = b.binding;
            let name = b.name;
            b.kernels.into_iter().map(move |k| (name, k, binding))
        })
        .collect()
}

/// Finds a kernel by its region name (e.g. `"atax.k2"`).
pub fn find_kernel(name: &str) -> Option<(Kernel, BindingFn)> {
    all_kernels()
        .into_iter()
        .find(|(_, k, _)| k.name == name)
        .map(|(_, k, b)| (k, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_benchmarks() {
        assert_eq!(suite().len(), 13);
    }

    /// The paper evaluates "25 kernels from 12 different benchmarks" while
    /// listing 13 program names; our faithful transcription of the 13
    /// programs' OpenMP target regions yields 24 kernels (documented in
    /// DESIGN.md).
    #[test]
    fn kernel_census() {
        assert_eq!(all_kernels().len(), 24);
    }

    #[test]
    fn every_kernel_validates_and_has_unique_name() {
        let ks = all_kernels();
        let mut names: Vec<&str> = ks.iter().map(|(_, k, _)| k.name.as_str()).collect();
        for (_, k, _) in &ks {
            k.validate().unwrap();
        }
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate kernel names");
    }

    #[test]
    fn every_kernel_resolves_under_paper_datasets() {
        for (_, k, binding) in all_kernels() {
            for ds in Dataset::paper_modes() {
                let b = binding(ds);
                assert!(
                    k.parallel_iterations(&b).unwrap_or(0) > 0,
                    "{} has empty parallel space in {ds}",
                    k.name
                );
                assert!(k.bytes_to_device(&b).unwrap_or(0) > 0, "{}", k.name);
                let tc = hetsel_ir::trips::resolve(&k, &b);
                assert!(tc.parallel_iterations(&k) > 0.0, "{}", k.name);
            }
        }
    }

    #[test]
    fn extended_suite_census() {
        let ext = extended_suite();
        assert_eq!(ext.len(), 6);
        let kernels: usize = ext.iter().map(|b| b.kernels.len()).sum();
        assert_eq!(kernels, 13); // JACOBI2D:2 FDTD2D:3 GEMVER:4 TRMM:1 DOITGEN:1 HEAT3D:2
        for b in &ext {
            for k in &b.kernels {
                k.validate().unwrap();
                for ds in Dataset::paper_modes() {
                    let bnd = (b.binding)(ds);
                    assert!(k.parallel_iterations(&bnd).unwrap_or(0) > 0, "{}", k.name);
                }
            }
        }
        assert_eq!(full_suite().len(), 19);
    }

    #[test]
    fn every_kernel_renders_as_openmp_c() {
        for b in full_suite() {
            for k in &b.kernels {
                let c = hetsel_ir::to_openmp_c(k);
                assert!(
                    c.contains("#pragma omp target teams distribute parallel for"),
                    "{}",
                    k.name
                );
                assert!(c.contains(&format!("// region: {}", k.name)));
                // Every declared array that is accessed appears in the body.
                let body = c.split_once("\n").unwrap().1;
                for a in &k.arrays {
                    assert!(
                        body.contains(&a.name),
                        "{}: array {} missing",
                        k.name,
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn find_kernel_works() {
        assert!(find_kernel("gemm").is_some());
        assert!(find_kernel("atax.k2").is_some());
        assert!(find_kernel("nope").is_none());
    }
}
