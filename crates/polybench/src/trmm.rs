//! TRMM (extended suite): triangular matrix multiplication
//! `B = alpha·Aᵀ·B` with `A` lower-triangular — a triangular *inner* loop
//! whose trip count depends on the parallel index, stressing the
//! trip-count resolution and the load-imbalance behaviour of both models.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "TRMM",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single target region:
/// `B[i][j] = alpha * (B[i][j] + Σ_{k>i} A[k][i] * B[k][j])`.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("trmm");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init("acc", kb.load(b, &[i.into(), j.into()]));
    let k = kb.seq_loop(Expr::var(i) + Expr::Const(1), "n");
    let prod = cexpr::mul(
        kb.load(a, &[k.into(), i.into()]),
        kb.load(b, &[k.into(), j.into()]),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store(
        b,
        &[i.into(), j.into()],
        cexpr::mul(cexpr::scalar("alpha"), cexpr::scalar("acc")),
    );
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference (updates `b` in place; reads the original `b`).
pub fn run_seq(n: usize, alpha: f32, a: &[f32], b: &mut [f32]) {
    let orig = b.to_vec();
    for i in 0..n {
        for j in 0..n {
            let mut acc = orig[i * n + j];
            for k in i + 1..n {
                acc += a[k * n + i] * orig[k * n + j];
            }
            b[i * n + j] = alpha * acc;
        }
    }
}

/// Parallel host implementation.
pub fn run_par(n: usize, alpha: f32, a: &[f32], b: &mut [f32]) {
    let orig = b.to_vec();
    b.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = orig[i * n + j];
            for k in i + 1..n {
                acc += a[k * n + i] * orig[k * n + j];
            }
            *cell = alpha * acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt};

    #[test]
    fn kernel_validates() {
        kernels()[0].validate().unwrap();
    }

    #[test]
    fn triangular_inner_loop_averages_half() {
        let k = &kernels()[0];
        let b = binding(Dataset::Mini);
        let tc = hetsel_ir::trips::resolve(k, &b);
        // Inner k loop: from i+1 to n, i at midpoint 32 -> ~31 trips.
        let inner_var = {
            let mut v = None;
            k.walk_assigns(|loops, _| {
                if loops.len() == 3 {
                    v = Some(loops[2].var);
                }
            });
            v.unwrap()
        };
        let t = tc.get(inner_var);
        assert!((t - 31.0).abs() <= 2.0, "inner trips {t}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 40;
        let a = poly_mat(n, n);
        let mut b1 = poly_mat_alt(n, n);
        let mut b2 = b1.clone();
        run_seq(n, 1.3, &a, &mut b1);
        run_par(n, 1.3, &a, &mut b2);
        assert_close(&b1, &b2, n);
    }

    #[test]
    fn identity_alpha_last_row_unchanged() {
        // For i = n-1 the sum is empty: B[n-1][j] = alpha * B[n-1][j].
        let n = 8;
        let a = poly_mat(n, n);
        let mut b = poly_mat_alt(n, n);
        let before: Vec<f32> = b[(n - 1) * n..].to_vec();
        run_seq(n, 2.0, &a, &mut b);
        for (j, prev) in before.iter().enumerate() {
            assert!((b[(n - 1) * n + j] - 2.0 * prev).abs() < 1e-5);
        }
    }
}
