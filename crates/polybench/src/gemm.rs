//! GEMM: `C = alpha·A·B + beta·C`.
//!
//! One target region: a `collapse(2)` parallel nest over `(i, j)` with a
//! sequential dot-product loop over `k`. The canonical compute-bound kernel
//! of the suite: coalesced accesses on the thread dimension (`B[k][j]`,
//! `C[i][j]`), a broadcast on `A[i][k]`, and a serial FMA chain per thread.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "GEMM",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single GEMM target region.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("gemm");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::In);
    let c = kb.array("C", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    // acc = beta * C[i][j]
    kb.acc_init(
        "acc",
        cexpr::mul(cexpr::scalar("beta"), kb.load(c, &[i.into(), j.into()])),
    );
    let k = kb.seq_loop(0, "n");
    // acc += alpha * A[i][k] * B[k][j]
    let prod = cexpr::mul(
        cexpr::scalar("alpha"),
        cexpr::mul(
            kb.load(a, &[i.into(), k.into()]),
            kb.load(b, &[k.into(), j.into()]),
        ),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(c, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference implementation.
pub fn run_seq(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = beta * c[i * n + j];
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Parallel (rayon) host implementation — the "host fallback path".
pub fn run_par(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = beta * *cell;
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[k * n + j];
            }
            *cell = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt};

    #[test]
    fn kernel_validates() {
        for k in kernels() {
            k.validate().unwrap();
        }
    }

    #[test]
    fn kernel_shape() {
        let k = &kernels()[0];
        assert_eq!(k.parallel_loops().len(), 2);
        let b = binding(Dataset::Mini);
        assert_eq!(k.parallel_iterations(&b), Some(64 * 64));
        // A + B + C in, C out.
        assert_eq!(k.bytes_to_device(&b), Some(3 * 64 * 64 * 4));
        assert_eq!(k.bytes_from_device(&b), Some(64 * 64 * 4));
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 48;
        let a = poly_mat(n, n);
        let b = poly_mat_alt(n, n);
        let mut c1 = poly_mat(n, n);
        let mut c2 = c1.clone();
        run_seq(n, 1.5, 0.5, &a, &b, &mut c1);
        run_par(n, 1.5, 0.5, &a, &b, &mut c2);
        assert_close(&c1, &c2, n);
    }

    #[test]
    fn known_small_product() {
        // 2x2 identity times B with alpha=1, beta=0 reproduces B.
        let n = 2;
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![9.0; 4];
        run_seq(n, 1.0, 0.0, &a, &b, &mut c);
        assert_eq!(c, b);
    }
}
