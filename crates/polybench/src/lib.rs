//! # hetsel-polybench — the Polybench OpenMP evaluation suite
//!
//! The 13 Polybench programs (24 outlined target regions) used in the
//! paper's evaluation, each in two forms:
//!
//! * **IR form** — a [`hetsel_ir::Kernel`] per target region, transcribed
//!   from the OpenMP 4.x Polybench sources: the input to IPDA, the machine
//!   code analyzer, the analytical models and the timing simulators;
//! * **executable form** — sequential and rayon-parallel Rust
//!   implementations of every program, used for correctness tests and as
//!   the real host-execution path in the examples.
//!
//! Datasets mirror the paper's `test` (1100×1100) and `benchmark`
//! (9600×9600) execution modes ([`Dataset`]).

#![warn(missing_docs)]

pub mod atax;
pub mod bicg;
pub mod conv2d;
pub mod conv3d;
pub mod corr;
pub mod covar;
pub mod data;
pub mod dataset;
pub mod doitgen;
pub mod fdtd2d;
pub mod gemm;
pub mod gemver;
pub mod gesummv;
pub mod heat3d;
pub mod jacobi2d;
pub mod mvt;
pub mod suite;
pub mod syr2k;
pub mod syrk;
pub mod three_mm;
pub mod trmm;
pub mod two_mm;

pub use dataset::Dataset;
pub use suite::{
    all_kernels, extended_suite, find_kernel, full_suite, paper_suite, suite, Benchmark, BindingFn,
};
