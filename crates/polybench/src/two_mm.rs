//! 2MM: `tmp = alpha·A·B`, then `D = tmp·C + beta·D` — two chained GEMMs
//! outlined as two separate target regions (the paper counts each region as
//! a kernel).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "2MM",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The two target regions.
pub fn kernels() -> Vec<Kernel> {
    // k1: tmp[i][j] = sum_k alpha * A[i][k] * B[k][j]
    let mut kb = KernelBuilder::new("2mm.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::In);
    let tmp = kb.array("tmp", 4, &["n".into(), "n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let k = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        cexpr::scalar("alpha"),
        cexpr::mul(
            kb.load(a, &[i.into(), k.into()]),
            kb.load(b, &[k.into(), j.into()]),
        ),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(tmp, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    let k1 = kb.finish();

    // k2: D[i][j] = beta*D[i][j] + sum_k tmp[i][k] * C[k][j]
    let mut kb = KernelBuilder::new("2mm.k2");
    let tmp = kb.array("tmp", 4, &["n".into(), "n".into()], Transfer::In);
    let c = kb.array("C", 4, &["n".into(), "n".into()], Transfer::In);
    let d = kb.array("D", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init(
        "acc",
        cexpr::mul(cexpr::scalar("beta"), kb.load(d, &[i.into(), j.into()])),
    );
    let k = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        kb.load(tmp, &[i.into(), k.into()]),
        kb.load(c, &[k.into(), j.into()]),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(d, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    let k2 = kb.finish();

    vec![k1, k2]
}

/// Sequential reference: both phases.
#[allow(clippy::too_many_arguments)] // mirrors the C benchmark's signature
pub fn run_seq(
    n: usize,
    alpha: f32,
    beta: f32,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    tmp: &mut [f32],
) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[k * n + j];
            }
            tmp[i * n + j] = acc;
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = beta * d[i * n + j];
            for k in 0..n {
                acc += tmp[i * n + k] * c[k * n + j];
            }
            d[i * n + j] = acc;
        }
    }
}

/// Parallel host implementation.
#[allow(clippy::too_many_arguments)]
pub fn run_par(
    n: usize,
    alpha: f32,
    beta: f32,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    tmp: &mut [f32],
) {
    tmp.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[k * n + j];
            }
            *cell = acc;
        }
    });
    d.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = beta * *cell;
            for k in 0..n {
                acc += tmp[i * n + k] * c[k * n + j];
            }
            *cell = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt, poly_vec};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
        }
        let _ = poly_vec(4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 40;
        let a = poly_mat(n, n);
        let b = poly_mat_alt(n, n);
        let c = poly_mat(n, n);
        let mut d1 = poly_mat_alt(n, n);
        let mut d2 = d1.clone();
        let mut t1 = vec![0.0; n * n];
        let mut t2 = vec![0.0; n * n];
        run_seq(n, 1.2, 0.8, &a, &b, &c, &mut d1, &mut t1);
        run_par(n, 1.2, 0.8, &a, &b, &c, &mut d2, &mut t2);
        assert_close(&d1, &d2, n);
        assert_close(&t1, &t2, n);
    }
}
