//! Deterministic input-data generators in the Polybench style.
//!
//! Polybench initialises inputs with small closed-form expressions of the
//! indices so results are reproducible without I/O. The generators here do
//! the same, normalised into a range that keeps the f32 kernels numerically
//! tame at 9600×9600.

/// A row-major matrix of `rows × cols` filled by `f(i, j)`.
pub fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
    let mut m = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            m.push(f(i, j));
        }
    }
    m
}

/// A vector of `n` elements filled by `f(i)`.
pub fn vec1(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
    (0..n).map(f).collect()
}

/// Polybench's canonical matrix fill: `((i*j) mod k) / k`, kept in [0, 1).
pub fn poly_mat(rows: usize, cols: usize) -> Vec<f32> {
    mat(rows, cols, |i, j| ((i * j + 1) % 1024) as f32 / 1024.0)
}

/// A fill with row/column structure, useful for transposed-access kernels.
pub fn poly_mat_alt(rows: usize, cols: usize) -> Vec<f32> {
    mat(rows, cols, |i, j| ((i + 7 * j + 3) % 512) as f32 / 512.0)
}

/// Canonical vector fill: `(i mod k) / k`.
pub fn poly_vec(n: usize) -> Vec<f32> {
    vec1(n, |i| ((i + 1) % 256) as f32 / 256.0)
}

/// Maximum absolute elementwise difference between two slices.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Asserts two result buffers agree within a tolerance scaled to the
/// reduction length (f32 summation order differs between sequential and
/// parallel execution).
pub fn assert_close(a: &[f32], b: &[f32], reduction_len: usize) {
    let tol = 1e-4 * (reduction_len.max(1) as f32);
    let d = max_abs_diff(a, b);
    assert!(d <= tol, "max diff {d} exceeds tolerance {tol}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_is_row_major() {
        let m = mat(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn poly_fills_bounded() {
        for v in poly_mat(17, 13) {
            assert!((0.0..1.0).contains(&v));
        }
        for v in poly_vec(100) {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn diff_helpers() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert_close(&a, &a, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn assert_close_rejects_large_diff() {
        assert_close(&[0.0], &[1.0], 1);
    }
}
