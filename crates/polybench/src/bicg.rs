//! BICG: the two matrix–vector sub-kernels of the BiCG stabilised solver,
//! `s = Aᵀ·r` and `q = A·p`, as two target regions with opposite coalescing
//! behaviour.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "BICG",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The two target regions.
pub fn kernels() -> Vec<Kernel> {
    // k1: s[j] = sum_i A[i][j] * r[i]   (parallel j — coalesced on A)
    let mut kb = KernelBuilder::new("bicg.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let r = kb.array("r", 4, &["n".into()], Transfer::In);
    let s = kb.array("s", 4, &["n".into()], Transfer::Out);
    let j = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(r, &[i.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(s, &[j.into()], "acc");
    kb.end_loop();
    let k1 = kb.finish();

    // k2: q[i] = sum_j A[i][j] * p[j]   (parallel i — row-wise)
    let mut kb = KernelBuilder::new("bicg.k2");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let p = kb.array("p", 4, &["n".into()], Transfer::In);
    let q = kb.array("q", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(p, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(q, &[i.into()], "acc");
    kb.end_loop();
    let k2 = kb.finish();

    vec![k1, k2]
}

/// Sequential reference; returns `(s, q)`.
pub fn run_seq(n: usize, a: &[f32], r: &[f32], p: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut s = vec![0.0f32; n];
    for (j, sj) in s.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (i, ri) in r.iter().enumerate() {
            acc += a[i * n + j] * ri;
        }
        *sj = acc;
    }
    let mut q = vec![0.0f32; n];
    for (i, qi) in q.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, pj) in p.iter().enumerate() {
            acc += a[i * n + j] * pj;
        }
        *qi = acc;
    }
    (s, q)
}

/// Parallel host implementation; returns `(s, q)`.
pub fn run_par(n: usize, a: &[f32], r: &[f32], p: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let s: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|j| {
            let mut acc = 0.0;
            for (i, ri) in r.iter().enumerate() {
                acc += a[i * n + j] * ri;
            }
            acc
        })
        .collect();
    let q: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for (j, pj) in p.iter().enumerate() {
                acc += a[i * n + j] * pj;
            }
            acc
        })
        .collect();
    (s, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_vec};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 56;
        let a = poly_mat(n, n);
        let r = poly_vec(n);
        let p = poly_vec(n);
        let (s1, q1) = run_seq(n, &a, &r, &p);
        let (s2, q2) = run_par(n, &a, &r, &p);
        assert_close(&s1, &s2, n);
        assert_close(&q1, &q2, n);
    }
}
