//! Dataset presets matching the paper's two execution modes.
//!
//! Each Polybench program runs in a `test` and a `benchmark` configuration
//! which "differ only in the size of the program's input, being 1100×1100 and
//! 9600×9600, respectively, in most programs" (paper, Section III). The 3-D
//! convolution uses cubic inputs scaled to a comparable footprint.

use std::fmt;

/// The two input-size modes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// `test` mode: 1100×1100 matrices.
    Test,
    /// `benchmark` mode: 9600×9600 matrices.
    Benchmark,
    /// A small mode for unit tests and examples (not part of the paper).
    Mini,
}

impl Dataset {
    /// Square-matrix dimension for 2-D benchmarks.
    pub fn n(self) -> i64 {
        match self {
            Dataset::Test => 1100,
            Dataset::Benchmark => 9600,
            Dataset::Mini => 64,
        }
    }

    /// Cubic dimension for the 3-D convolution (chosen so the array
    /// footprint is of the same order as the 2-D programs).
    pub fn n3(self) -> i64 {
        match self {
            Dataset::Test => 160,
            Dataset::Benchmark => 450,
            Dataset::Mini => 16,
        }
    }

    /// Both paper modes, in presentation order.
    pub fn paper_modes() -> [Dataset; 2] {
        [Dataset::Test, Dataset::Benchmark]
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataset::Test => write!(f, "test"),
            Dataset::Benchmark => write!(f, "benchmark"),
            Dataset::Mini => write!(f, "mini"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(Dataset::Test.n(), 1100);
        assert_eq!(Dataset::Benchmark.n(), 9600);
    }

    #[test]
    fn conv3d_footprint_comparable() {
        // 3-D footprint (elements) within ~2x of the 2-D footprint.
        for ds in Dataset::paper_modes() {
            let flat = ds.n() * ds.n();
            let cubic = ds.n3() * ds.n3() * ds.n3();
            assert!(
                cubic > flat / 2 && cubic < flat * 16,
                "{ds}: {cubic} vs {flat}"
            );
        }
    }
}
