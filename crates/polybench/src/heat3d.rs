//! HEAT-3D (extended suite): one time step of the 7-point heat-equation
//! stencil, ping-ponging between two fields (`B ← stencil(A)`,
//! `A ← stencil(B)`), as two target regions — the heaviest 3-D
//! bandwidth-bound pattern in the repository.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, CExpr, Expr, Kernel, KernelBuilder, LoopVarId, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "HEAT3D",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding (cubic fields).
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n3())
}

/// Builds one stencil region `dst = stencil(src)`.
fn stencil_kernel(name: &str, src_name: &str, dst_name: &str) -> Kernel {
    let mut kb = KernelBuilder::new(name);
    let src = kb.array(
        src_name,
        4,
        &["n".into(), "n".into(), "n".into()],
        Transfer::In,
    );
    let dst = kb.array(
        dst_name,
        4,
        &["n".into(), "n".into(), "n".into()],
        Transfer::Out,
    );
    let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let k = kb.seq_loop(1, Expr::param("n") - Expr::Const(1));
    let at = |kb: &KernelBuilder, di: i64, dj: i64, dk: i64| -> CExpr {
        kb.load(
            src,
            &[
                Expr::var(i) + Expr::Const(di),
                Expr::var(j) + Expr::Const(dj),
                Expr::var(k) + Expr::Const(dk),
            ],
        )
    };
    // 0.125 * (second difference) per axis + centre.
    let centre2 = cexpr::mul(cexpr::lit(2.0), at(&kb, 0, 0, 0));
    let axis = |kb: &KernelBuilder, d: (i64, i64, i64)| -> CExpr {
        cexpr::mul(
            cexpr::scalar("c18"),
            cexpr::sub(
                cexpr::add(at(kb, d.0, d.1, d.2), at(kb, -d.0, -d.1, -d.2)),
                centre2.clone(),
            ),
        )
    };
    let sum = cexpr::add(
        cexpr::add(axis(&kb, (1, 0, 0)), axis(&kb, (0, 1, 0))),
        cexpr::add(axis(&kb, (0, 0, 1)), at(&kb, 0, 0, 0)),
    );
    kb.store(dst, &[i.into(), j.into(), k.into()], sum);
    kb.end_loop();
    kb.end_loop();
    kb.end_loop();
    let _ = LoopVarId(0);
    kb.finish()
}

/// The two target regions of one time step.
pub fn kernels() -> Vec<Kernel> {
    vec![
        stencil_kernel("heat3d.k1", "A", "B"),
        stencil_kernel("heat3d.k2", "B", "A"),
    ]
}

fn stencil_point(n: usize, src: &[f32], i: usize, j: usize, k: usize) -> f32 {
    let at = |di: i64, dj: i64, dk: i64| {
        src[((i as i64 + di) as usize * n + (j as i64 + dj) as usize) * n
            + (k as i64 + dk) as usize]
    };
    let c = at(0, 0, 0);
    0.125 * (at(1, 0, 0) + at(-1, 0, 0) - 2.0 * c)
        + 0.125 * (at(0, 1, 0) + at(0, -1, 0) - 2.0 * c)
        + 0.125 * (at(0, 0, 1) + at(0, 0, -1) - 2.0 * c)
        + c
}

fn stencil_seq(n: usize, src: &[f32], dst: &mut [f32]) {
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                dst[(i * n + j) * n + k] = stencil_point(n, src, i, j, k);
            }
        }
    }
}

/// Sequential reference: one full step (A→B→A).
pub fn run_seq(n: usize, a: &mut [f32], b: &mut [f32]) {
    stencil_seq(n, a, b);
    stencil_seq(n, b, a);
}

/// Parallel host implementation: one full step.
pub fn run_par(n: usize, a: &mut [f32], b: &mut [f32]) {
    let stencil_par = |src: &[f32], dst: &mut [f32]| {
        dst.par_chunks_mut(n * n)
            .enumerate()
            .skip(1)
            .take(n - 2)
            .for_each(|(i, plane)| {
                for j in 1..n - 1 {
                    for k in 1..n - 1 {
                        plane[j * n + k] = stencil_point(n, src, i, j, k);
                    }
                }
            });
    };
    stencil_par(a, b);
    stencil_par(b, a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::assert_close;

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
            assert_eq!(k.parallel_loops().len(), 2);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 14;
        let mut a1: Vec<f32> = (0..n * n * n)
            .map(|v| ((v * 29 + 3) % 100) as f32 / 100.0)
            .collect();
        let mut b1 = vec![0.0f32; n * n * n];
        let mut a2 = a1.clone();
        let mut b2 = b1.clone();
        run_seq(n, &mut a1, &mut b1);
        run_par(n, &mut a2, &mut b2);
        assert_close(&a1, &a2, 7);
        assert_close(&b1, &b2, 7);
    }

    #[test]
    fn uniform_field_is_a_fixed_point() {
        let n = 8;
        let mut a = vec![3.0f32; n * n * n];
        let mut b = vec![0.0f32; n * n * n];
        run_seq(n, &mut a, &mut b);
        // Interior of B and A hold the constant.
        assert!((b[(4 * n + 4) * n + 4] - 3.0).abs() < 1e-6);
        assert!((a[(4 * n + 4) * n + 4] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn heat_diffuses_a_spike() {
        let n = 10;
        let mut a = vec![0.0f32; n * n * n];
        a[(5 * n + 5) * n + 5] = 8.0;
        let mut b = vec![0.0f32; n * n * n];
        stencil_seq(n, &a, &mut b);
        assert!(b[(5 * n + 5) * n + 5] < 8.0);
        assert!(b[(5 * n + 5) * n + 6] > 0.0);
    }
}
