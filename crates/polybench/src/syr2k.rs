//! SYR2K: symmetric rank-2k update
//! `C = alpha·A·Bᵀ + alpha·B·Aᵀ + beta·C` — twice the memory pressure of
//! SYRK with the same mixed-coalescing signature.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "SYR2K",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single target region.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("syr2k");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::In);
    let c = kb.array("C", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init(
        "acc",
        cexpr::mul(cexpr::scalar("beta"), kb.load(c, &[i.into(), j.into()])),
    );
    let k = kb.seq_loop(0, "n");
    let p1 = cexpr::mul(
        cexpr::scalar("alpha"),
        cexpr::mul(
            kb.load(a, &[i.into(), k.into()]),
            kb.load(b, &[j.into(), k.into()]),
        ),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), p1));
    let p2 = cexpr::mul(
        cexpr::scalar("alpha"),
        cexpr::mul(
            kb.load(b, &[i.into(), k.into()]),
            kb.load(a, &[j.into(), k.into()]),
        ),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), p2));
    kb.end_loop();
    kb.store_acc(c, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference.
pub fn run_seq(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = beta * c[i * n + j];
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[j * n + k];
                acc += alpha * b[i * n + k] * a[j * n + k];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Parallel host implementation.
pub fn run_par(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = beta * *cell;
            for k in 0..n {
                acc += alpha * a[i * n + k] * b[j * n + k];
                acc += alpha * b[i * n + k] * a[j * n + k];
            }
            *cell = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt};

    #[test]
    fn kernel_validates() {
        kernels()[0].validate().unwrap();
    }

    #[test]
    fn four_loads_in_inner_loop() {
        let k = &kernels()[0];
        let mut loads = 0;
        k.walk_assigns(|loops, a| {
            if loops.len() == 3 {
                a.rhs.for_each_load(&mut |_| loads += 1);
            }
        });
        assert_eq!(loads, 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 36;
        let a = poly_mat(n, n);
        let b = poly_mat_alt(n, n);
        let mut c1 = poly_mat(n, n);
        let mut c2 = c1.clone();
        run_seq(n, 0.8, 1.2, &a, &b, &mut c1);
        run_par(n, 0.8, 1.2, &a, &b, &mut c2);
        assert_close(&c1, &c2, 2 * n);
    }
}
