//! MVT: `x1 += A·y1` and `x2 += Aᵀ·y2` — two matrix–vector target regions
//! over the same matrix, one row-wise, one column-wise.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "MVT",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The two target regions.
pub fn kernels() -> Vec<Kernel> {
    // k1: x1[i] += sum_j A[i][j] * y1[j]
    let mut kb = KernelBuilder::new("mvt.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let y1 = kb.array("y1", 4, &["n".into()], Transfer::In);
    let x1 = kb.array("x1", 4, &["n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", kb.load(x1, &[i.into()]));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(y1, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(x1, &[i.into()], "acc");
    kb.end_loop();
    let k1 = kb.finish();

    // k2: x2[i] += sum_j A[j][i] * y2[j]   (transposed walk, coalesced on GPU)
    let mut kb = KernelBuilder::new("mvt.k2");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let y2 = kb.array("y2", 4, &["n".into()], Transfer::In);
    let x2 = kb.array("x2", 4, &["n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", kb.load(x2, &[i.into()]));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[j.into(), i.into()]), kb.load(y2, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(x2, &[i.into()], "acc");
    kb.end_loop();
    let k2 = kb.finish();

    vec![k1, k2]
}

/// Sequential reference; updates `x1` and `x2` in place.
pub fn run_seq(n: usize, a: &[f32], y1: &[f32], y2: &[f32], x1: &mut [f32], x2: &mut [f32]) {
    for (i, xi) in x1.iter_mut().enumerate() {
        let mut acc = *xi;
        for (j, yj) in y1.iter().enumerate() {
            acc += a[i * n + j] * yj;
        }
        *xi = acc;
    }
    for (i, xi) in x2.iter_mut().enumerate() {
        let mut acc = *xi;
        for (j, yj) in y2.iter().enumerate() {
            acc += a[j * n + i] * yj;
        }
        *xi = acc;
    }
}

/// Parallel host implementation.
pub fn run_par(n: usize, a: &[f32], y1: &[f32], y2: &[f32], x1: &mut [f32], x2: &mut [f32]) {
    x1.par_iter_mut().enumerate().for_each(|(i, xi)| {
        let mut acc = *xi;
        for (j, yj) in y1.iter().enumerate() {
            acc += a[i * n + j] * yj;
        }
        *xi = acc;
    });
    x2.par_iter_mut().enumerate().for_each(|(i, xi)| {
        let mut acc = *xi;
        for (j, yj) in y2.iter().enumerate() {
            acc += a[j * n + i] * yj;
        }
        *xi = acc;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_vec};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 60;
        let a = poly_mat(n, n);
        let y1 = poly_vec(n);
        let y2 = poly_vec(n);
        let mut x1a = poly_vec(n);
        let mut x2a = poly_vec(n);
        let mut x1b = x1a.clone();
        let mut x2b = x2a.clone();
        run_seq(n, &a, &y1, &y2, &mut x1a, &mut x2a);
        run_par(n, &a, &y1, &y2, &mut x1b, &mut x2b);
        assert_close(&x1a, &x1b, n);
        assert_close(&x2a, &x2b, n);
    }
}
