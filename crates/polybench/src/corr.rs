//! CORR: the Pearson correlation-matrix benchmark — four target regions
//! (column means, column standard deviations, data standardisation, and the
//! triangular correlation product).
//!
//! The paper singles CORR out in Section III: its kernels "contain
//! sequential loops to be executed by each parallel worker, which are
//! well-suited for SIMD vectorization and stand to benefit from POWER9's
//! broader vector operation support" — making GPU offloading profitable on
//! the POWER8 + K80 machine but *unprofitable* on POWER9 + V100.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "CORR",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset (`n` data rows × `m` features, square in
/// the paper's configurations; `float_n` is the f32 row count).
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n()).with("m", ds.n())
}

/// The four target regions.
pub fn kernels() -> Vec<Kernel> {
    vec![mean_kernel(), std_kernel(), reduce_kernel(), corr_kernel()]
}

/// `mean[j] = Σ_i data[i][j] / float_n`.
fn mean_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("corr.mean");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::In);
    let mean = kb.array("mean", 4, &["m".into()], Transfer::Out);
    let j = kb.parallel_loop(0, "m");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let ld = kb.load(data, &[i.into(), j.into()]);
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), ld));
    kb.end_loop();
    kb.store(
        mean,
        &[j.into()],
        cexpr::div(cexpr::scalar("acc"), cexpr::scalar("float_n")),
    );
    kb.end_loop();
    kb.finish()
}

/// `std[j] = sqrt(Σ_i (data[i][j] − mean[j])² / float_n)`.
///
/// Polybench guards tiny deviations (`std < eps → 1.0`); the IR is
/// branch-free, so the guard is folded into the paper's 50%-taken branch
/// abstraction rather than represented structurally.
fn std_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("corr.std");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::In);
    let mean = kb.array("mean", 4, &["m".into()], Transfer::In);
    let std = kb.array("std", 4, &["m".into()], Transfer::Out);
    let j = kb.parallel_loop(0, "m");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let diff = cexpr::sub(
        kb.load(data, &[i.into(), j.into()]),
        kb.load(mean, &[j.into()]),
    );
    kb.assign_acc("d", diff);
    kb.assign_acc(
        "acc",
        cexpr::add(
            cexpr::acc(),
            cexpr::mul(cexpr::scalar("d"), cexpr::scalar("d")),
        ),
    );
    kb.end_loop();
    kb.store(
        std,
        &[j.into()],
        cexpr::sqrt(cexpr::div(cexpr::scalar("acc"), cexpr::scalar("float_n"))),
    );
    kb.end_loop();
    kb.finish()
}

/// `data[i][j] = (data[i][j] − mean[j]) / (sqrt(float_n)·std[j])`.
fn reduce_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("corr.reduce");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::InOut);
    let mean = kb.array("mean", 4, &["m".into()], Transfer::In);
    let std = kb.array("std", 4, &["m".into()], Transfer::In);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "m");
    let centered = cexpr::sub(
        kb.load(data, &[i.into(), j.into()]),
        kb.load(mean, &[j.into()]),
    );
    let denom = cexpr::mul(cexpr::scalar("sqrt_float_n"), kb.load(std, &[j.into()]));
    kb.store(data, &[i.into(), j.into()], cexpr::div(centered, denom));
    kb.end_loop();
    kb.end_loop();
    kb.finish()
}

/// Triangular correlation product:
/// `symmat[j1][j2] = Σ_i data[i][j1]·data[i][j2]` for `j2 > j1`.
fn corr_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("corr.corr");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::In);
    let symmat = kb.array("symmat", 4, &["m".into(), "m".into()], Transfer::Out);
    let j1 = kb.parallel_loop(0, Expr::param("m") - Expr::Const(1));
    kb.store(symmat, &[j1.into(), j1.into()], cexpr::lit(1.0));
    let j2 = kb.seq_loop(Expr::var(j1) + Expr::Const(1), "m");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        kb.load(data, &[i.into(), j1.into()]),
        kb.load(data, &[i.into(), j2.into()]),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(symmat, &[j1.into(), j2.into()], "acc");
    kb.store_acc(symmat, &[j2.into(), j1.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    kb.finish()
}

/// Sequential reference: full pipeline; returns the correlation matrix and
/// leaves the standardised data in `data`.
pub fn run_seq(n: usize, m: usize, data: &mut [f32]) -> Vec<f32> {
    let float_n = n as f32;
    let mut mean = vec![0.0f32; m];
    for (j, mj) in mean.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += data[i * m + j];
        }
        *mj = acc / float_n;
    }
    let mut std = vec![0.0f32; m];
    for (j, sj) in std.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            let d = data[i * m + j] - mean[j];
            acc += d * d;
        }
        let s = (acc / float_n).sqrt();
        *sj = if s <= 0.1 { 1.0 } else { s };
    }
    let sfn = float_n.sqrt();
    for i in 0..n {
        for j in 0..m {
            data[i * m + j] = (data[i * m + j] - mean[j]) / (sfn * std[j]);
        }
    }
    let mut symmat = vec![0.0f32; m * m];
    for j1 in 0..m.saturating_sub(1) {
        symmat[j1 * m + j1] = 1.0;
        for j2 in j1 + 1..m {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            symmat[j1 * m + j2] = acc;
            symmat[j2 * m + j1] = acc;
        }
    }
    if m > 0 {
        symmat[(m - 1) * m + (m - 1)] = 1.0;
    }
    symmat
}

/// Parallel host implementation; same contract as [`run_seq`].
pub fn run_par(n: usize, m: usize, data: &mut [f32]) -> Vec<f32> {
    let float_n = n as f32;
    let mean: Vec<f32> = (0..m)
        .into_par_iter()
        .map(|j| {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j];
            }
            acc / float_n
        })
        .collect();
    let std: Vec<f32> = (0..m)
        .into_par_iter()
        .map(|j| {
            let mut acc = 0.0;
            for i in 0..n {
                let d = data[i * m + j] - mean[j];
                acc += d * d;
            }
            let s = (acc / float_n).sqrt();
            if s <= 0.1 {
                1.0
            } else {
                s
            }
        })
        .collect();
    let sfn = float_n.sqrt();
    data.par_chunks_mut(m).for_each(|row| {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - mean[j]) / (sfn * std[j]);
        }
    });
    let data_ref: &[f32] = data;
    let mut symmat = vec![0.0f32; m * m];
    let rows: Vec<Vec<f32>> = (0..m)
        .into_par_iter()
        .map(|j1| {
            let mut row = vec![0.0f32; m];
            row[j1] = 1.0;
            for j2 in j1 + 1..m {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += data_ref[i * m + j1] * data_ref[i * m + j2];
                }
                row[j2] = acc;
            }
            row
        })
        .collect();
    for (j1, row) in rows.iter().enumerate() {
        for (j2, v) in row.iter().enumerate().skip(j1) {
            symmat[j1 * m + j2] = *v;
            symmat[j2 * m + j1] = *v;
        }
    }
    symmat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat_alt};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 4);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn triangular_region_has_outer_dependent_bound() {
        let k = corr_kernel();
        let tc = hetsel_ir::trips::resolve(&k, &binding(Dataset::Mini));
        // j1 trips = m-1 = 63; j2 averages ~ m/2; i = n = 64.
        let ploops = k.parallel_loops();
        assert_eq!(tc.of(ploops[0]), 63.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 40;
        let m = 40;
        let mut d1 = poly_mat_alt(n, m);
        let mut d2 = d1.clone();
        let s1 = run_seq(n, m, &mut d1);
        let s2 = run_par(n, m, &mut d2);
        assert_close(&d1, &d2, n);
        assert_close(&s1, &s2, n);
    }

    #[test]
    fn diagonal_is_one_and_bounded() {
        let n = 30;
        let m = 24;
        let mut d = poly_mat_alt(n, m);
        let s = run_seq(n, m, &mut d);
        for j in 0..m {
            assert!((s[j * m + j] - 1.0).abs() < 1e-5);
        }
        for v in &s {
            assert!(v.abs() <= 1.0 + 1e-3, "correlation out of range: {v}");
        }
    }
}
