//! 2DCONV: a 3×3 stencil convolution — the suite's canonical memory-bound,
//! low-arithmetic-intensity kernel (9 loads, 8 FMAs, 1 store per point).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// Stencil coefficients (polybench's c11..c33).
pub const C: [[f32; 3]; 3] = [[0.2, -0.3, 0.4], [0.5, 0.6, 0.7], [-0.8, -0.9, 0.1]];

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "2DCONV",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single target region.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("2dconv");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::Out);
    let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    // acc = Σ_{di,dj} c[di][dj] * A[i+di-1][j+dj-1]
    let mut acc = cexpr::mul(
        cexpr::scalar("c00"),
        kb.load(a, &[Expr::var(i) - 1.into(), Expr::var(j) - 1.into()]),
    );
    for di in 0..3i64 {
        for dj in 0..3i64 {
            if di == 0 && dj == 0 {
                continue;
            }
            let load = kb.load(
                a,
                &[
                    Expr::var(i) + Expr::Const(di - 1),
                    Expr::var(j) + Expr::Const(dj - 1),
                ],
            );
            acc = cexpr::add(acc, cexpr::mul(cexpr::scalar(&format!("c{di}{dj}")), load));
        }
    }
    kb.store(b, &[i.into(), j.into()], acc);
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference; returns `B`.
pub fn run_seq(n: usize, a: &[f32]) -> Vec<f32> {
    let mut b = vec![0.0f32; n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let mut acc = 0.0;
            for (di, row) in C.iter().enumerate() {
                for (dj, c) in row.iter().enumerate() {
                    acc += c * a[(i + di - 1) * n + (j + dj - 1)];
                }
            }
            b[i * n + j] = acc;
        }
    }
    b
}

/// Parallel host implementation; returns `B`.
pub fn run_par(n: usize, a: &[f32]) -> Vec<f32> {
    let mut b = vec![0.0f32; n * n];
    b.par_chunks_mut(n)
        .enumerate()
        .skip(1)
        .take(n - 2)
        .for_each(|(i, row)| {
            for j in 1..n - 1 {
                let mut acc = 0.0;
                for (di, crow) in C.iter().enumerate() {
                    for (dj, c) in crow.iter().enumerate() {
                        acc += c * a[(i + di - 1) * n + (j + dj - 1)];
                    }
                }
                row[j] = acc;
            }
        });
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat};
    use hetsel_ir::FpOps;

    #[test]
    fn kernel_validates() {
        let k = &kernels()[0];
        k.validate().unwrap();
        // Interior points only: (n-2)^2 work items.
        let b = binding(Dataset::Mini);
        assert_eq!(k.parallel_iterations(&b), Some(62 * 62));
    }

    #[test]
    fn arithmetic_intensity_is_low() {
        // 9 loads vs 17 flops per point: memory-bound with f32 data.
        let k = &kernels()[0];
        let mut loads = 0usize;
        let mut ops = FpOps::default();
        k.walk_assigns(|_, a| {
            a.rhs.for_each_load(&mut |_| loads += 1);
            ops = ops + a.rhs.fp_op_counts();
        });
        assert_eq!(loads, 9);
        assert_eq!(ops.mul, 9);
        assert_eq!(ops.add_sub, 8);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 50;
        let a = poly_mat(n, n);
        assert_close(&run_seq(n, &a), &run_par(n, &a), 9);
    }

    #[test]
    fn constant_input_gives_coefficient_sum() {
        let n = 8;
        let a = vec![1.0f32; n * n];
        let b = run_seq(n, &a);
        let csum: f32 = C.iter().flatten().sum();
        assert!((b[n + 1] - csum).abs() < 1e-5);
        // Border stays zero.
        assert_eq!(b[0], 0.0);
    }
}
