//! COVAR: the covariance-matrix benchmark — three target regions (column
//! means, mean-centering, and the triangular covariance product).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "COVAR",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n()).with("m", ds.n())
}

/// The three target regions.
pub fn kernels() -> Vec<Kernel> {
    vec![mean_kernel(), center_kernel(), covar_kernel()]
}

/// `mean[j] = Σ_i data[i][j] / float_n`.
fn mean_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("covar.mean");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::In);
    let mean = kb.array("mean", 4, &["m".into()], Transfer::Out);
    let j = kb.parallel_loop(0, "m");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let ld = kb.load(data, &[i.into(), j.into()]);
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), ld));
    kb.end_loop();
    kb.store(
        mean,
        &[j.into()],
        cexpr::div(cexpr::scalar("acc"), cexpr::scalar("float_n")),
    );
    kb.end_loop();
    kb.finish()
}

/// `data[i][j] −= mean[j]`.
fn center_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("covar.center");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::InOut);
    let mean = kb.array("mean", 4, &["m".into()], Transfer::In);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "m");
    let centered = cexpr::sub(
        kb.load(data, &[i.into(), j.into()]),
        kb.load(mean, &[j.into()]),
    );
    kb.store(data, &[i.into(), j.into()], centered);
    kb.end_loop();
    kb.end_loop();
    kb.finish()
}

/// `symmat[j1][j2] = Σ_i data[i][j1]·data[i][j2]` for `j2 ≥ j1`.
fn covar_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("covar.covar");
    let data = kb.array("data", 4, &["n".into(), "m".into()], Transfer::In);
    let symmat = kb.array("symmat", 4, &["m".into(), "m".into()], Transfer::Out);
    let j1 = kb.parallel_loop(0, "m");
    let j2 = kb.seq_loop(Expr::var(j1), "m");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        kb.load(data, &[i.into(), j1.into()]),
        kb.load(data, &[i.into(), j2.into()]),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(symmat, &[j1.into(), j2.into()], "acc");
    kb.store_acc(symmat, &[j2.into(), j1.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    kb.finish()
}

/// Sequential reference: full pipeline; returns the covariance matrix and
/// leaves centred data in `data`.
pub fn run_seq(n: usize, m: usize, data: &mut [f32]) -> Vec<f32> {
    let float_n = n as f32;
    let mut mean = vec![0.0f32; m];
    for (j, mj) in mean.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            acc += data[i * m + j];
        }
        *mj = acc / float_n;
    }
    for i in 0..n {
        for j in 0..m {
            data[i * m + j] -= mean[j];
        }
    }
    let mut symmat = vec![0.0f32; m * m];
    for j1 in 0..m {
        for j2 in j1..m {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            symmat[j1 * m + j2] = acc;
            symmat[j2 * m + j1] = acc;
        }
    }
    symmat
}

/// Parallel host implementation; same contract as [`run_seq`].
pub fn run_par(n: usize, m: usize, data: &mut [f32]) -> Vec<f32> {
    let float_n = n as f32;
    let mean: Vec<f32> = (0..m)
        .into_par_iter()
        .map(|j| {
            let mut acc = 0.0;
            for i in 0..n {
                acc += data[i * m + j];
            }
            acc / float_n
        })
        .collect();
    data.par_chunks_mut(m).for_each(|row| {
        for (j, v) in row.iter_mut().enumerate() {
            *v -= mean[j];
        }
    });
    let data_ref: &[f32] = data;
    let rows: Vec<Vec<f32>> = (0..m)
        .into_par_iter()
        .map(|j1| {
            let mut row = vec![0.0f32; m];
            for j2 in j1..m {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += data_ref[i * m + j1] * data_ref[i * m + j2];
                }
                row[j2] = acc;
            }
            row
        })
        .collect();
    let mut symmat = vec![0.0f32; m * m];
    for (j1, row) in rows.iter().enumerate() {
        for (j2, v) in row.iter().enumerate().skip(j1) {
            symmat[j1 * m + j2] = *v;
            symmat[j2 * m + j1] = *v;
        }
    }
    symmat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 3);
        for k in &ks {
            k.validate().unwrap();
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 36;
        let m = 36;
        let mut d1 = poly_mat(n, m);
        let mut d2 = d1.clone();
        let s1 = run_seq(n, m, &mut d1);
        let s2 = run_par(n, m, &mut d2);
        assert_close(&d1, &d2, 1);
        assert_close(&s1, &s2, n);
    }

    #[test]
    fn covariance_is_symmetric() {
        let n = 20;
        let m = 16;
        let mut d = poly_mat(n, m);
        let s = run_seq(n, m, &mut d);
        for j1 in 0..m {
            for j2 in 0..m {
                assert_eq!(s[j1 * m + j2], s[j2 * m + j1]);
            }
        }
    }

    #[test]
    fn centred_columns_sum_to_zero() {
        let n = 24;
        let m = 12;
        let mut d = poly_mat(n, m);
        run_seq(n, m, &mut d);
        for j in 0..m {
            let s: f32 = (0..n).map(|i| d[i * m + j]).sum();
            assert!(s.abs() < 1e-3, "column {j} sums to {s}");
        }
    }
}
