//! SYRK: symmetric rank-k update `C = alpha·A·Aᵀ + beta·C`. The `A[j][k]`
//! operand walks the matrix by rows indexed with the *thread* dimension —
//! the poor-coalescing pattern the paper's model over-penalises in `test`
//! mode without a cache model (Section IV.E).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "SYRK",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single target region.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("syrk");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let c = kb.array("C", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(0, "n");
    let j = kb.parallel_loop(0, "n");
    kb.acc_init(
        "acc",
        cexpr::mul(cexpr::scalar("beta"), kb.load(c, &[i.into(), j.into()])),
    );
    let k = kb.seq_loop(0, "n");
    let prod = cexpr::mul(
        cexpr::scalar("alpha"),
        cexpr::mul(
            kb.load(a, &[i.into(), k.into()]),
            kb.load(a, &[j.into(), k.into()]),
        ),
    );
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(c, &[i.into(), j.into()], "acc");
    kb.end_loop();
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference.
pub fn run_seq(n: usize, alpha: f32, beta: f32, a: &[f32], c: &mut [f32]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = beta * c[i * n + j];
            for k in 0..n {
                acc += alpha * a[i * n + k] * a[j * n + k];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Parallel host implementation.
pub fn run_par(n: usize, alpha: f32, beta: f32, a: &[f32], c: &mut [f32]) {
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = beta * *cell;
            for k in 0..n {
                acc += alpha * a[i * n + k] * a[j * n + k];
            }
            *cell = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat};
    use hetsel_ipda::{analyze, Stride};
    use hetsel_ir::Poly;

    #[test]
    fn kernel_validates() {
        kernels()[0].validate().unwrap();
    }

    /// `A[j][k]` has thread stride n (uncoalesced), `A[i][k]` is a broadcast.
    #[test]
    fn mixed_coalescing_signature() {
        let k = &kernels()[0];
        let info = analyze(k);
        let strides: Vec<&Stride> = info
            .accesses
            .iter()
            .filter(|a| !a.is_store && a.enclosing.len() == 3)
            .map(|a| &a.thread_stride)
            .collect();
        assert!(strides.contains(&&Stride::Known(0)));
        assert!(strides.contains(&&Stride::Symbolic(Poly::param("n"))));
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 44;
        let a = poly_mat(n, n);
        let mut c1 = poly_mat(n, n);
        let mut c2 = c1.clone();
        run_seq(n, 1.1, 0.9, &a, &mut c1);
        run_par(n, 1.1, 0.9, &a, &mut c2);
        assert_close(&c1, &c2, n);
    }

    #[test]
    fn result_is_symmetric_for_symmetric_start() {
        let n = 16;
        let a = poly_mat(n, n);
        let mut c = vec![0.0f32; n * n];
        run_seq(n, 1.0, 0.0, &a, &mut c);
        for i in 0..n {
            for j in 0..n {
                assert!((c[i * n + j] - c[j * n + i]).abs() < 1e-4);
            }
        }
    }
}
