//! GESUMMV: `y = alpha·A·x + beta·B·x` — one region, two interleaved
//! matrix–vector reductions per thread.

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "GESUMMV",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The single target region.
pub fn kernels() -> Vec<Kernel> {
    let mut kb = KernelBuilder::new("gesummv");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::In);
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("ta", cexpr::lit(0.0));
    kb.acc_init("tb", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let xa = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
    kb.assign_acc("ta", cexpr::add(cexpr::acc(), xa));
    let xb = cexpr::mul(kb.load(b, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
    kb.assign_acc("tb", cexpr::add(cexpr::acc(), xb));
    kb.end_loop();
    let combined = cexpr::add(
        cexpr::mul(cexpr::scalar("alpha"), cexpr::scalar("ta")),
        cexpr::mul(cexpr::scalar("beta"), cexpr::scalar("tb")),
    );
    kb.store(y, &[i.into()], combined);
    kb.end_loop();
    vec![kb.finish()]
}

/// Sequential reference; returns `y`.
pub fn run_seq(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], x: &[f32]) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mut ta = 0.0;
            let mut tb = 0.0;
            for (j, xj) in x.iter().enumerate() {
                ta += a[i * n + j] * xj;
                tb += b[i * n + j] * xj;
            }
            alpha * ta + beta * tb
        })
        .collect()
}

/// Parallel host implementation; returns `y`.
pub fn run_par(n: usize, alpha: f32, beta: f32, a: &[f32], b: &[f32], x: &[f32]) -> Vec<f32> {
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut ta = 0.0;
            let mut tb = 0.0;
            for (j, xj) in x.iter().enumerate() {
                ta += a[i * n + j] * xj;
                tb += b[i * n + j] * xj;
            }
            alpha * ta + beta * tb
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_mat_alt, poly_vec};

    #[test]
    fn kernel_validates() {
        let ks = kernels();
        assert_eq!(ks.len(), 1);
        ks[0].validate().unwrap();
    }

    #[test]
    fn two_accumulators_in_inner_loop() {
        let k = &kernels()[0];
        let mut inner_assigns = 0;
        k.walk_assigns(|loops, _| {
            if loops.len() == 2 {
                inner_assigns += 1;
            }
        });
        assert_eq!(inner_assigns, 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 52;
        let a = poly_mat(n, n);
        let b = poly_mat_alt(n, n);
        let x = poly_vec(n);
        assert_close(
            &run_seq(n, 1.3, 0.7, &a, &b, &x),
            &run_par(n, 1.3, 0.7, &a, &b, &x),
            n,
        );
    }
}
