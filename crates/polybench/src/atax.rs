//! ATAX: `y = Aᵀ·(A·x)` — two target regions. The second region walks `A`
//! column-wise: coalesced across GPU threads but hostile to the CPU's inner
//! loop, which is why `atax.k2` in `test` mode is the paper's showcase for
//! the K80→V100 transfer-speed gap (1.24× → 40.69×).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "ATAX",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The two target regions.
pub fn kernels() -> Vec<Kernel> {
    // k1: tmp[i] = sum_j A[i][j] * x[j]   (parallel i)
    let mut kb = KernelBuilder::new("atax.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let x = kb.array("x", 4, &["n".into()], Transfer::In);
    let tmp = kb.array("tmp", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let j = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(x, &[j.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(tmp, &[i.into()], "acc");
    kb.end_loop();
    let k1 = kb.finish();

    // k2: y[j] = sum_i A[i][j] * tmp[i]   (parallel j)
    let mut kb = KernelBuilder::new("atax.k2");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let tmp = kb.array("tmp", 4, &["n".into()], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let j = kb.parallel_loop(0, "n");
    kb.acc_init("acc", cexpr::lit(0.0));
    let i = kb.seq_loop(0, "n");
    let prod = cexpr::mul(kb.load(a, &[i.into(), j.into()]), kb.load(tmp, &[i.into()]));
    kb.assign_acc("acc", cexpr::add(cexpr::acc(), prod));
    kb.end_loop();
    kb.store_acc(y, &[j.into()], "acc");
    kb.end_loop();
    let k2 = kb.finish();

    vec![k1, k2]
}

/// Sequential reference; returns `y`.
pub fn run_seq(n: usize, a: &[f32], x: &[f32]) -> Vec<f32> {
    let mut tmp = vec![0.0f32; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[i * n + j] * x[j];
        }
        tmp[i] = acc;
    }
    let mut y = vec![0.0f32; n];
    for (j, yj) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (i, t) in tmp.iter().enumerate() {
            acc += a[i * n + j] * t;
        }
        *yj = acc;
    }
    y
}

/// Parallel host implementation; returns `y`.
pub fn run_par(n: usize, a: &[f32], x: &[f32]) -> Vec<f32> {
    let tmp: Vec<f32> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j] * x[j];
            }
            acc
        })
        .collect();
    (0..n)
        .into_par_iter()
        .map(|j| {
            let mut acc = 0.0;
            for (i, t) in tmp.iter().enumerate() {
                acc += a[i * n + j] * t;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat, poly_vec};
    use hetsel_ipda::{analyze, Stride};
    use hetsel_ir::Poly;

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
            assert_eq!(k.parallel_loops().len(), 1);
        }
    }

    /// k1 reads A row-wise (thread stride n: uncoalesced); k2 reads A
    /// column-wise (thread stride 1: coalesced) — the structural contrast
    /// the IPDA analysis must see.
    #[test]
    fn coalescing_contrast_between_regions() {
        let ks = kernels();
        let i1 = analyze(&ks[0]);
        let a_access = i1.accesses.iter().find(|a| a.array.0 == 0).unwrap();
        assert_eq!(a_access.thread_stride, Stride::Symbolic(Poly::param("n")));
        let i2 = analyze(&ks[1]);
        let a_access = i2.accesses.iter().find(|a| a.array.0 == 0).unwrap();
        assert_eq!(a_access.thread_stride, Stride::Known(1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 64;
        let a = poly_mat(n, n);
        let x = poly_vec(n);
        assert_close(&run_seq(n, &a, &x), &run_par(n, &a, &x), n);
    }

    #[test]
    fn identity_matrix_roundtrip() {
        // A = I: y = Aᵀ A x = x.
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let x = poly_vec(n);
        let y = run_seq(n, &a, &x);
        assert_close(&y, &x, 1);
    }
}
