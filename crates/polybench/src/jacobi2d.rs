//! JACOBI-2D (extended suite): one sweep of the 5-point Jacobi stencil as
//! two target regions — compute into `B`, copy back into `A`. A classic
//! bandwidth-bound iteration pattern beyond the paper's 13 programs,
//! exercising the copy-kernel corner (2 memory ops, zero FP work).

use crate::dataset::Dataset;
use crate::suite::Benchmark;
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use rayon::prelude::*;

/// The benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "JACOBI2D",
        kernels: kernels(),
        binding,
    }
}

/// Runtime binding for a dataset.
pub fn binding(ds: Dataset) -> Binding {
    Binding::new().with("n", ds.n())
}

/// The two target regions of one sweep.
pub fn kernels() -> Vec<Kernel> {
    // k1: B[i][j] = 0.2*(A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j])
    let mut kb = KernelBuilder::new("jacobi2d.k1");
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::In);
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::Out);
    let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let mut sum = kb.load(a, &[i.into(), j.into()]);
    for (di, dj) in [(0i64, -1i64), (0, 1), (1, 0), (-1, 0)] {
        let ld = kb.load(
            a,
            &[
                Expr::var(i) + Expr::Const(di),
                Expr::var(j) + Expr::Const(dj),
            ],
        );
        sum = cexpr::add(sum, ld);
    }
    kb.store(
        b,
        &[i.into(), j.into()],
        cexpr::mul(cexpr::scalar("c02"), sum),
    );
    kb.end_loop();
    kb.end_loop();
    let k1 = kb.finish();

    // k2: A[i][j] = B[i][j]
    let mut kb = KernelBuilder::new("jacobi2d.k2");
    let b = kb.array("B", 4, &["n".into(), "n".into()], Transfer::In);
    let a = kb.array("A", 4, &["n".into(), "n".into()], Transfer::InOut);
    let i = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let j = kb.parallel_loop(1, Expr::param("n") - Expr::Const(1));
    let ld = kb.load(b, &[i.into(), j.into()]);
    kb.store(a, &[i.into(), j.into()], ld);
    kb.end_loop();
    kb.end_loop();
    let k2 = kb.finish();

    vec![k1, k2]
}

fn sweep_seq(n: usize, a: &mut [f32], b: &mut [f32]) {
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            b[i * n + j] = 0.2
                * (a[i * n + j]
                    + a[i * n + j - 1]
                    + a[i * n + j + 1]
                    + a[(i + 1) * n + j]
                    + a[(i - 1) * n + j]);
        }
    }
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            a[i * n + j] = b[i * n + j];
        }
    }
}

/// Sequential reference: `tsteps` sweeps in place.
pub fn run_seq(n: usize, tsteps: usize, a: &mut [f32]) {
    let mut b = vec![0.0f32; n * n];
    for _ in 0..tsteps {
        sweep_seq(n, a, &mut b);
    }
}

/// Parallel host implementation: `tsteps` sweeps in place.
pub fn run_par(n: usize, tsteps: usize, a: &mut [f32]) {
    let mut b = vec![0.0f32; n * n];
    for _ in 0..tsteps {
        b.par_chunks_mut(n)
            .enumerate()
            .skip(1)
            .take(n - 2)
            .for_each(|(i, row)| {
                for j in 1..n - 1 {
                    row[j] = 0.2
                        * (a[i * n + j]
                            + a[i * n + j - 1]
                            + a[i * n + j + 1]
                            + a[(i + 1) * n + j]
                            + a[(i - 1) * n + j]);
                }
            });
        a.par_chunks_mut(n)
            .enumerate()
            .skip(1)
            .take(n - 2)
            .for_each(|(i, row)| {
                row[1..n - 1].copy_from_slice(&b[i * n + 1..i * n + n - 1]);
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{assert_close, poly_mat};

    #[test]
    fn kernels_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
            assert_eq!(k.parallel_loops().len(), 2);
        }
    }

    #[test]
    fn copy_kernel_has_no_fp_work() {
        let k = &kernels()[1];
        let mut ops = hetsel_ir::FpOps::default();
        k.walk_assigns(|_, a| ops = ops + a.rhs.fp_op_counts());
        assert_eq!(ops.total(), 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 40;
        let mut a1 = poly_mat(n, n);
        let mut a2 = a1.clone();
        run_seq(n, 3, &mut a1);
        run_par(n, 3, &mut a2);
        assert_close(&a1, &a2, 5);
    }

    #[test]
    fn jacobi_smooths_toward_interior_mean() {
        // A spike diffuses: its centre value decreases monotonically.
        let n = 16;
        let mut a = vec![0.0f32; n * n];
        a[8 * n + 8] = 1.0;
        let before = a[8 * n + 8];
        run_seq(n, 1, &mut a);
        assert!(a[8 * n + 8] < before);
        // Mass appears at the neighbours.
        assert!(a[8 * n + 7] > 0.0 && a[7 * n + 8] > 0.0);
    }
}
