//! Model-checking the cache and TLB structures against naive reference
//! implementations on random address traces.

use hetsel_cpusim::{Cache, Tlb};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference fully-associative LRU over `capacity` entries of `granule`-
/// sized blocks — the specification the TLB must match exactly.
struct RefLru {
    granule: u64,
    cap: usize,
    entries: VecDeque<u64>,
}

impl RefLru {
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.granule;
        if let Some(pos) = self.entries.iter().position(|b| *b == block) {
            self.entries.remove(pos);
            self.entries.push_back(block);
            true
        } else {
            if self.entries.len() == self.cap {
                self.entries.pop_front();
            }
            self.entries.push_back(block);
            false
        }
    }
}

fn trace() -> impl Strategy<Value = Vec<u64>> {
    // Mixture of localized and scattered addresses.
    prop::collection::vec((0u64..64, 0u64..4096), 1..600)
        .prop_map(|ps| ps.into_iter().map(|(hi, lo)| hi * 1_000_000 + lo).collect())
}

proptest! {
    /// The TLB (fully-associative LRU) agrees with the reference on every
    /// access of every trace.
    #[test]
    fn tlb_matches_reference_lru(t in trace(), entries in 1u32..32) {
        let mut tlb = Tlb::new(entries, 4096);
        let mut reference = RefLru { granule: 4096, cap: entries as usize, entries: VecDeque::new() };
        for addr in t {
            prop_assert_eq!(tlb.access(addr), reference.access(addr));
        }
    }

    /// A single-set cache (sets=1) is fully associative: it must also match
    /// the reference LRU.
    #[test]
    fn single_set_cache_matches_reference(t in trace(), ways in 1u32..16) {
        let line = 64u32;
        let mut cache = Cache::new(u64::from(ways) * u64::from(line), line, ways);
        let mut reference = RefLru { granule: u64::from(line), cap: ways as usize, entries: VecDeque::new() };
        for addr in t {
            prop_assert_eq!(cache.access(addr), reference.access(addr), "addr {}", addr);
        }
    }

    /// Inclusion-style sanity: a bigger cache of the same shape never has
    /// fewer hits on the same trace.
    #[test]
    fn bigger_cache_never_hurts(t in trace()) {
        let mut small = Cache::new(4 * 1024, 64, 4);
        let mut big = Cache::new(64 * 1024, 64, 4);
        for addr in &t {
            small.access(*addr);
            big.access(*addr);
        }
        // With hashed indexing this is statistical rather than per-access,
        // but over whole traces the bigger cache must not lose.
        prop_assert!(big.hits() >= small.hits());
    }

    /// Counters are consistent.
    #[test]
    fn counters_consistent(t in trace()) {
        let mut c = Cache::new(8 * 1024, 64, 8);
        for addr in &t {
            c.access(*addr);
        }
        prop_assert_eq!(c.accesses(), t.len() as u64);
        prop_assert!(c.hits() <= c.accesses());
        prop_assert!((0.0..=1.0).contains(&c.hit_ratio()));
    }
}
