//! Set-associative LRU cache and TLB simulation.
//!
//! These are trace-driven structures: the sampler feeds them the byte
//! addresses one thread actually generates, and they report which level
//! served each access — the cache-hierarchy detail the paper's analytical
//! CPU model explicitly lacks (its "primary future work direction").

/// A single set-associative, LRU, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    sets: Vec<Vec<u64>>,
    assoc: usize,
    accesses: u64,
    hits: u64,
}

impl Cache {
    /// Builds a cache of `bytes` capacity with `line_bytes` lines and
    /// `assoc`-way sets (capacity is rounded down to a whole number of sets;
    /// a minimum of one set is kept).
    pub fn new(bytes: u64, line_bytes: u32, assoc: u32) -> Cache {
        let line = u64::from(line_bytes);
        let assoc = assoc.max(1) as usize;
        let lines = (bytes / line).max(1);
        let sets = (lines / assoc as u64).max(1) as usize;
        Cache {
            line_bytes: line,
            sets: vec![Vec::with_capacity(assoc); sets],
            assoc,
            accesses: 0,
            hits: 0,
        }
    }

    /// Accesses a byte address; returns true on hit. Misses allocate.
    ///
    /// The set index is *hashed* (as POWER's L3 does) so that large
    /// power-of-two-ish strides do not collapse onto a handful of sets —
    /// without hashing, a 9600-element column walk maps to gcd-limited
    /// sets and produces conflict misses real hardware does not see.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let tag = addr / self.line_bytes;
        let hashed = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let set_idx = ((hashed >> 16) % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|t| *t == tag) {
            // Move to MRU position (back).
            let t = set.remove(pos);
            set.push(t);
            self.hits += 1;
            return true;
        }
        if set.len() == self.assoc {
            set.remove(0); // evict LRU (front)
        }
        set.push(tag);
        false
    }

    /// Accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit ratio (1.0 when no accesses yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A multi-level hierarchy; `access` returns the index of the level that
/// served the request (`levels.len()` = memory).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<Cache>,
}

impl Hierarchy {
    /// Builds a hierarchy from `(bytes, line, assoc)` triples, innermost
    /// first.
    pub fn new(levels: &[(u64, u32, u32)]) -> Hierarchy {
        Hierarchy {
            levels: levels
                .iter()
                .map(|(b, l, a)| Cache::new(*b, *l, *a))
                .collect(),
        }
    }

    /// Accesses an address, allocating in every level it missed.
    pub fn access(&mut self, addr: u64) -> usize {
        for (i, c) in self.levels.iter_mut().enumerate() {
            if c.access(addr) {
                return i;
            }
        }
        self.levels.len()
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// A view of one level.
    pub fn level(&self, i: usize) -> &Cache {
        &self.levels[i]
    }
}

/// A fully-associative LRU TLB over pages.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_bytes: u64,
    entries: Vec<u64>,
    capacity: usize,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB with `entries` page slots.
    pub fn new(entries: u32, page_bytes: u64) -> Tlb {
        Tlb {
            page_bytes: page_bytes.max(1),
            entries: Vec::with_capacity(entries as usize),
            capacity: entries.max(1) as usize,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses an address; returns true on TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr / self.page_bytes;
        if let Some(pos) = self.entries.iter().position(|p| *p == page) {
            let p = self.entries.remove(pos);
            self.entries.push(p);
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(page);
        false
    }

    /// Miss ratio so far (0.0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 64, 8);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008)); // same line
        assert!(!c.access(0x2000));
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set of 2 ways: line 64B, capacity 128B.
        let mut c = Cache::new(128, 64, 2);
        assert!(!c.access(0)); // A
        assert!(!c.access(64)); // B  (different tag, same single set)
        assert!(c.access(0)); // A hit, A is MRU
        assert!(!c.access(64 * 2)); // C evicts B
        assert!(c.access(0)); // A survives
        assert!(!c.access(64)); // B was evicted
    }

    #[test]
    fn hits_never_exceed_accesses() {
        let mut c = Cache::new(4096, 64, 4);
        for i in 0..1000u64 {
            c.access(i * 37);
        }
        assert!(c.hits() <= c.accesses());
        assert!(c.hit_ratio() <= 1.0);
    }

    #[test]
    fn streaming_large_working_set_misses() {
        let mut c = Cache::new(1024, 64, 4);
        // Stream 1 MiB: first pass all misses beyond capacity reuse.
        let mut misses = 0;
        for i in 0..16384u64 {
            if !c.access(i * 64) {
                misses += 1;
            }
        }
        assert_eq!(misses, 16384);
    }

    #[test]
    fn hierarchy_levels() {
        let mut h = Hierarchy::new(&[(128, 64, 2), (1024, 64, 4)]);
        assert_eq!(h.access(0), 2); // miss everywhere -> memory
        assert_eq!(h.access(0), 0); // L1 hit
                                    // Evict from tiny L1 with two other lines, then re-access: L2 hit.
        h.access(64);
        h.access(128);
        assert_eq!(h.access(0), 1);
    }

    #[test]
    fn tlb_behaviour() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0));
        assert!(t.access(100)); // same page
        assert!(!t.access(4096));
        assert!(!t.access(8192)); // evicts page 0
        assert!(!t.access(0));
        assert!(t.miss_ratio() > 0.5);
    }

    #[test]
    fn sequential_walk_mostly_tlb_hits() {
        let mut t = Tlb::new(1024, 65536);
        let mut misses = 0;
        for i in 0..100_000u64 {
            if !t.access(i * 8) {
                misses += 1;
            }
        }
        // 100k * 8B = 800KB = ~13 pages.
        assert!(misses < 20);
    }
}
